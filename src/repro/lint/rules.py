"""The REP001..REP008 rule implementations.

Each rule encodes one contract the determinism/performance story rests
on; ``docs/STATIC_ANALYSIS.md`` documents the *why* behind every one.
Rules are pure AST analyses — linting never imports repository code.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, LintContext, LintModule
from repro.lint.dataflow.sources import HASH_ORDER, nondet_call
from repro.lint.dataflow.taint import chain_display

__all__ = ["ALL_RULES", "Rule", "counter_uses", "rule_by_id"]


class Rule:
    """Base class: one checker with a stable id."""

    id = "REP000"
    title = ""

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError


# -- REP001: wall-clock / nondeterministic calls ------------------------------


class NoNondeterministicCalls(Rule):
    """REP001: engine/kernel/core code may not read wall clocks or OS
    entropy; randomness must flow through an explicitly seeded generator.

    ``time.perf_counter``/``time.process_time`` stay legal: they feed the
    advisory ``time.*`` timers that are excluded from determinism
    comparisons (see ``docs/OBSERVABILITY.md``).

    The source classification lives in ``dataflow/sources.py`` so this
    rule and the interprocedural REP101 can never drift.
    """

    id = "REP001"
    title = "no wall-clock or unseeded-randomness calls in deterministic code"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.config.in_deterministic_scope(module.modpath):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.dotted(node.func)
            if dotted is None:
                continue
            classified = nondet_call(dotted, node)
            if classified is not None:
                yield module.finding(self.id, node, classified[1])


# -- REP002: kernel purity ----------------------------------------------------

#: Call roots kernels may never reach: real filesystem, network,
#: processes, and ambient-state modules.  Task I/O goes through the
#: shadow ``LocalDisk`` the coordinator absorbs.
_IMPURE_ROOTS = frozenset(
    {
        "os",
        "io",
        "socket",
        "subprocess",
        "shutil",
        "tempfile",
        "pathlib",
        "urllib",
        "http",
        "requests",
    }
)

_IMPURE_BUILTINS = frozenset({"open", "print", "input", "exec", "eval", "globals"})

#: Method names that mutate a container in place.
_MUTATORS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "extend",
        "remove",
        "discard",
        "insert",
        "write",
    }
)


def _attr_root(node: ast.AST) -> ast.AST:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def _local_bindings(fn: ast.FunctionDef) -> set[str]:
    names = {a.arg for a in fn.args.args + fn.args.posonlyargs + fn.args.kwonlyargs}
    for extra in (fn.args.vararg, fn.args.kwarg):
        if extra is not None:
            names.add(extra.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.partition(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
    return names


class KernelPurity(Rule):
    """REP002: functions registered as task kernels must be pure.

    A kernel runs in a forked worker; anything it does outside
    ``(context, spec) -> result`` — touching coordinator singletons,
    mutating module globals, opening real files or sockets — silently
    diverges between the Serial/Thread/MP executors.
    """

    id = "REP002"
    title = "task kernels must be pure (shadow-disk I/O only)"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        if module.modpath != ctx.kernel_modpath:
            return
        tree = module.tree
        defs = {
            n.name: n
            for n in tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        module_names = _module_level_names(tree)
        kernels = _registered_kernels(tree)
        # Close over module-local helpers the kernels call.
        reachable: dict[str, ast.FunctionDef] = {}
        frontier = [name for name in kernels if name in defs]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable[name] = defs[name]
            for node in ast.walk(defs[name]):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in defs
                ):
                    frontier.append(node.func.id)
        singletons = frozenset(ctx.config.coordinator_singletons)
        for fn in reachable.values():
            yield from self._check_function(module, fn, module_names, singletons)

    def _check_function(
        self,
        module: LintModule,
        fn: ast.FunctionDef,
        module_names: set[str],
        singletons: frozenset[str],
    ) -> Iterator[Finding]:
        local = _local_bindings(fn)
        where = f"kernel {fn.name!r}"
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                yield module.finding(
                    self.id, node, f"{where} declares global {', '.join(node.names)}"
                )
            elif isinstance(node, ast.Name):
                if node.id in singletons:
                    yield module.finding(
                        self.id,
                        node,
                        f"{where} touches coordinator singleton {node.id}",
                    )
            elif isinstance(node, ast.Call):
                dotted = module.dotted(node.func)
                if dotted is not None:
                    root, _, _rest = dotted.partition(".")
                    if root in _IMPURE_ROOTS and root not in local:
                        yield module.finding(
                            self.id, node, f"{where} calls impure API {dotted}()"
                        )
                    elif dotted in _IMPURE_BUILTINS and dotted not in local:
                        yield module.finding(
                            self.id, node, f"{where} calls builtin {dotted}()"
                        )
                # Mutating a module-level container through a method call.
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS
                ):
                    root_node = _attr_root(node.func.value)
                    if (
                        isinstance(root_node, ast.Name)
                        and root_node.id in module_names
                        and root_node.id not in local
                    ):
                        yield module.finding(
                            self.id,
                            node,
                            f"{where} mutates module global {root_node.id!r} "
                            f"via .{node.func.attr}()",
                        )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        root_node = _attr_root(target)
                        if (
                            isinstance(root_node, ast.Name)
                            and root_node.id in module_names
                            and root_node.id not in local
                        ):
                            yield module.finding(
                                self.id,
                                node,
                                f"{where} writes module global {root_node.id!r}",
                            )


def _module_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.partition(".")[0])
    return names


def _registered_kernels(tree: ast.Module) -> list[str]:
    """Function names passed to module-level ``register_kernel(...)``."""
    out = []
    for node in tree.body:
        if (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == "register_kernel"
            and len(node.value.args) >= 2
            and isinstance(node.value.args[1], ast.Name)
        ):
            out.append(node.value.args[1].id)
    return out


# -- REP003: no unpicklable values on task-spec fields ------------------------


class PicklableSpecs(Rule):
    """REP003: task specs cross process boundaries; lambdas, closures
    and local classes do not pickle.  Anything callable a kernel needs
    belongs in the fork-inherited job *context*, not the spec.
    """

    id = "REP003"
    title = "no lambdas/closures/local classes on picklable task specs"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        spec_names = ctx.spec_class_names
        if module.modpath == ctx.kernel_modpath:
            yield from self._check_spec_defaults(module, spec_names)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _terminal_name(node.func)
            if name not in spec_names:
                continue
            local_defs = _enclosing_local_defs(module, node)
            for value in [*node.args, *(kw.value for kw in node.keywords)]:
                if isinstance(value, ast.Lambda):
                    yield module.finding(
                        self.id,
                        value,
                        f"lambda passed to picklable spec {name}; "
                        "move the callable into the job context",
                    )
                elif isinstance(value, ast.Name) and value.id in local_defs:
                    yield module.finding(
                        self.id,
                        value,
                        f"local {local_defs[value.id]} {value.id!r} passed to "
                        f"picklable spec {name}; it will not pickle",
                    )

    def _check_spec_defaults(
        self, module: LintModule, spec_names: frozenset[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name in spec_names:
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Lambda):
                        yield module.finding(
                            self.id,
                            sub,
                            f"lambda default on spec {node.name} will not pickle",
                        )


def _terminal_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _enclosing_local_defs(module: LintModule, node: ast.AST) -> dict[str, str]:
    """Names of defs/classes local to the functions enclosing ``node``."""
    out: dict[str, str] = {}
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(ancestor):
                if sub is ancestor:
                    continue
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.setdefault(sub.name, "function")
                elif isinstance(sub, ast.ClassDef):
                    out.setdefault(sub.name, "class")
    return out


# -- REP004: counter names must be declared -----------------------------------

_COUNTER_CLASS = "repro.mapreduce.counters.C"


def counter_uses(module: LintModule) -> dict[str, list[ast.Attribute]]:
    """All ``C.<name>`` accesses in a module, alias-resolved."""
    uses: dict[str, list[ast.Attribute]] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute):
            dotted = module.dotted(node)
            if dotted and dotted.startswith(_COUNTER_CLASS + "."):
                attr = dotted[len(_COUNTER_CLASS) + 1 :]
                if "." not in attr:
                    uses.setdefault(attr, []).append(node)
    return uses


class DeclaredCounters(Rule):
    """REP004: every counter referenced anywhere must be declared on the
    registry class ``C``.  A typo'd counter name raises only on the code
    path that touches it — possibly a rarely-exercised fault path.
    """

    id = "REP004"
    title = "counter names must be declared in the counter registry"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        declared = ctx.counter_names
        for attr, nodes in sorted(counter_uses(module).items()):
            if attr not in declared:
                for node in nodes:
                    yield module.finding(
                        self.id,
                        node,
                        f"counter C.{attr} is not declared in the counter registry",
                    )


# -- REP005: tracer discipline ------------------------------------------------


class TracerDiscipline(Rule):
    """REP005: spans must be context-managed and span/event names must
    come from the registry (``repro/obs/names.py``).

    A span handle left unclosed on an exception path corrupts the
    logical clock for the rest of the trace; an unregistered name breaks
    every exporter/consumer keyed on the known vocabulary.
    """

    id = "REP005"
    title = "spans context-managed; span/event names from the registry"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        tracer_names = frozenset(ctx.config.tracer_names)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("span", "event", "add_span")
            ):
                continue
            if not _is_tracer_receiver(node.func.value, tracer_names):
                continue
            method = node.func.attr
            if method == "span" and not isinstance(
                module.parents.get(node), ast.withitem
            ):
                yield module.finding(
                    self.id,
                    node,
                    "span() outside a with-statement; the handle must be "
                    "closed on all paths (use `with tracer.span(...)`)",
                )
            if not node.args:
                continue
            name_arg = node.args[0]
            if not (
                isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)
            ):
                continue  # non-literal names: REP104 constant-folds them
            registry = ctx.event_names if method == "event" else ctx.span_names
            kind = "event" if method == "event" else "span"
            if name_arg.value not in registry:
                yield module.finding(
                    self.id,
                    name_arg,
                    f"{kind} name {name_arg.value!r} is not registered in "
                    "repro/obs/names.py",
                )


def _is_tracer_receiver(node: ast.AST, tracer_names: frozenset[str]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in tracer_names
    if isinstance(node, ast.Attribute):
        return node.attr in tracer_names
    return False


# -- REP006: unordered set iteration ------------------------------------------

#: Wrapping calls for which element order cannot matter.
_ORDER_FREE_CALLS = frozenset(
    {"sorted", "set", "frozenset", "sum", "min", "max", "len", "any", "all"}
)

#: Set methods whose result is itself a set.
_SET_PRODUCING_METHODS = frozenset(
    {"difference", "union", "intersection", "symmetric_difference", "copy"}
)

_SET_BINOPS = (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)


class NoUnorderedIteration(Rule):
    """REP006: iterating a set/frozenset without ``sorted(...)`` in
    output- or trace-affecting code.  Set iteration order depends on the
    per-process hash seed, so it silently varies across runs.
    """

    id = "REP006"
    title = "no unordered set iteration in deterministic code"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.config.in_deterministic_scope(module.modpath):
            return
        set_attrs = _class_set_attrs(module)
        for scope in _scopes(module.tree):
            set_locals = _scope_set_locals(scope)
            unordered_dicts = _scope_unordered_dicts(scope, set_locals)
            for site, iter_expr in _iteration_sites(scope):
                if self._is_set_like(module, iter_expr, set_locals, set_attrs):
                    message = (
                        "iteration over a set has hash-seed-dependent order; "
                        "wrap it in sorted(...)"
                    )
                elif _is_unordered_dict_view(iter_expr, unordered_dicts):
                    message = (
                        "iteration over a dict built from an unordered source "
                        "has hash-seed-dependent order; wrap it in sorted(...)"
                    )
                else:
                    continue
                if self._order_free_context(module, site):
                    continue
                yield module.finding(self.id, iter_expr, message)

    def _is_set_like(
        self,
        module: LintModule,
        node: ast.AST,
        set_locals: set[str],
        set_attrs: dict[ast.ClassDef, set[str]],
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            fname = _terminal_name(node.func)
            if isinstance(node.func, ast.Name) and fname in ("set", "frozenset"):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and fname in _SET_PRODUCING_METHODS
                and self._is_set_like(module, node.func.value, set_locals, set_attrs)
            ):
                return True
            return False
        if isinstance(node, ast.Name):
            return node.id in set_locals
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            for ancestor in module.ancestors(node):
                if isinstance(ancestor, ast.ClassDef):
                    return node.attr in set_attrs.get(ancestor, set())
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self._is_set_like(
                module, node.left, set_locals, set_attrs
            ) or self._is_set_like(module, node.right, set_locals, set_attrs)
        return False

    def _order_free_context(self, module: LintModule, site: ast.AST) -> bool:
        """True when the iteration's result cannot depend on order."""
        if isinstance(site, ast.SetComp):
            return True
        node = site
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.Call):
                fname = _terminal_name(ancestor.func)
                if fname in _ORDER_FREE_CALLS or fname in _SET_PRODUCING_METHODS:
                    return True
            if isinstance(ancestor, ast.SetComp):
                return True
            if isinstance(ancestor, ast.stmt):
                return False
        return False


def _scopes(tree: ast.Module) -> Iterator[ast.Module | ast.FunctionDef]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function/class scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(node))


def _is_set_expr(node: ast.AST) -> bool:
    return isinstance(node, (ast.Set, ast.SetComp)) or (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_set_annotation(node: ast.AST | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset")
    if isinstance(node, ast.Subscript):
        return _is_set_annotation(node.value)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.partition("[")[0].strip() in ("set", "frozenset")
    return False


def _scope_set_locals(scope: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in _scope_walk(scope):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _is_set_annotation(node.annotation) or (
                node.value is not None and _is_set_expr(node.value)
            ):
                names.add(node.target.id)
    return names


def _is_dict_from_unordered(node: ast.AST, set_locals: set[str]) -> bool:
    """``dict.fromkeys(<set>)``, ``dict(<set>)`` or a dict comprehension
    over a set: the dict inherits hash-seed-dependent key order."""

    def set_like(n: ast.AST) -> bool:
        return _is_set_expr(n) or (isinstance(n, ast.Name) and n.id in set_locals)

    if isinstance(node, ast.Call) and node.args:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "fromkeys"
            and isinstance(func.value, ast.Name)
            and func.value.id == "dict"
        ):
            return set_like(node.args[0])
        if isinstance(func, ast.Name) and func.id == "dict":
            return set_like(node.args[0])
    if isinstance(node, ast.DictComp):
        return any(set_like(gen.iter) for gen in node.generators)
    return False


def _scope_unordered_dicts(scope: ast.AST, set_locals: set[str]) -> set[str]:
    names: set[str] = set()
    for node in _scope_walk(scope):
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if _is_dict_from_unordered(value, set_locals):
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _is_unordered_dict_view(node: ast.AST, unordered_dicts: set[str]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in unordered_dicts
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "values", "items")
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in unordered_dicts
    )


def _class_set_attrs(module: LintModule) -> dict[ast.ClassDef, set[str]]:
    out: dict[ast.ClassDef, set[str]] = {}
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        attrs: set[str] = set()
        for node in ast.walk(cls):
            target = None
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign) and (
                _is_set_annotation(node.annotation)
                or (node.value is not None and _is_set_expr(node.value))
            ):
                target = node.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs.add(target.attr)
        if attrs:
            out[cls] = attrs
    return out


def _iteration_sites(scope: ast.AST) -> Iterator[tuple[ast.AST, ast.AST]]:
    """(site, iterated-expression) pairs within one scope."""
    for node in _scope_walk(scope):
        if isinstance(node, ast.For):
            yield node, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield node, gen.iter
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate", "iter")
            and len(node.args) == 1
        ):
            yield node, node.args[0]


# -- REP007: __slots__ on hot-path classes ------------------------------------


class SlotsOnHotPaths(Rule):
    """REP007: classes in the hot-path modules named by
    ``docs/PERFORMANCE.md`` must declare ``__slots__`` (directly or via
    ``@dataclass(slots=True)``) — per-instance dicts cost measurable
    memory and attribute-lookup time on these paths.
    """

    id = "REP007"
    title = "__slots__ required on hot-path classes"

    _EXEMPT_BASES = frozenset({"Protocol", "Exception", "BaseException", "Enum"})

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        if module.modpath not in ctx.hot_path_modules:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and not self._has_slots(node):
                yield module.finding(
                    self.id,
                    node,
                    f"hot-path class {node.name} has no __slots__ "
                    "(add __slots__ or @dataclass(slots=True))",
                )

    def _has_slots(self, cls: ast.ClassDef) -> bool:
        for base in cls.bases:
            name = _terminal_name(base)
            if name in self._EXEMPT_BASES or (
                name and name.endswith(("Error", "Exception", "Warning"))
            ):
                return True
        for deco in cls.decorator_list:
            if isinstance(deco, ast.Call) and _terminal_name(deco.func) == "dataclass":
                for kw in deco.keywords:
                    if (
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets
            ):
                return True
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            ):
                return True
        return False


# -- REP008: metric discipline ------------------------------------------------


class MetricDiscipline(Rule):
    """REP008: metric names must come from the registry
    (``METRIC_NAMES`` in ``repro/obs/names.py``).

    Histograms and gauges merge worker -> coordinator by name, so an
    unregistered or misspelled name silently forks a new series instead
    of folding into the intended one — and the analyzer's metrics table
    grows an orphan row no dashboard or test knows about.  ``Metrics``
    raises on unregistered names at runtime; this catches the same
    mistake statically, including on paths tests never execute.
    """

    id = "REP008"
    title = "metric names from the registry"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("histogram", "gauge")
                and _is_metrics_receiver(node.func.value)
            ):
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            if not (
                isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)
            ):
                continue  # non-literal names surface at runtime (_check_name)
            if name_arg.value not in ctx.metric_names:
                yield module.finding(
                    self.id,
                    name_arg,
                    f"metric name {name_arg.value!r} is not registered in "
                    "repro/obs/names.py",
                )


def _is_metrics_receiver(node: ast.AST) -> bool:
    """Matches ``metrics.histogram(...)`` and ``<expr>.metrics.gauge(...)``
    (the ``Tracer.metrics`` / ``NullTracer.metrics`` access paths)."""
    if isinstance(node, ast.Name):
        return node.id == "metrics"
    if isinstance(node, ast.Attribute):
        return node.attr == "metrics"
    return False


# -- REP101..REP105: interprocedural dataflow rules ---------------------------
#
# These consume the whole-program facts built by ``repro.lint.dataflow``:
# a call graph over every module in the program scope, with per-function
# taint summaries propagated to a fixpoint.  Each finding carries the
# witness chain from the call site to the source.


def _enclosing_class_name(module: LintModule, node: ast.AST) -> str | None:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(ancestor, ast.ClassDef):
            return ancestor.name
    return None


def _call_dotted(module: LintModule, node: ast.Call) -> str | None:
    """The symbolic call target a summary would record for this site."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return f"self.{func.attr}"
    return module.dotted(func)


def _order_absorbed(module: LintModule, node: ast.AST) -> bool:
    """True when the value at ``node`` flows into an order-free wrapper
    (``sorted(...)`` etc.) before reaching any statement."""
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.Call):
            if _terminal_name(ancestor.func) in _ORDER_FREE_CALLS:
                return True
        if isinstance(ancestor, ast.stmt):
            return False
    return False


class TransitiveNondeterminism(Rule):
    """REP101: a call whose target *transitively* returns a wall-clock,
    unseeded-RNG or hash-order-dependent value.  REP001 catches the
    direct read; this rule catches the helper two modules away that
    launders it through a return value.
    """

    id = "REP101"
    title = "no calls to transitively nondeterministic functions"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.config.in_deterministic_scope(module.modpath):
            return
        facts = ctx.facts_for(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _call_dotted(module, node)
            if dotted is None:
                continue
            if nondet_call(dotted, node) is not None:
                continue  # the direct source: REP001's finding
            fid = facts.resolve(
                module.modpath, dotted, _enclosing_class_name(module, node)
            )
            if fid is None:
                continue
            entry = facts.nondet.get(fid)
            if entry is None:
                continue
            detail, _chain, _src = entry
            if detail == HASH_ORDER and _order_absorbed(module, node):
                continue
            yield module.finding(
                self.id,
                node,
                f"{dotted}() is transitively nondeterministic "
                f"({detail}; path: {chain_display(fid, entry)})",
            )


class PickleReachability(Rule):
    """REP102: unpicklable values reaching task specs through edges
    REP003 cannot see — a call that returns a lambda, an attribute
    assignment onto a constructed spec, or a helper that smuggles a
    closure onto a caller-supplied spec parameter.
    """

    id = "REP102"
    title = "no unpicklable values reaching task specs transitively"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        spec_names = ctx.spec_class_names
        if not spec_names:
            return
        facts = ctx.facts_for(module)
        for scope in _scopes(module.tree):
            spec_locals: dict[str, str] = {}
            for node in _scope_walk(scope):
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                    name = _terminal_name(node.value.func)
                    if name in spec_names:
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                spec_locals[target.id] = name
            for node in _scope_walk(scope):
                if isinstance(node, ast.Call):
                    yield from self._check_call(
                        module, ctx, facts, node, spec_names, spec_locals
                    )
                elif isinstance(node, ast.Assign):
                    yield from self._check_attr_assign(
                        module, facts, node, spec_locals
                    )

    def _check_call(
        self,
        module: LintModule,
        ctx: LintContext,
        facts,
        node: ast.Call,
        spec_names: frozenset[str],
        spec_locals: dict[str, str],
    ) -> Iterator[Finding]:
        name = _terminal_name(node.func)
        if name in spec_names:
            # Spec constructor: arguments that are calls returning
            # unpicklable values (direct lambdas are REP003's findings).
            for value in [*node.args, *(kw.value for kw in node.keywords)]:
                if not isinstance(value, ast.Call):
                    continue
                hit = self._unpicklable_call(module, facts, value)
                if hit is not None:
                    detail, path = hit
                    yield module.finding(
                        self.id,
                        value,
                        f"call passed to picklable spec {name} returns an "
                        f"unpicklable value ({detail}; path: {path})",
                    )
            return
        # Helper call that writes an unpicklable value onto a spec
        # passed as an argument.
        dotted = _call_dotted(module, node)
        if dotted is None:
            return
        fid = facts.resolve(
            module.modpath, dotted, _enclosing_class_name(module, node)
        )
        if fid is None:
            return
        for tidx, kind, detail, chain, _lineno in facts.spec_writes(fid):
            if kind != "unpicklable" or tidx >= len(node.args):
                continue
            arg = node.args[tidx]
            if isinstance(arg, ast.Name) and arg.id in spec_locals:
                via = chain_display(fid, (detail, chain, 0))
                yield module.finding(
                    self.id,
                    node,
                    f"{dotted}() stores an unpicklable value ({detail}) on "
                    f"spec {spec_locals[arg.id]} argument {arg.id!r} "
                    f"(path: {via})",
                )

    def _check_attr_assign(
        self,
        module: LintModule,
        facts,
        node: ast.Assign,
        spec_locals: dict[str, str],
    ) -> Iterator[Finding]:
        for target in node.targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in spec_locals
            ):
                continue
            spec_cls = spec_locals[target.value.id]
            value = node.value
            if isinstance(value, ast.Lambda):
                yield module.finding(
                    self.id,
                    value,
                    f"lambda assigned to attribute {target.attr!r} of "
                    f"picklable spec {spec_cls}; it will not pickle",
                )
            elif isinstance(value, ast.Name):
                local_defs = _enclosing_local_defs(module, node)
                if value.id in local_defs:
                    yield module.finding(
                        self.id,
                        value,
                        f"local {local_defs[value.id]} {value.id!r} assigned "
                        f"to attribute {target.attr!r} of picklable spec "
                        f"{spec_cls}; it will not pickle",
                    )
            elif isinstance(value, ast.Call):
                hit = self._unpicklable_call(module, facts, value)
                if hit is not None:
                    detail, path = hit
                    yield module.finding(
                        self.id,
                        value,
                        f"call assigned to attribute {target.attr!r} of "
                        f"picklable spec {spec_cls} returns an unpicklable "
                        f"value ({detail}; path: {path})",
                    )

    def _unpicklable_call(
        self, module: LintModule, facts, node: ast.Call
    ) -> tuple[str, str] | None:
        dotted = _call_dotted(module, node)
        if dotted is None:
            return None
        fid = facts.resolve(
            module.modpath, dotted, _enclosing_class_name(module, node)
        )
        entry = facts.unpicklable.get(fid) if fid is not None else None
        if entry is None:
            return None
        return entry[0], chain_display(fid, entry)


class InterproceduralResourceLeak(Rule):
    """REP103: a local bound to a freshly acquired resource (open file,
    run writer, tracer span — possibly acquired through a helper) must
    be context-managed, closed in a ``finally``, or handed off.  A bare
    ``x.close()`` leaks the handle on every exception path between
    acquisition and close.
    """

    id = "REP103"
    title = "acquired resources closed on all paths (with / try-finally)"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        facts = ctx.facts_for(module)
        for scope in _scopes(module.tree):
            acquisitions: list[tuple[str, ast.Assign, str, str | None]] = []
            for node in _scope_walk(scope):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                ):
                    hit = self._acquires(module, ctx, facts, node.value)
                    if hit is not None:
                        acquisitions.append(
                            (node.targets[0].id, node, hit[0], hit[1])
                        )
            for name, node, detail, path in acquisitions:
                disposition = self._disposition(module, scope, name, node)
                if disposition == "safe":
                    continue
                source = f"{detail}" + (f" (path: {path})" if path else "")
                if disposition == "unsafe-close":
                    yield module.finding(
                        self.id,
                        node,
                        f"resource {name!r} from {source} is closed outside "
                        "try/finally; an exception before close() leaks it "
                        "(use `with` or move close() to a finally block)",
                    )
                else:
                    yield module.finding(
                        self.id,
                        node,
                        f"resource {name!r} from {source} is never closed "
                        "in this scope (use `with` or close it in a finally "
                        "block)",
                    )

    def _acquires(
        self, module: LintModule, ctx: LintContext, facts, node: ast.Call
    ) -> tuple[str, str | None] | None:
        """(detail, witness path) when the call acquires a resource."""
        dotted = _call_dotted(module, node)
        if dotted is None:
            return None
        factories = ctx.config.resource_factories
        terminal = dotted.rpartition(".")[2]
        if dotted in factories or any(
            "." not in f and f == terminal for f in factories
        ):
            return terminal, None
        fid = facts.resolve(
            module.modpath, dotted, _enclosing_class_name(module, node)
        )
        entry = facts.resource.get(fid) if fid is not None else None
        if entry is None:
            return None
        return entry[0], chain_display(fid, entry)

    def _disposition(
        self, module: LintModule, scope: ast.AST, name: str, acquired: ast.Assign
    ) -> str:
        """"safe", "unsafe-close" or "leak" for one acquired local."""
        finally_nodes: set[int] = set()
        for node in _scope_walk(scope):
            if isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    for sub in ast.walk(stmt):
                        finally_nodes.add(id(sub))
        closed_in_finally = closed_elsewhere = False
        for node in _scope_walk(scope):
            if isinstance(node, ast.withitem):
                expr = node.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    return "safe"  # `with x:` releases it
                if (
                    isinstance(expr, ast.Call)
                    and any(
                        isinstance(a, ast.Name) and a.id == name
                        for a in expr.args
                    )
                ):
                    return "safe"  # contextlib.closing(x) and friends
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None and any(
                    isinstance(n, ast.Name) and n.id == name
                    for n in ast.walk(value)
                ):
                    return "safe"  # ownership transferred to the caller
            elif isinstance(node, ast.Assign) and node is not acquired:
                if any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                ) and any(
                    isinstance(n, ast.Name) and n.id == name
                    for n in ast.walk(node.value)
                ):
                    return "safe"  # stored into longer-lived state
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "close"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name
                ):
                    if id(node) in finally_nodes:
                        closed_in_finally = True
                    else:
                        closed_elsewhere = True
                elif any(
                    isinstance(a, ast.Name) and a.id == name
                    for a in (*node.args, *(kw.value for kw in node.keywords))
                ):
                    return "safe"  # handed to another owner
        if closed_in_finally:
            return "safe"
        if closed_elsewhere:
            return "unsafe-close"
        return "leak"


class RegistryNameFlow(Rule):
    """REP104: span/event/metric names built from f-strings,
    concatenation or constant locals are constant-folded and checked
    against the ``repro/obs/names.py`` registry; names that cannot be
    folded are rejected outright (every exporter is keyed on the
    registry).
    """

    id = "REP104"
    title = "computed span/event/metric names must fold to registered constants"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        tracer_names = frozenset(ctx.config.tracer_names)
        for scope in _scopes(module.tree):
            const_env = _const_str_locals(scope)
            for node in _scope_walk(scope):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                method = node.func.attr
                if method in ("span", "event", "add_span"):
                    if not _is_tracer_receiver(node.func.value, tracer_names):
                        continue
                    kind = "event" if method == "event" else "span"
                    registry = (
                        ctx.event_names if method == "event" else ctx.span_names
                    )
                elif method in ("histogram", "gauge"):
                    if not _is_metrics_receiver(node.func.value):
                        continue
                    kind = "metric"
                    registry = ctx.metric_names
                else:
                    continue
                if not node.args:
                    continue
                name_arg = node.args[0]
                if isinstance(name_arg, ast.Constant):
                    continue  # literal names: REP005/REP008's registry check
                folded = _fold_constant_str(name_arg, const_env)
                if folded is None:
                    yield module.finding(
                        self.id,
                        node,
                        f"{method}() name cannot be resolved statically; "
                        "use a name that folds to a registered constant",
                    )
                    continue
                if folded not in registry:
                    yield module.finding(
                        self.id,
                        name_arg,
                        f"{kind} name {folded!r} (constant-folded) is not "
                        "registered in repro/obs/names.py",
                    )


def _const_str_locals(scope: ast.AST) -> dict[str, str]:
    """Locals bound exactly once, to a string literal, in this scope."""
    values: dict[str, str] = {}
    stores: dict[str, int] = {}
    for node in _scope_walk(scope):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            stores[node.id] = stores.get(node.id, 0) + 1
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                values[target.id] = node.value.value
    return {k: v for k, v in values.items() if stores.get(k) == 1}


def _fold_constant_str(node: ast.AST, env: dict[str, str]) -> str | None:
    """Constant-fold a string expression; None when it cannot fold."""
    if isinstance(node, ast.Constant):
        return node.value if isinstance(node.value, str) else None
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.FormattedValue):
                if value.format_spec is not None or value.conversion != -1:
                    return None
                part = _fold_constant_str(value.value, env)
            else:
                part = _fold_constant_str(value, env)
            if part is None:
                return None
            parts.append(part)
        return "".join(parts)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _fold_constant_str(node.left, env)
        right = _fold_constant_str(node.right, env)
        if left is None or right is None:
            return None
        return left + right
    return None


class KernelStateEscape(Rule):
    """REP105: a registered kernel transitively reaches coordinator
    state — a module-global write or a coordinator-singleton read —
    through its callees.  REP002 checks the kernel module itself; this
    closes the cross-module hole.
    """

    id = "REP105"
    title = "kernels must not transitively reach coordinator state"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        if module.modpath != ctx.kernel_modpath:
            return
        facts = ctx.facts_for(module)
        for name in _registered_kernels(module.tree):
            fid = f"{module.modpath}::{name}"
            entry = facts.state.get(fid)
            if entry is None:
                continue
            detail, chain, lineno = entry
            if not chain:
                continue  # direct: REP002 reports it with full context
            yield Finding(
                self.id,
                module.path,
                lineno,
                1,
                f"kernel {name!r} transitively {detail} "
                f"(path: {chain_display(fid, entry)})",
            )


# The CFG-layer rules live in their own package but share this module's
# AST helpers; the bottom-of-module import (all helper names are defined
# by now) is the cycle-safe direction.  Reach them through ALL_RULES.
from repro.lint.cfg.rules import CFG_RULES  # noqa: E402

ALL_RULES: tuple[Rule, ...] = (
    NoNondeterministicCalls(),
    KernelPurity(),
    PicklableSpecs(),
    DeclaredCounters(),
    TracerDiscipline(),
    NoUnorderedIteration(),
    SlotsOnHotPaths(),
    MetricDiscipline(),
    TransitiveNondeterminism(),
    PickleReachability(),
    InterproceduralResourceLeak(),
    RegistryNameFlow(),
    KernelStateEscape(),
    *CFG_RULES,
)


def rule_by_id(rule_id: str) -> Rule:
    for rule in ALL_RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(f"unknown rule {rule_id!r}")

"""The REP001..REP007 rule implementations.

Each rule encodes one contract the determinism/performance story rests
on; ``docs/STATIC_ANALYSIS.md`` documents the *why* behind every one.
Rules are pure AST analyses — linting never imports repository code.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, LintContext, LintModule

__all__ = ["ALL_RULES", "Rule", "counter_uses", "rule_by_id"]


class Rule:
    """Base class: one checker with a stable id."""

    id = "REP000"
    title = ""

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError


# -- REP001: wall-clock / nondeterministic calls ------------------------------

#: Dotted call paths that read the wall clock or an OS entropy source.
_NONDETERMINISTIC_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "uuid.getnode",
    }
)

#: The one deterministic entry point on the stdlib ``random`` module.
_SEEDED_RANDOM = frozenset({"random.Random"})


class NoNondeterministicCalls(Rule):
    """REP001: engine/kernel/core code may not read wall clocks or OS
    entropy; randomness must flow through an explicitly seeded generator.

    ``time.perf_counter``/``time.process_time`` stay legal: they feed the
    advisory ``time.*`` timers that are excluded from determinism
    comparisons (see ``docs/OBSERVABILITY.md``).
    """

    id = "REP001"
    title = "no wall-clock or unseeded-randomness calls in deterministic code"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.config.in_deterministic_scope(module.modpath):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.dotted(node.func)
            if dotted is None:
                continue
            if dotted in _NONDETERMINISTIC_CALLS:
                yield module.finding(
                    self.id, node, f"nondeterministic call {dotted}()"
                )
            elif dotted.startswith("random.") and dotted not in _SEEDED_RANDOM:
                yield module.finding(
                    self.id,
                    node,
                    f"{dotted}() uses the global unseeded RNG; "
                    "use random.Random(seed)",
                )
            elif dotted.startswith("secrets."):
                yield module.finding(
                    self.id, node, f"{dotted}() draws OS entropy"
                )
            elif dotted.endswith(".random.default_rng") and not (
                node.args or node.keywords
            ):
                yield module.finding(
                    self.id,
                    node,
                    "default_rng() without a seed is nondeterministic",
                )
            elif dotted.startswith("numpy.random.") and not dotted.endswith(
                ".default_rng"
            ):
                yield module.finding(
                    self.id,
                    node,
                    f"{dotted}() uses numpy's global RNG; "
                    "use np.random.default_rng(seed)",
                )


# -- REP002: kernel purity ----------------------------------------------------

#: Call roots kernels may never reach: real filesystem, network,
#: processes, and ambient-state modules.  Task I/O goes through the
#: shadow ``LocalDisk`` the coordinator absorbs.
_IMPURE_ROOTS = frozenset(
    {
        "os",
        "io",
        "socket",
        "subprocess",
        "shutil",
        "tempfile",
        "pathlib",
        "urllib",
        "http",
        "requests",
    }
)

_IMPURE_BUILTINS = frozenset({"open", "print", "input", "exec", "eval", "globals"})

#: Method names that mutate a container in place.
_MUTATORS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "extend",
        "remove",
        "discard",
        "insert",
        "write",
    }
)


def _attr_root(node: ast.AST) -> ast.AST:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def _local_bindings(fn: ast.FunctionDef) -> set[str]:
    names = {a.arg for a in fn.args.args + fn.args.posonlyargs + fn.args.kwonlyargs}
    for extra in (fn.args.vararg, fn.args.kwarg):
        if extra is not None:
            names.add(extra.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.partition(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
    return names


class KernelPurity(Rule):
    """REP002: functions registered as task kernels must be pure.

    A kernel runs in a forked worker; anything it does outside
    ``(context, spec) -> result`` — touching coordinator singletons,
    mutating module globals, opening real files or sockets — silently
    diverges between the Serial/Thread/MP executors.
    """

    id = "REP002"
    title = "task kernels must be pure (shadow-disk I/O only)"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        if module.modpath != ctx.kernel_modpath:
            return
        tree = module.tree
        defs = {
            n.name: n
            for n in tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        module_names = _module_level_names(tree)
        kernels = _registered_kernels(tree)
        # Close over module-local helpers the kernels call.
        reachable: dict[str, ast.FunctionDef] = {}
        frontier = [name for name in kernels if name in defs]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable[name] = defs[name]
            for node in ast.walk(defs[name]):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in defs
                ):
                    frontier.append(node.func.id)
        singletons = frozenset(ctx.config.coordinator_singletons)
        for fn in reachable.values():
            yield from self._check_function(module, fn, module_names, singletons)

    def _check_function(
        self,
        module: LintModule,
        fn: ast.FunctionDef,
        module_names: set[str],
        singletons: frozenset[str],
    ) -> Iterator[Finding]:
        local = _local_bindings(fn)
        where = f"kernel {fn.name!r}"
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                yield module.finding(
                    self.id, node, f"{where} declares global {', '.join(node.names)}"
                )
            elif isinstance(node, ast.Name):
                if node.id in singletons:
                    yield module.finding(
                        self.id,
                        node,
                        f"{where} touches coordinator singleton {node.id}",
                    )
            elif isinstance(node, ast.Call):
                dotted = module.dotted(node.func)
                if dotted is not None:
                    root, _, _rest = dotted.partition(".")
                    if root in _IMPURE_ROOTS and root not in local:
                        yield module.finding(
                            self.id, node, f"{where} calls impure API {dotted}()"
                        )
                    elif dotted in _IMPURE_BUILTINS and dotted not in local:
                        yield module.finding(
                            self.id, node, f"{where} calls builtin {dotted}()"
                        )
                # Mutating a module-level container through a method call.
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS
                ):
                    root_node = _attr_root(node.func.value)
                    if (
                        isinstance(root_node, ast.Name)
                        and root_node.id in module_names
                        and root_node.id not in local
                    ):
                        yield module.finding(
                            self.id,
                            node,
                            f"{where} mutates module global {root_node.id!r} "
                            f"via .{node.func.attr}()",
                        )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        root_node = _attr_root(target)
                        if (
                            isinstance(root_node, ast.Name)
                            and root_node.id in module_names
                            and root_node.id not in local
                        ):
                            yield module.finding(
                                self.id,
                                node,
                                f"{where} writes module global {root_node.id!r}",
                            )


def _module_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.partition(".")[0])
    return names


def _registered_kernels(tree: ast.Module) -> list[str]:
    """Function names passed to module-level ``register_kernel(...)``."""
    out = []
    for node in tree.body:
        if (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == "register_kernel"
            and len(node.value.args) >= 2
            and isinstance(node.value.args[1], ast.Name)
        ):
            out.append(node.value.args[1].id)
    return out


# -- REP003: no unpicklable values on task-spec fields ------------------------


class PicklableSpecs(Rule):
    """REP003: task specs cross process boundaries; lambdas, closures
    and local classes do not pickle.  Anything callable a kernel needs
    belongs in the fork-inherited job *context*, not the spec.
    """

    id = "REP003"
    title = "no lambdas/closures/local classes on picklable task specs"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        spec_names = ctx.spec_class_names
        if module.modpath == ctx.kernel_modpath:
            yield from self._check_spec_defaults(module, spec_names)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _terminal_name(node.func)
            if name not in spec_names:
                continue
            local_defs = _enclosing_local_defs(module, node)
            for value in [*node.args, *(kw.value for kw in node.keywords)]:
                if isinstance(value, ast.Lambda):
                    yield module.finding(
                        self.id,
                        value,
                        f"lambda passed to picklable spec {name}; "
                        "move the callable into the job context",
                    )
                elif isinstance(value, ast.Name) and value.id in local_defs:
                    yield module.finding(
                        self.id,
                        value,
                        f"local {local_defs[value.id]} {value.id!r} passed to "
                        f"picklable spec {name}; it will not pickle",
                    )

    def _check_spec_defaults(
        self, module: LintModule, spec_names: frozenset[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name in spec_names:
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Lambda):
                        yield module.finding(
                            self.id,
                            sub,
                            f"lambda default on spec {node.name} will not pickle",
                        )


def _terminal_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _enclosing_local_defs(module: LintModule, node: ast.AST) -> dict[str, str]:
    """Names of defs/classes local to the functions enclosing ``node``."""
    out: dict[str, str] = {}
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(ancestor):
                if sub is ancestor:
                    continue
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    out.setdefault(sub.name, "function")
                elif isinstance(sub, ast.ClassDef):
                    out.setdefault(sub.name, "class")
    return out


# -- REP004: counter names must be declared -----------------------------------

_COUNTER_CLASS = "repro.mapreduce.counters.C"


def counter_uses(module: LintModule) -> dict[str, list[ast.Attribute]]:
    """All ``C.<name>`` accesses in a module, alias-resolved."""
    uses: dict[str, list[ast.Attribute]] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute):
            dotted = module.dotted(node)
            if dotted and dotted.startswith(_COUNTER_CLASS + "."):
                attr = dotted[len(_COUNTER_CLASS) + 1 :]
                if "." not in attr:
                    uses.setdefault(attr, []).append(node)
    return uses


class DeclaredCounters(Rule):
    """REP004: every counter referenced anywhere must be declared on the
    registry class ``C``.  A typo'd counter name raises only on the code
    path that touches it — possibly a rarely-exercised fault path.
    """

    id = "REP004"
    title = "counter names must be declared in the counter registry"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        declared = ctx.counter_names
        for attr, nodes in sorted(counter_uses(module).items()):
            if attr not in declared:
                for node in nodes:
                    yield module.finding(
                        self.id,
                        node,
                        f"counter C.{attr} is not declared in the counter registry",
                    )


# -- REP005: tracer discipline ------------------------------------------------


class TracerDiscipline(Rule):
    """REP005: spans must be context-managed and span/event names must
    come from the registry (``repro/obs/names.py``).

    A span handle left unclosed on an exception path corrupts the
    logical clock for the rest of the trace; an unregistered name breaks
    every exporter/consumer keyed on the known vocabulary.
    """

    id = "REP005"
    title = "spans context-managed; span/event names from the registry"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        tracer_names = frozenset(ctx.config.tracer_names)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("span", "event", "add_span")
            ):
                continue
            if not _is_tracer_receiver(node.func.value, tracer_names):
                continue
            method = node.func.attr
            if method == "span" and not isinstance(
                module.parents.get(node), ast.withitem
            ):
                yield module.finding(
                    self.id,
                    node,
                    "span() outside a with-statement; the handle must be "
                    "closed on all paths (use `with tracer.span(...)`)",
                )
            if not node.args:
                continue
            name_arg = node.args[0]
            if not (
                isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)
            ):
                yield module.finding(
                    self.id,
                    node,
                    f"{method}() name must be a registered string literal",
                )
                continue
            registry = ctx.event_names if method == "event" else ctx.span_names
            kind = "event" if method == "event" else "span"
            if name_arg.value not in registry:
                yield module.finding(
                    self.id,
                    name_arg,
                    f"{kind} name {name_arg.value!r} is not registered in "
                    "repro/obs/names.py",
                )


def _is_tracer_receiver(node: ast.AST, tracer_names: frozenset[str]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in tracer_names
    if isinstance(node, ast.Attribute):
        return node.attr in tracer_names
    return False


# -- REP006: unordered set iteration ------------------------------------------

#: Wrapping calls for which element order cannot matter.
_ORDER_FREE_CALLS = frozenset(
    {"sorted", "set", "frozenset", "sum", "min", "max", "len", "any", "all"}
)

#: Set methods whose result is itself a set.
_SET_PRODUCING_METHODS = frozenset(
    {"difference", "union", "intersection", "symmetric_difference", "copy"}
)

_SET_BINOPS = (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)


class NoUnorderedIteration(Rule):
    """REP006: iterating a set/frozenset without ``sorted(...)`` in
    output- or trace-affecting code.  Set iteration order depends on the
    per-process hash seed, so it silently varies across runs.
    """

    id = "REP006"
    title = "no unordered set iteration in deterministic code"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.config.in_deterministic_scope(module.modpath):
            return
        set_attrs = _class_set_attrs(module)
        for scope in _scopes(module.tree):
            set_locals = _scope_set_locals(scope)
            for site, iter_expr in _iteration_sites(scope):
                if not self._is_set_like(module, iter_expr, set_locals, set_attrs):
                    continue
                if self._order_free_context(module, site):
                    continue
                yield module.finding(
                    self.id,
                    iter_expr,
                    "iteration over a set has hash-seed-dependent order; "
                    "wrap it in sorted(...)",
                )

    def _is_set_like(
        self,
        module: LintModule,
        node: ast.AST,
        set_locals: set[str],
        set_attrs: dict[ast.ClassDef, set[str]],
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            fname = _terminal_name(node.func)
            if isinstance(node.func, ast.Name) and fname in ("set", "frozenset"):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and fname in _SET_PRODUCING_METHODS
                and self._is_set_like(module, node.func.value, set_locals, set_attrs)
            ):
                return True
            return False
        if isinstance(node, ast.Name):
            return node.id in set_locals
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            for ancestor in module.ancestors(node):
                if isinstance(ancestor, ast.ClassDef):
                    return node.attr in set_attrs.get(ancestor, set())
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self._is_set_like(
                module, node.left, set_locals, set_attrs
            ) or self._is_set_like(module, node.right, set_locals, set_attrs)
        return False

    def _order_free_context(self, module: LintModule, site: ast.AST) -> bool:
        """True when the iteration's result cannot depend on order."""
        if isinstance(site, ast.SetComp):
            return True
        node = site
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.Call):
                fname = _terminal_name(ancestor.func)
                if fname in _ORDER_FREE_CALLS or fname in _SET_PRODUCING_METHODS:
                    return True
            if isinstance(ancestor, ast.SetComp):
                return True
            if isinstance(ancestor, ast.stmt):
                return False
        return False


def _scopes(tree: ast.Module) -> Iterator[ast.Module | ast.FunctionDef]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function/class scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(node))


def _is_set_expr(node: ast.AST) -> bool:
    return isinstance(node, (ast.Set, ast.SetComp)) or (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_set_annotation(node: ast.AST | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset")
    if isinstance(node, ast.Subscript):
        return _is_set_annotation(node.value)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.partition("[")[0].strip() in ("set", "frozenset")
    return False


def _scope_set_locals(scope: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in _scope_walk(scope):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _is_set_annotation(node.annotation) or (
                node.value is not None and _is_set_expr(node.value)
            ):
                names.add(node.target.id)
    return names


def _class_set_attrs(module: LintModule) -> dict[ast.ClassDef, set[str]]:
    out: dict[ast.ClassDef, set[str]] = {}
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        attrs: set[str] = set()
        for node in ast.walk(cls):
            target = None
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign) and (
                _is_set_annotation(node.annotation)
                or (node.value is not None and _is_set_expr(node.value))
            ):
                target = node.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs.add(target.attr)
        if attrs:
            out[cls] = attrs
    return out


def _iteration_sites(scope: ast.AST) -> Iterator[tuple[ast.AST, ast.AST]]:
    """(site, iterated-expression) pairs within one scope."""
    for node in _scope_walk(scope):
        if isinstance(node, ast.For):
            yield node, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield node, gen.iter
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate", "iter")
            and len(node.args) == 1
        ):
            yield node, node.args[0]


# -- REP007: __slots__ on hot-path classes ------------------------------------


class SlotsOnHotPaths(Rule):
    """REP007: classes in the hot-path modules named by
    ``docs/PERFORMANCE.md`` must declare ``__slots__`` (directly or via
    ``@dataclass(slots=True)``) — per-instance dicts cost measurable
    memory and attribute-lookup time on these paths.
    """

    id = "REP007"
    title = "__slots__ required on hot-path classes"

    _EXEMPT_BASES = frozenset({"Protocol", "Exception", "BaseException", "Enum"})

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        if module.modpath not in ctx.hot_path_modules:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and not self._has_slots(node):
                yield module.finding(
                    self.id,
                    node,
                    f"hot-path class {node.name} has no __slots__ "
                    "(add __slots__ or @dataclass(slots=True))",
                )

    def _has_slots(self, cls: ast.ClassDef) -> bool:
        for base in cls.bases:
            name = _terminal_name(base)
            if name in self._EXEMPT_BASES or (
                name and name.endswith(("Error", "Exception", "Warning"))
            ):
                return True
        for deco in cls.decorator_list:
            if isinstance(deco, ast.Call) and _terminal_name(deco.func) == "dataclass":
                for kw in deco.keywords:
                    if (
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets
            ):
                return True
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            ):
                return True
        return False


ALL_RULES: tuple[Rule, ...] = (
    NoNondeterministicCalls(),
    KernelPurity(),
    PicklableSpecs(),
    DeclaredCounters(),
    TracerDiscipline(),
    NoUnorderedIteration(),
    SlotsOnHotPaths(),
)


def rule_by_id(rule_id: str) -> Rule:
    for rule in ALL_RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(f"unknown rule {rule_id!r}")

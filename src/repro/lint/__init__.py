"""`reprolint`: repo-specific static analysis for the determinism contracts.

The engines in this repository obey contracts that ordinary linters do
not know about — byte-identical output across executors, pure picklable
kernels, registered counter and span names.  This package machine-checks
those contracts at lint time with an AST-based rule framework:

* :mod:`repro.lint.core` — the driver: module model, suppression
  comments, baseline matching;
* :mod:`repro.lint.rules` — the REP001..REP007 checkers;
* :mod:`repro.lint.config` — scoping (which modules each rule covers);
* :mod:`repro.lint.report` — text/JSON reporters;
* :mod:`repro.lint.cli` — the ``repro lint`` subcommand.

See ``docs/STATIC_ANALYSIS.md`` for the contract each rule encodes.
"""

from repro.lint.config import LintConfig
from repro.lint.core import Finding, LintContext, LintModule, lint_paths, lint_source
from repro.lint.report import format_findings
from repro.lint.rules import ALL_RULES, rule_by_id

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintConfig",
    "LintContext",
    "LintModule",
    "format_findings",
    "lint_paths",
    "lint_source",
    "rule_by_id",
]

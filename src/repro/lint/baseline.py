"""Baseline files: grandfather existing findings, fail on new ones.

A baseline is a committed JSON list of finding fingerprints
``(rule, path, message)`` — line numbers are deliberately excluded so
unrelated edits do not churn the file.  ``repro lint`` subtracts the
baseline from the current findings; anything left fails the run.  The
goal state (and the committed state of this repository) is an *empty*
baseline: real violations get fixed, intentional ones get an inline
``# reprolint: disable=REPxxx -- reason``.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.lint.core import Finding

__all__ = ["apply_baseline", "load_baseline", "write_baseline"]


def load_baseline(path: Path) -> Counter:
    """Fingerprint multiset from a baseline file (empty if missing)."""
    if not path.exists():
        return Counter()
    data = json.loads(path.read_text())
    return Counter(
        (e["rule"], e["path"], e["message"]) for e in data.get("findings", [])
    )


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    # Sort by the fingerprint itself, not by line: the file must be a pure
    # function of the fingerprint multiset or findings that merely *move*
    # within a file would reorder (churn) the committed baseline.
    entries = [
        {"rule": f.rule, "path": f.path, "message": f.message}
        for f in sorted(findings, key=lambda f: (f.path, f.rule, f.message))
    ]
    path.write_text(
        json.dumps({"version": 1, "findings": entries}, indent=2, sort_keys=True) + "\n"
    )


def apply_baseline(
    findings: Iterable[Finding], baseline: Counter
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, grandfathered) against the baseline.

    Each baseline entry absorbs at most its recorded count, so adding a
    *second* instance of a grandfathered violation still fails.
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    old: list[Finding] = []
    for f in findings:
        key = f.fingerprint()
        if remaining[key] > 0:
            remaining[key] -= 1
            old.append(f)
        else:
            new.append(f)
    return new, old

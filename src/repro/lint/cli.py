"""The ``repro lint`` subcommand.

Examples::

    python -m repro lint                           # default scope
    python -m repro lint src/ --format json
    python -m repro lint --format sarif            # code-scanning upload
    python -m repro lint --changed-only            # git-diff-aware
    python -m repro lint src/ --write-baseline     # grandfather findings
    python -m repro lint --update-baseline         # regenerate + show drift
    python -m repro lint --stats                   # per-rule wall time
    python -m repro lint --list-rules
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from collections import Counter
from pathlib import Path

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.config import LintConfig, repo_root
from repro.lint.core import lint_paths
from repro.lint.report import format_findings, format_timings
from repro.lint.rules import ALL_RULES

__all__ = ["add_lint_parser", "changed_py_files", "cmd_lint", "default_lint_paths"]

DEFAULT_BASELINE = "lint-baseline.json"


def default_lint_paths(root: Path) -> list[str]:
    """The default lint scope: src plus the satellite trees that feed
    published numbers (benchmarks, examples, the shared test fixtures)."""
    out = [str(root / "src")]
    for extra in ("benchmarks", "examples", "tests/conftest.py"):
        candidate = root / extra
        if candidate.exists():
            out.append(str(candidate))
    return out


def changed_py_files(root: Path, base_ref: str) -> list[str] | None:
    """Python files changed vs ``base_ref`` (staged, unstaged and
    committed), or None when git is unavailable.

    Runs the diff with ``--find-renames`` and parses ``--name-status``
    output so a renamed module is always re-linted under its *new* path,
    regardless of the host's ``diff.renames`` configuration (with rename
    detection off a rename degrades to a delete plus an add; with it on,
    the ``R<score>\\told\\tnew`` line names both sides — either way the
    destination must land in the lint scope, never the stale old path).
    """
    try:
        proc = subprocess.run(
            [
                "git",
                "diff",
                "--name-status",
                "--find-renames",
                "--diff-filter=d",
                base_ref,
                "--",
            ],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=30,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    out = []
    for line in proc.stdout.splitlines():
        parts = line.rstrip("\n").split("\t")
        if len(parts) < 2:
            continue
        # Renames/copies report "R100<TAB>old<TAB>new": lint the new
        # path.  Plain statuses report "status<TAB>path".
        path = parts[-1]
        if path.endswith(".py") and (root / path).is_file():
            out.append(str(root / path))
    return sorted(set(out))


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.title}")
        return 0

    root = repo_root(Path.cwd())
    config = LintConfig(
        root=root,
        select=tuple(args.select.split(",")) if args.select else (),
        use_cache=not args.no_cache,
    )

    if args.changed_only:
        changed = changed_py_files(root, args.base_ref)
        if changed is None:
            print("lint: --changed-only needs git; linting the full scope",
                  file=sys.stderr)
            paths = args.paths or default_lint_paths(root)
        elif not changed:
            sys.stdout.write(format_findings([], args.format))
            return 0
        else:
            paths = changed
    else:
        paths = args.paths or default_lint_paths(root)
    timings: dict[str, float] | None = {} if args.stats else None
    findings = lint_paths(paths, config, timings=timings)

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    if args.write_baseline or args.update_baseline:
        old = load_baseline(baseline_path)
        write_baseline(baseline_path, findings)
        new = Counter(f.fingerprint() for f in findings)
        added = sum((new - old).values())
        removed = sum((old - new).values())
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path} "
            f"({added} added, {removed} removed)"
        )
        return 0

    baseline = load_baseline(baseline_path) if not args.no_baseline else None
    grandfathered: list = []
    if baseline:
        findings, grandfathered = apply_baseline(findings, baseline)
    sys.stdout.write(format_findings(findings, args.format, timings=timings))
    if args.stats and timings is not None and args.format == "text":
        sys.stdout.write(format_timings(timings))
    if grandfathered and args.format == "text":
        print(f"({len(grandfathered)} grandfathered finding(s) in {baseline_path.name})")
    return 1 if findings else 0


def add_lint_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "lint",
        help="static-analysis pass for the repo's determinism contracts",
        description="Check the REP001..REP008, REP101..REP105 and "
        "REP201..REP206 contracts (see docs/STATIC_ANALYSIS.md).",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint "
        "(default: src/ benchmarks/ examples/ tests/conftest.py)",
    )
    p.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    p.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    p.add_argument(
        "--no-baseline", action="store_true", help="ignore any baseline file"
    )
    p.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the baseline and exit 0",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="regenerate the baseline deterministically and report the "
        "added/removed drift vs the old file",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="report per-rule wall time (text table, or a 'timings' key "
        "with --format json)",
    )
    p.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    p.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only .py files changed vs --base-ref (for pre-commit)",
    )
    p.add_argument(
        "--base-ref",
        default="HEAD",
        metavar="REF",
        help="git ref --changed-only diffs against (default: HEAD)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk dataflow summary cache",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    p.set_defaults(fn=cmd_lint)

"""Lint configuration: which modules each contract covers.

The scopes are dotted-path *prefixes* over the in-repo module path
(``repro/core/engine.py`` — the part of the file path from the ``repro``
package root).  Everything here has sensible repo defaults so ``repro
lint src/`` needs no flags; tests inject overrides to lint fixture
snippets without touching the real tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["LintConfig", "repo_root"]


def repo_root(start: Path | None = None) -> Path:
    """The repository root: the nearest ancestor holding ``src/repro``."""
    here = (start or Path(__file__)).resolve()
    for parent in (here, *here.parents):
        if (parent / "src" / "repro").is_dir():
            return parent
    return Path.cwd()


@dataclass(slots=True)
class LintConfig:
    """Knobs for one lint run.  Defaults describe this repository."""

    #: Repository root; source of the registry files below.
    root: Path = field(default_factory=repo_root)

    #: Module-path prefixes whose code feeds job output, counters or
    #: traces — the determinism scope for REP001/REP006.
    deterministic_scopes: tuple[str, ...] = (
        "repro/core/",
        "repro/mapreduce/",
        "repro/exec/",
        "repro/io/",
        "repro/hdfs/",
        "repro/obs/",
        "repro/workloads/",
        "repro/simulator/",
    )

    #: Where kernels are registered (REP002/REP003 read this module).
    kernel_module: str = "src/repro/exec/kernels.py"

    #: Counter registry (REP004 reads ``class C`` from this module).
    counters_module: str = "src/repro/mapreduce/counters.py"

    #: Span/event/metric name registry (REP005 reads SPAN_NAMES and
    #: EVENT_NAMES; REP008 reads METRIC_NAMES).
    names_module: str = "src/repro/obs/names.py"

    #: Doc whose marked list names the hot-path modules (REP007).
    performance_doc: str = "docs/PERFORMANCE.md"

    #: Receiver names treated as tracers by REP005 (plus any
    #: ``<expr>.tracer`` attribute).
    tracer_names: tuple[str, ...] = ("tracer", "trc")

    #: Coordinator-side singletons kernels must never touch (REP002).
    coordinator_singletons: tuple[str, ...] = ("_FORK_CONTEXT", "_KERNELS")

    #: Rule ids to run; empty means all.
    select: tuple[str, ...] = ()

    # -- dataflow layer (REP101..REP105) ----------------------------------

    #: Paths (relative to root) whose modules form the whole-program
    #: call graph the interprocedural rules resolve against.
    program_scope: tuple[str, ...] = ("src/repro",)

    #: Calls that acquire a resource needing close/with (REP103); bare
    #: names match any terminal segment, dotted names match exactly.
    resource_factories: tuple[str, ...] = ("open", "repro.io.runio.RunWriter")

    #: Dataflow summary store (relative to root); None disables it.
    cache_path: str | None = ".reprolint-cache.json"
    use_cache: bool = True

    # -- cfg layer (REP201..REP206) ----------------------------------------

    #: Module-path prefixes whose functions seed the coordinator scope
    #: (everything there not reachable from a worker entry point runs on
    #: the coordinator).  Workloads are deliberately excluded: their
    #: map/reduce closures execute inside kernels.
    coordinator_scopes: tuple[str, ...] = (
        "repro/core/",
        "repro/mapreduce/",
        "repro/exec/",
        "repro/hdfs/",
        "repro/io/",
        "repro/obs/",
        "repro/simulator/",
    )

    #: Where the Executor protocol lives; ``pool.submit(fn, ...)`` sites
    #: here mark ``fn`` as a worker entry point.
    executor_module: str = "src/repro/exec/base.py"
    executor_source_override: str | None = None

    #: Calls that block the calling thread (REP203 forbids them in
    #: coordinator scope).  Exact dotted match after alias/constructor
    #: resolution, so ``q = queue.Queue(); q.get()`` matches
    #: ``queue.Queue.get`` while ``", ".join(...)`` never matches
    #: ``threading.Thread.join``.
    blocking_calls: tuple[str, ...] = (
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "os.wait",
        "os.waitpid",
        "select.select",
        "socket.create_connection",
        "socket.socket.accept",
        "socket.socket.connect",
        "socket.socket.recv",
        "socket.socket.sendall",
        "queue.Queue.get",
        "queue.Queue.put",
        "queue.Queue.join",
        "threading.Thread.join",
        "threading.Event.wait",
        "multiprocessing.Process.join",
    )

    #: Calls that produce fork-unsafe OS resources (REP202 forbids them
    #: on picklable spec fields and in kernel closures).
    fork_unsafe_factories: tuple[str, ...] = (
        "open",
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryFile",
        "socket.socket",
        "socket.create_connection",
        "subprocess.Popen",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Event",
    )

    #: Lock constructors the REP206 lock-order analysis tracks.
    lock_factories: tuple[str, ...] = ("threading.Lock", "threading.RLock")

    #: Receiver names treated as the job journal by REP204 (plus any
    #: ``<expr>.journal`` attribute).
    journal_receivers: tuple[str, ...] = ("journal",)

    #: Output-emission vocabulary for REP204: methods that append
    #: committed output, and the job attributes naming the output target.
    emit_methods: tuple[str, ...] = ("append_block",)
    emit_path_attrs: tuple[str, ...] = ("output_path",)

    #: Module globals exempt from REP201 beyond ``coordinator_singletons``
    #: (state with a documented ownership-transfer protocol).
    ownership_transfer_globals: tuple[str, ...] = ()

    #: Test injection: modpath -> source replacing the on-disk program.
    program_modules_override: dict[str, str] | None = None

    # -- test-injection overrides (bypass the registry files) -------------
    counter_names_override: frozenset[str] | None = None
    span_names_override: frozenset[str] | None = None
    event_names_override: frozenset[str] | None = None
    metric_names_override: frozenset[str] | None = None
    hot_path_modules_override: tuple[str, ...] | None = None
    kernel_source_override: str | None = None

    def in_deterministic_scope(self, modpath: str) -> bool:
        return modpath.startswith(self.deterministic_scopes)

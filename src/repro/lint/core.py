"""Lint driver: module model, suppression comments, registries, runner.

A :class:`LintModule` wraps one parsed source file with the derived
facts every rule needs (parent links, import-alias resolution,
per-line suppressions).  A :class:`LintContext` carries the run-wide
registries — declared counter names, registered span/event names, the
hot-path module list — parsed *statically* from their source files so
linting never imports repository code.
"""

from __future__ import annotations

import ast
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.lint.config import LintConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.rules import Rule

__all__ = [
    "Finding",
    "LintContext",
    "LintModule",
    "dotted_name",
    "lint_paths",
    "lint_source",
    "module_path_for",
]

#: ``# reprolint: disable=REP001,REP006 -- why this is fine``
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>REP\d{3}(?:\s*,\s*REP\d{3})*)"
    r"(?:\s*--\s*(?P<reason>.*))?"
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def fingerprint(self) -> tuple[str, str, str]:
        """Baseline identity: stable across pure line-number drift."""
        return (self.rule, self.path, self.message)

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def module_path_for(path: Path) -> str:
    """The in-repo module path: ``.../src/repro/core/engine.py`` ->
    ``repro/core/engine.py`` (fall back to the file name)."""
    parts = path.as_posix().split("/")
    for anchor in ("repro", "tests", "benchmarks", "examples"):
        if anchor in parts:
            return "/".join(parts[parts.index(anchor) :])
    return path.name


class LintModule:
    """One parsed source file plus the derived facts rules share."""

    __slots__ = ("path", "modpath", "source", "tree", "suppressions", "_parents", "_aliases")

    def __init__(self, source: str, *, path: str, modpath: str | None = None) -> None:
        self.path = path
        self.modpath = modpath if modpath is not None else module_path_for(Path(path))
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.suppressions = _parse_suppressions(source)
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._aliases: dict[str, str] | None = None

    # -- derived facts ------------------------------------------------------

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent links for the whole tree (built lazily once)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        parents = self.parents
        while node in parents:
            node = parents[node]
            yield node

    @property
    def aliases(self) -> dict[str, str]:
        """Bound name -> canonical dotted path, from the module's imports."""
        if self._aliases is None:
            aliases: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.asname:
                            aliases[alias.asname] = alias.name
                        else:
                            root = alias.name.partition(".")[0]
                            aliases.setdefault(root, root)
                elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                    for alias in node.names:
                        aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
            self._aliases = aliases
        return self._aliases

    def dotted(self, node: ast.AST) -> str | None:
        """Canonical dotted path of a Name/Attribute chain, alias-resolved."""
        return dotted_name(node, self.aliases)

    # -- findings -----------------------------------------------------------

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule,
            self.path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            message,
        )

    def suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        return bool(rules) and finding.rule in rules


def _parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            out[lineno] = frozenset(r.strip() for r in m.group("rules").split(","))
    return out


def dotted_name(node: ast.AST, aliases: dict[str, str] | None = None) -> str | None:
    """``np.random.default_rng`` -> ``numpy.random.default_rng`` (or None
    when the chain is not a plain Name/Attribute path)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = node.id
    if aliases:
        root = aliases.get(root, root)
    parts.append(root)
    return ".".join(reversed(parts))


# -- run-wide registries ------------------------------------------------------


class LintContext:
    """Registries shared by every rule in one run, parsed statically."""

    __slots__ = (
        "config",
        "_counter_names",
        "_counter_values",
        "_span_names",
        "_event_names",
        "_metric_names",
        "_hot_modules",
        "_kernel_source",
        "_spec_names",
        "_program",
        "_summaries",
        "_executor_source",
        "_exec_contexts",
        "_blocking",
        "_locks",
    )

    def __init__(self, config: LintConfig | None = None) -> None:
        self.config = config or LintConfig()
        self._counter_names: frozenset[str] | None = None
        self._counter_values: list[str] | None = None
        self._span_names: frozenset[str] | None = None
        self._event_names: frozenset[str] | None = None
        self._metric_names: frozenset[str] | None = None
        self._hot_modules: tuple[str, ...] | None = None
        self._kernel_source: str | None = None
        self._spec_names: frozenset[str] | None = None
        self._program = None
        self._summaries: dict[int, tuple] = {}
        self._executor_source: str | None = None
        self._exec_contexts: dict[int, object] = {}
        self._blocking: dict[int, dict] = {}
        self._locks: dict[int, tuple] = {}

    def _read(self, relpath: str) -> str:
        """Registry source, or "" when absent (rules then deactivate)."""
        try:
            return (self.config.root / relpath).read_text()
        except OSError:
            return ""

    # -- REP004: counter registry ------------------------------------------

    def _load_counters(self) -> None:
        names: list[str] = []
        values: list[str] = []
        tree = ast.parse(self._read(self.config.counters_module))
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == "C":
                for stmt in node.body:
                    if isinstance(stmt, ast.Assign) and isinstance(
                        stmt.targets[0], ast.Name
                    ):
                        names.append(stmt.targets[0].id)
                        if isinstance(stmt.value, ast.Constant):
                            values.append(str(stmt.value.value))
        self._counter_names = frozenset(n for n in names if not n.startswith("__"))
        self._counter_values = values

    @property
    def counter_names(self) -> frozenset[str]:
        if self.config.counter_names_override is not None:
            return self.config.counter_names_override
        if self._counter_names is None:
            self._load_counters()
        assert self._counter_names is not None
        return self._counter_names

    @property
    def counter_values(self) -> list[str]:
        """Declared counter string values (for uniqueness checks)."""
        if self._counter_values is None:
            self._load_counters()
        assert self._counter_values is not None
        return self._counter_values

    # -- REP005/REP008: span/event/metric name registries -------------------

    def _load_names(self) -> None:
        spans: frozenset[str] = frozenset()
        events: frozenset[str] = frozenset()
        metrics: frozenset[str] = frozenset()
        tree = ast.parse(self._read(self.config.names_module))
        for node in tree.body:
            if isinstance(node, ast.Assign) and isinstance(node.targets[0], ast.Name):
                target = node.targets[0].id
                if target in ("SPAN_NAMES", "EVENT_NAMES", "METRIC_NAMES"):
                    literals = frozenset(
                        n.value
                        for n in ast.walk(node.value)
                        if isinstance(n, ast.Constant) and isinstance(n.value, str)
                    )
                    if target == "SPAN_NAMES":
                        spans = literals
                    elif target == "EVENT_NAMES":
                        events = literals
                    else:
                        metrics = literals
        self._span_names = spans
        self._event_names = events
        self._metric_names = metrics

    @property
    def span_names(self) -> frozenset[str]:
        if self.config.span_names_override is not None:
            return self.config.span_names_override
        if self._span_names is None:
            self._load_names()
        assert self._span_names is not None
        return self._span_names

    @property
    def event_names(self) -> frozenset[str]:
        if self.config.event_names_override is not None:
            return self.config.event_names_override
        if self._event_names is None:
            self._load_names()
        assert self._event_names is not None
        return self._event_names

    @property
    def metric_names(self) -> frozenset[str]:
        if self.config.metric_names_override is not None:
            return self.config.metric_names_override
        if self._metric_names is None:
            self._load_names()
        assert self._metric_names is not None
        return self._metric_names

    # -- REP007: hot-path module list --------------------------------------

    @property
    def hot_path_modules(self) -> tuple[str, ...]:
        """Module paths required to use ``__slots__``, read from the marked
        list in ``docs/PERFORMANCE.md`` (the doc is the source of truth)."""
        if self.config.hot_path_modules_override is not None:
            return self.config.hot_path_modules_override
        if self._hot_modules is None:
            try:
                text = self._read(self.config.performance_doc)
            except OSError:
                self._hot_modules = ()
            else:
                m = re.search(
                    r"<!--\s*reprolint:\s*hot-path-modules\s*-->(.*?)<!--\s*/reprolint\s*-->",
                    text,
                    re.S,
                )
                body = m.group(1) if m else ""
                self._hot_modules = tuple(
                    module_path_for(Path(p)) for p in re.findall(r"`([^`]+\.py)`", body)
                )
        return self._hot_modules

    # -- REP002/REP003: kernel module --------------------------------------

    @property
    def kernel_source(self) -> str:
        if self.config.kernel_source_override is not None:
            return self.config.kernel_source_override
        if self._kernel_source is None:
            self._kernel_source = self._read(self.config.kernel_module)
        return self._kernel_source

    @property
    def kernel_modpath(self) -> str:
        return module_path_for(Path(self.config.kernel_module))

    @property
    def spec_class_names(self) -> frozenset[str]:
        """Picklable task-spec classes defined in the kernel module."""
        if self._spec_names is None:
            tree = ast.parse(self.kernel_source)
            self._spec_names = frozenset(
                n.name
                for n in ast.walk(tree)
                if isinstance(n, ast.ClassDef) and n.name.endswith("Spec")
            )
        return self._spec_names

    # -- REP101..REP105: whole-program dataflow -----------------------------

    @property
    def program(self):
        """The whole-program call-graph view (built lazily once per run)."""
        if self._program is None:
            from repro.lint.dataflow import build_program

            self._program = build_program(self.config)
        return self._program

    def module_summary(self, module: LintModule):
        """``(summary, digest)`` for one linted module, memoised per module."""
        from repro.lint.dataflow.cache import content_digest
        from repro.lint.dataflow.summary import SummaryOptions, summarize_module

        key = id(module)
        cached = self._summaries.get(key)
        if cached is None:
            digest = content_digest(module.source.encode("utf-8"))
            summary = summarize_module(
                module, SummaryOptions.from_config(self.config)
            )
            # The module itself rides along in the entry: an id() key is
            # only unique while the object is alive, and lint runs drop
            # each module after linting it.
            cached = (module, summary, digest)
            self._summaries[key] = cached
        return cached[1], cached[2]

    def facts_for(self, module: LintModule):
        """Program facts with ``module``'s current source spliced in.

        When the module matches the on-disk program copy this is the
        shared program facts; fixture sources and seeded-violation tests
        get a spliced view with their edits visible to the fixpoint.
        """
        summary, digest = self.module_summary(module)
        return self.program.facts_for(summary, digest)

    # -- REP201..REP206: execution contexts and concurrency facts -----------

    @property
    def executor_source(self) -> str:
        if self.config.executor_source_override is not None:
            return self.config.executor_source_override
        if self._executor_source is None:
            self._executor_source = self._read(self.config.executor_module)
        return self._executor_source

    @property
    def executor_modpath(self) -> str:
        return module_path_for(Path(self.config.executor_module))

    def exec_contexts(self, facts):
        """Coordinator/kernel context classification, memoised per facts
        object (the shared program facts plus any spliced fixture view)."""
        key = id(facts)
        cached = self._exec_contexts.get(key)
        if cached is None:
            from repro.lint.cfg.context import build_contexts

            try:
                executor_tree = ast.parse(self.executor_source)
            except SyntaxError:
                executor_tree = None
            cached = build_contexts(
                facts,
                kernel_tree=ast.parse(self.kernel_source),
                kernel_modpath=self.kernel_modpath,
                executor_tree=executor_tree,
                executor_modpath=self.executor_modpath,
                coordinator_scopes=self.config.coordinator_scopes,
            )
            self._exec_contexts[key] = cached
        return cached

    def blocking_facts(self, facts):
        key = id(facts)
        cached = self._blocking.get(key)
        if cached is None:
            from repro.lint.cfg.context import blocking_facts

            cached = blocking_facts(facts, self.config.blocking_calls)
            self._blocking[key] = cached
        return cached

    def lock_facts(self, facts):
        key = id(facts)
        cached = self._locks.get(key)
        if cached is None:
            from repro.lint.cfg.context import lock_facts

            cached = lock_facts(facts)
            self._locks[key] = cached
        return cached


# -- runner -------------------------------------------------------------------


def _active_rules(config: LintConfig) -> list["Rule"]:
    from repro.lint.rules import ALL_RULES

    if not config.select:
        return list(ALL_RULES)
    return [r for r in ALL_RULES if r.id in config.select]


def lint_module(
    module: LintModule,
    ctx: LintContext,
    timings: dict[str, float] | None = None,
) -> list[Finding]:
    findings: list[Finding] = []
    for rule in _active_rules(ctx.config):
        started = time.perf_counter() if timings is not None else 0.0
        findings.extend(f for f in rule.check(module, ctx) if not module.suppressed(f))
        if timings is not None:
            timings[rule.id] = (
                timings.get(rule.id, 0.0) + time.perf_counter() - started
            )
    return findings


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    modpath: str | None = None,
    config: LintConfig | None = None,
    context: LintContext | None = None,
) -> list[Finding]:
    """Lint one source string (the fixture-test entry point)."""
    ctx = context or LintContext(config)
    return lint_module(LintModule(source, path=path, modpath=modpath), ctx)


def iter_py_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts and ".egg-info" not in p.as_posix()
            )
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Iterable[Path | str],
    config: LintConfig | None = None,
    *,
    timings: dict[str, float] | None = None,
) -> list[Finding]:
    """Lint files/directories; findings sorted by (path, line, rule).

    When ``timings`` is a dict, per-rule wall-time accumulates into it
    (rule id -> seconds across all linted files).
    """
    ctx = LintContext(config)
    findings: list[Finding] = []
    for path in iter_py_files(Path(p) for p in paths):
        try:
            module = LintModule(path.read_text(), path=_display_path(path, ctx))
        except SyntaxError as exc:
            findings.append(
                Finding("REP000", _display_path(path, ctx), exc.lineno or 1, 1,
                        f"syntax error: {exc.msg}")
            )
            continue
        findings.extend(lint_module(module, ctx, timings))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _display_path(path: Path, ctx: LintContext) -> str:
    try:
        return path.resolve().relative_to(ctx.config.root).as_posix()
    except ValueError:
        return path.as_posix()

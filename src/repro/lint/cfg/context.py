"""The execution-context model: who runs where, and what follows.

Every function in the whole-program call graph is classified as

* ``kernel``      — reachable from a worker entry point: a function
  registered via ``register_kernel(...)`` in the kernel module, or a
  function submitted to a pool (``pool.submit(fn, ...)``) in the
  executor module.  Under the Thread/MP executors these run
  concurrently, possibly in another process;
* ``coordinator`` — reachable from coordinator-side code (the scheduler
  / engine / journal modules) but never from a worker entry;
* ``both``        — shared helpers reachable from each side.

The classification reuses the PR 5 dataflow summaries: worker entries
are closed over the resolved call graph, then the coordinator scope is
seeded with every non-worker function in the configured coordinator
modules and closed the same way.

On top of the same summaries this module derives two whole-program
fact tables: ``blocking_facts`` (functions that transitively reach a
blocking call — REP203) and ``lock_facts`` (the lock-order graph and
its cycles — REP206).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Mapping

from repro.lint.dataflow.taint import fid_display

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.dataflow.taint import ProgramFacts

__all__ = [
    "ExecContexts",
    "blocking_facts",
    "build_contexts",
    "lock_facts",
    "worker_entries",
]

#: (detail dotted target, witness chain of fids, call-site lineno)
BlockEntry = tuple[str, tuple[str, ...], int]

_MAX_CHAIN = 8


class ExecContexts:
    """Worker/coordinator closure sets over the program call graph."""

    __slots__ = ("worker", "coordinator")

    def __init__(self, worker: frozenset[str], coordinator: frozenset[str]) -> None:
        self.worker = worker
        self.coordinator = coordinator

    def classify(self, fid: str) -> str | None:
        """"kernel", "coordinator", "both", or None (unreachable from
        either seed set — e.g. dynamically invoked job closures)."""
        in_worker = fid in self.worker
        in_coord = fid in self.coordinator
        if in_worker and in_coord:
            return "both"
        if in_worker:
            return "kernel"
        if in_coord:
            return "coordinator"
        return None


def worker_entries(
    kernel_tree: ast.Module,
    kernel_modpath: str,
    executor_tree: ast.Module | None,
    executor_modpath: str,
) -> frozenset[str]:
    """Function ids that start executing in worker scope."""
    from repro.lint.rules import _registered_kernels

    entries = {
        f"{kernel_modpath}::{name}" for name in _registered_kernels(kernel_tree)
    }
    if executor_tree is not None:
        for node in ast.walk(executor_tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "apply_async", "map")
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                entries.add(f"{executor_modpath}::{node.args[0].id}")
    return frozenset(entries)


def _closure(facts: "ProgramFacts", seeds: frozenset[str]) -> frozenset[str]:
    """The call-graph closure of ``seeds`` over resolved summary calls."""
    seen = set(seeds & facts.functions.keys())
    frontier = list(seen)
    while frontier:
        fid = frontier.pop()
        summary = facts.functions[fid]
        for dotted, _lineno, _col in summary.calls:
            target = facts.resolve(summary.modpath, dotted, summary.cls)
            if target is not None and target not in seen:
                seen.add(target)
                frontier.append(target)
    return frozenset(seen)


def build_contexts(
    facts: "ProgramFacts",
    *,
    kernel_tree: ast.Module,
    kernel_modpath: str,
    executor_tree: ast.Module | None,
    executor_modpath: str,
    coordinator_scopes: tuple[str, ...],
) -> ExecContexts:
    worker = _closure(
        facts,
        worker_entries(kernel_tree, kernel_modpath, executor_tree, executor_modpath),
    )
    coordinator_seeds = frozenset(
        fid
        for fid, summary in facts.functions.items()
        if summary.modpath.startswith(coordinator_scopes) and fid not in worker
    )
    coordinator = _closure(facts, coordinator_seeds)
    return ExecContexts(worker, coordinator)


# -- REP203: transitive blocking-call facts -----------------------------------


def blocking_facts(
    facts: "ProgramFacts", blocking_calls: tuple[str, ...]
) -> dict[str, BlockEntry]:
    """fid -> (blocking target, witness chain, call lineno) fixpoint.

    A function blocks if it calls one of ``blocking_calls`` directly
    (exact dotted match — summaries already resolve constructor-typed
    receivers like ``queue.Queue.get``) or calls a function that does.
    """
    blocking = frozenset(blocking_calls)
    table: dict[str, BlockEntry] = {}
    order = sorted(facts.functions)
    for fid in order:
        for dotted, lineno, _col in facts.functions[fid].calls:
            if dotted in blocking:
                table.setdefault(fid, (dotted, (), lineno))
                break
    changed = True
    while changed:
        changed = False
        for fid in order:
            if fid in table:
                continue
            summary = facts.functions[fid]
            for dotted, lineno, _col in summary.calls:
                target = facts.resolve(summary.modpath, dotted, summary.cls)
                entry = table.get(target) if target else None
                if entry is None or len(entry[1]) >= _MAX_CHAIN:
                    continue
                table[fid] = (entry[0], (target, *entry[1]), lineno)
                changed = True
                break
    return table


# -- REP206: the lock-order graph ---------------------------------------------


def lock_facts(
    facts: "ProgramFacts",
) -> tuple[dict[tuple[str, str], list[tuple[str, int]]], list[tuple[str, ...]]]:
    """(order edges, cycles) over the program's statically named locks.

    Edges ``(outer, inner) -> [(fid, lineno), ...]`` come from nested
    ``with``/acquire sites in one function and, interprocedurally, from
    calls made while a lock is held into functions whose transitive
    lock-set is non-empty.  Cycles are the canonicalised lock-order
    loops (deadlock candidates).
    """
    # Transitive lock-set fixpoint: every lock a call to fid may acquire.
    lock_sets: dict[str, frozenset[str]] = {
        fid: frozenset(name for name, _lineno in s.lock_acquires)
        for fid, s in facts.functions.items()
    }
    changed = True
    while changed:
        changed = False
        for fid, summary in facts.functions.items():
            acc = set(lock_sets[fid])
            for dotted, _lineno, _col in summary.calls:
                target = facts.resolve(summary.modpath, dotted, summary.cls)
                if target is not None:
                    acc |= lock_sets[target]
            frozen = frozenset(acc)
            if frozen != lock_sets[fid]:
                lock_sets[fid] = frozen
                changed = True

    edges: dict[tuple[str, str], list[tuple[str, int]]] = {}
    for fid, summary in facts.functions.items():
        for outer, inner, lineno in summary.lock_orders:
            if outer != inner:
                edges.setdefault((outer, inner), []).append((fid, lineno))
        for held, dotted, lineno in summary.calls_under_lock:
            target = facts.resolve(summary.modpath, dotted, summary.cls)
            if target is None:
                continue
            for inner in lock_sets[target]:
                if inner != held:
                    edges.setdefault((held, inner), []).append((fid, lineno))

    # Cycle detection over the lock digraph (iterative DFS, colouring).
    graph: dict[str, list[str]] = {}
    for outer, inner in edges:
        graph.setdefault(outer, []).append(inner)
        graph.setdefault(inner, [])
    cycles: list[tuple[str, ...]] = []
    seen_cycles: set[tuple[str, ...]] = set()
    state: dict[str, int] = {}  # 0 unvisited / 1 on stack / 2 done
    for root in sorted(graph):
        if state.get(root):
            continue
        stack: list[tuple[str, list[str]]] = [(root, list(sorted(graph[root])))]
        path = [root]
        state[root] = 1
        while stack:
            node, todo = stack[-1]
            if todo:
                nxt = todo.pop(0)
                if state.get(nxt) == 1:
                    cycle = tuple(path[path.index(nxt):])
                    pivot = cycle.index(min(cycle))
                    canon = cycle[pivot:] + cycle[:pivot]
                    if canon not in seen_cycles:
                        seen_cycles.add(canon)
                        cycles.append(canon)
                elif not state.get(nxt):
                    state[nxt] = 1
                    path.append(nxt)
                    stack.append((nxt, list(sorted(graph[nxt]))))
            else:
                state[node] = 2
                stack.pop()
                path.pop()
    return edges, cycles


def chain_text(fid: str, chain: tuple[str, ...]) -> str:
    return " -> ".join(fid_display(f) for f in (fid, *chain))

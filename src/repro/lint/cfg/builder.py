"""Intraprocedural CFG construction over the lint AST core.

One :class:`Block` per simple statement; structured statements
(``if``/``while``/``for``/``try``/``with``/``match``) anchor a block
holding only their *header* (test, iterator, context expressions) with
their sub-statement bodies in blocks of their own.  Edges carry a kind:

* ``flow``/``true``/``false`` — ordinary and branch fall-through;
* ``back`` — loop back-edges (including ``continue``), the edges the
  acyclic analyses drop;
* ``exc`` — a statement that may raise, to the innermost handler
  dispatch, ``finally`` entry, or function exit;
* ``break``/``return`` — early structured exits.

``finally`` bodies are built exactly once; their exit fans out to every
continuation the enclosed code can request (normal fall-through, the
propagating exception, break/continue/return targets).  That is an
over-approximation — a path may appear that pairs the wrong entry with
the wrong exit — which is the safe direction for the must-analyses
(REP204/REP205) built on top: extra paths can only make them stricter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

__all__ = ["CFG", "Block", "build_cfg", "function_cfgs", "header_exprs"]


class Block:
    """One basic block: an anchoring AST node plus its edges."""

    __slots__ = ("index", "kind", "node", "succs", "preds")

    def __init__(self, index: int, kind: str, node: ast.AST | None) -> None:
        self.index = index
        #: "entry", "exit", "stmt", "branch", "loop", "join", "dispatch",
        #: "finally" or "handler".
        self.kind = kind
        self.node = node
        self.succs: list[tuple[int, str]] = []
        self.preds: list[tuple[int, str]] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        what = type(self.node).__name__ if self.node is not None else self.kind
        return f"Block({self.index}, {what}, ->{[s for s, _ in self.succs]})"


class CFG:
    """The control-flow graph of one function."""

    __slots__ = ("name", "blocks", "entry", "exit")

    def __init__(self, name: str, blocks: list[Block], entry: int, exit: int) -> None:
        self.name = name
        self.blocks = blocks
        self.entry = entry
        self.exit = exit

    def reachable(
        self,
        starts: Iterator[int] | list[int] | set[int],
        *,
        forward: bool = True,
        include_back: bool = True,
        include_starts: bool = False,
    ) -> set[int]:
        """Block indices reachable from ``starts`` along (or against)
        edges; ``include_back=False`` drops loop back-edges, giving
        "later on some acyclic path" rather than plain reachability."""
        seen: set[int] = set()
        frontier = list(starts)
        first = set(frontier)
        while frontier:
            idx = frontier.pop()
            edges = self.blocks[idx].succs if forward else self.blocks[idx].preds
            for nxt, kind in edges:
                if not include_back and kind == "back":
                    continue
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen | first if include_starts else seen

    def live(self) -> set[int]:
        """Blocks reachable from the entry block."""
        return self.reachable([self.entry], include_starts=True)


@dataclass(slots=True)
class _Frame:
    """Where the enclosing construct routes nonlocal control transfers."""

    raise_to: int
    return_to: int
    break_to: int | None = None
    continue_to: int | None = None


class _Builder:
    def __init__(self, name: str, body: list[ast.stmt]) -> None:
        self.name = name
        self.body = body
        self.blocks: list[Block] = []
        self.entry = self._new("entry", None)
        self.exit = self._new("exit", None)

    def build(self) -> CFG:
        top = _Frame(raise_to=self.exit.index, return_to=self.exit.index)
        end = self._seq(self.body, self.entry, top, "flow")
        if end is not None:
            self._edge(end, self.exit, "flow")
        return CFG(self.name, self.blocks, self.entry.index, self.exit.index)

    # -- graph primitives ---------------------------------------------------

    def _new(self, kind: str, node: ast.AST | None) -> Block:
        block = Block(len(self.blocks), kind, node)
        self.blocks.append(block)
        return block

    def _edge(self, src: Block | None, dst: Block | int, kind: str) -> None:
        if src is None:
            return
        if isinstance(dst, int):
            dst = self.blocks[dst]
        if (dst.index, kind) not in src.succs:
            src.succs.append((dst.index, kind))
            dst.preds.append((src.index, kind))

    def _maybe_exc(self, block: Block, node: ast.AST | None, frame: _Frame) -> None:
        if node is not None and _can_raise(node):
            self._edge(block, frame.raise_to, "exc")

    # -- statement lowering -------------------------------------------------

    def _seq(
        self, stmts: list[ast.stmt], pred: Block | None, frame: _Frame, kind: str
    ) -> Block | None:
        for stmt in stmts:
            pred = self._stmt(stmt, pred, frame, kind)
            kind = "flow"
        return pred

    def _stmt(
        self, stmt: ast.stmt, pred: Block | None, frame: _Frame, kind: str
    ) -> Block | None:
        if isinstance(stmt, ast.If):
            return self._if(stmt, pred, frame, kind)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, pred, frame, kind)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, pred, frame, kind)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, pred, frame, kind)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, pred, frame, kind)

        block = self._new("stmt", stmt)
        self._edge(pred, block, kind)
        if isinstance(stmt, ast.Return):
            self._maybe_exc(block, stmt.value, frame)
            self._edge(block, frame.return_to, "return")
            return None
        if isinstance(stmt, ast.Raise):
            self._edge(block, frame.raise_to, "exc")
            return None
        if isinstance(stmt, ast.Break):
            if frame.break_to is not None:
                self._edge(block, frame.break_to, "break")
            return None
        if isinstance(stmt, ast.Continue):
            if frame.continue_to is not None:
                self._edge(block, frame.continue_to, "back")
            return None
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return block  # a definition: no control effects of its own
        self._maybe_exc(block, stmt, frame)
        return block

    def _if(
        self, stmt: ast.If, pred: Block | None, frame: _Frame, kind: str
    ) -> Block | None:
        head = self._new("branch", stmt)
        self._edge(pred, head, kind)
        self._maybe_exc(head, stmt.test, frame)
        join = self._new("join", None)
        body_end = self._seq(stmt.body, head, frame, "true")
        self._edge(body_end, join, "flow")
        if stmt.orelse:
            else_end = self._seq(stmt.orelse, head, frame, "false")
            self._edge(else_end, join, "flow")
        else:
            self._edge(head, join, "false")
        return join if join.preds else None

    def _loop(
        self,
        stmt: ast.While | ast.For | ast.AsyncFor,
        pred: Block | None,
        frame: _Frame,
        kind: str,
    ) -> Block | None:
        head = self._new("loop", stmt)
        self._edge(pred, head, kind)
        header_expr = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        self._maybe_exc(head, header_expr, frame)
        after = self._new("join", None)
        inner = _Frame(
            raise_to=frame.raise_to,
            return_to=frame.return_to,
            break_to=after.index,
            continue_to=head.index,
        )
        body_end = self._seq(stmt.body, head, inner, "true")
        self._edge(body_end, head, "back")
        if stmt.orelse:
            else_end = self._seq(stmt.orelse, head, frame, "false")
            self._edge(else_end, after, "flow")
        else:
            self._edge(head, after, "false")
        return after

    def _with(
        self,
        stmt: ast.With | ast.AsyncWith,
        pred: Block | None,
        frame: _Frame,
        kind: str,
    ) -> Block | None:
        head = self._new("stmt", stmt)
        self._edge(pred, head, kind)
        for item in stmt.items:
            self._maybe_exc(head, item.context_expr, frame)
        return self._seq(stmt.body, head, frame, "flow")

    def _match(
        self, stmt: ast.Match, pred: Block | None, frame: _Frame, kind: str
    ) -> Block | None:
        head = self._new("branch", stmt)
        self._edge(pred, head, kind)
        self._maybe_exc(head, stmt.subject, frame)
        join = self._new("join", None)
        for case in stmt.cases:
            end = self._seq(case.body, head, frame, "true")
            self._edge(end, join, "flow")
        self._edge(head, join, "false")  # no case matched
        return join

    def _try(
        self, stmt: ast.Try, pred: Block | None, frame: _Frame, kind: str
    ) -> Block | None:
        after = self._new("join", None)
        has_finally = bool(stmt.finalbody)

        fin_entry: Block | None = None
        if has_finally:
            fin_entry = self._new("finally", None)
            fin_end = self._seq(stmt.finalbody, fin_entry, frame, "flow")
            if fin_end is not None:
                # The single finally body continues wherever the enclosed
                # code was headed: fall-through, the in-flight exception,
                # or a break/continue/return that entered it.
                self._edge(fin_end, after, "flow")
                self._edge(fin_end, frame.raise_to, "exc")
                if frame.break_to is not None:
                    self._edge(fin_end, frame.break_to, "break")
                if frame.continue_to is not None:
                    self._edge(fin_end, frame.continue_to, "back")
                self._edge(fin_end, frame.return_to, "return")
        normal_to = fin_entry if fin_entry is not None else after
        outward = fin_entry.index if fin_entry is not None else frame.raise_to

        dispatch: Block | None = None
        if stmt.handlers:
            dispatch = self._new("dispatch", None)
            body_raise = dispatch.index
        else:
            body_raise = outward

        inner = _Frame(
            raise_to=body_raise,
            return_to=fin_entry.index if fin_entry is not None else frame.return_to,
            break_to=(
                fin_entry.index
                if fin_entry is not None and frame.break_to is not None
                else frame.break_to
            ),
            continue_to=(
                fin_entry.index
                if fin_entry is not None and frame.continue_to is not None
                else frame.continue_to
            ),
        )
        body_end = self._seq(stmt.body, pred, inner, kind)
        # else-clause and handler bodies raise past this try's handlers.
        post = _Frame(
            raise_to=outward,
            return_to=inner.return_to,
            break_to=inner.break_to,
            continue_to=inner.continue_to,
        )
        if stmt.orelse:
            body_end = self._seq(stmt.orelse, body_end, post, "flow")
        self._edge(body_end, normal_to, "flow")

        if dispatch is not None:
            for handler in stmt.handlers:
                hblock = self._new("handler", handler)
                self._edge(dispatch, hblock, "exc")
                hend = self._seq(handler.body, hblock, post, "flow")
                self._edge(hend, normal_to, "flow")
            self._edge(dispatch, outward, "exc")  # no handler matched
        return after if after.preds else None


def _can_raise(node: ast.AST) -> bool:
    """A conservative "may this raise" test: calls, raises and asserts
    (attribute/subscript misses raise too, but counting those would give
    nearly every statement an exception edge and drown the signal)."""
    stack = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.Call, ast.Raise, ast.Assert)):
            return True
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # deferred bodies do not execute here
        stack.extend(ast.iter_child_nodes(cur))
    return False


def header_exprs(node: ast.AST | None) -> list[ast.expr]:
    """The expressions a structured statement's anchor block evaluates
    (its body statements live in their own blocks)."""
    if node is None:
        return []
    if isinstance(node, ast.If) or isinstance(node, ast.While):
        return [node.test]
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return [node.iter]
    if isinstance(node, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in node.items]
    if isinstance(node, ast.Match):
        return [node.subject]
    if isinstance(node, ast.ExceptHandler):
        return [node.type] if node.type is not None else []
    return []


def block_exprs(block: Block) -> Iterator[ast.AST]:
    """Every AST node the block actually evaluates (headers only for
    structured statements, whole statement otherwise), excluding nested
    function/class bodies."""
    node = block.node
    if node is None:
        return
    if isinstance(
        node,
        (ast.If, ast.While, ast.For, ast.AsyncFor, ast.With, ast.AsyncWith,
         ast.Match, ast.ExceptHandler),
    ):
        roots: list[ast.AST] = list(header_exprs(node))
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        roots = []
    else:
        roots = [node]
    stack = roots
    while stack:
        cur = stack.pop()
        yield cur
        if not isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(cur))


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef, name: str | None = None) -> CFG:
    return _Builder(name or fn.name, fn.body).build()


def function_cfgs(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef, CFG]]:
    """(qualname, def node, CFG) for every module-level def and method."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node, build_cfg(node, node.name)
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{node.name}.{sub.name}"
                    yield qual, sub, build_cfg(sub, qual)

"""REP201..REP206: concurrency and protocol-ordering rules.

These rules sit on the CFG layer (``cfg/builder.py``) and the
execution-context model (``cfg/context.py``), on top of the PR 5
whole-program summaries.  ``docs/STATIC_ANALYSIS.md`` documents the
contract behind each.

Import note: this module is wired into ``ALL_RULES`` by a bottom-of-
module import in :mod:`repro.lint.rules` and imports that module's
shared AST helpers in return.  Always reach these rules through
``repro.lint.rules`` (``ALL_RULES`` / ``rule_by_id``); importing this
module first would trip the cycle.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.cfg.builder import CFG, Block, function_cfgs
from repro.lint.cfg.context import chain_text
from repro.lint.cfg.effects import (
    RESOURCE_KINDS,
    emit_sites,
    journal_appends,
    releases,
    resource_kind,
)
from repro.lint.core import Finding, LintContext, LintModule
from repro.lint.dataflow.summary import MODULE_BODY
from repro.lint.dataflow.taint import chain_display
from repro.lint.rules import (
    InterproceduralResourceLeak,
    Rule,
    _call_dotted,
    _enclosing_class_name,
    _local_bindings,
    _registered_kernels,
    _scope_walk,
    _scopes,
    _terminal_name,
)

__all__ = ["CFG_RULES"]


def _module_defs(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """(qualname, def node) for module-level functions and methods —
    the granularity the dataflow summaries use for function ids."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{node.name}.{sub.name}", sub


# -- REP201: shared mutable state across execution contexts -------------------


class SharedStateRace(Rule):
    """REP201: a module global written from kernel scope (or written on
    the coordinator and read from kernel scope) is a data race under the
    thread executor and silently divergent state under the fork
    executor.  State with a real ownership-transfer protocol is exempted
    via ``ownership_transfer_globals`` or an inline suppression on the
    write.
    """

    id = "REP201"
    title = "no shared mutable module state across coordinator/kernel contexts"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        summary, _digest = ctx.module_summary(module)
        writers: dict[str, list[tuple[str, int]]] = {}
        for qual, fs in summary.functions.items():
            if qual == MODULE_BODY:
                continue
            for name, lineno in fs.global_writes:
                writers.setdefault(name, []).append((qual, lineno))
        if not writers:
            return
        exempt = set(ctx.config.coordinator_singletons) | set(
            ctx.config.ownership_transfer_globals
        )
        facts = ctx.facts_for(module)
        contexts = ctx.exec_contexts(facts)
        reads = _global_reads(module.tree, frozenset(writers) - exempt)
        for name in sorted(writers):
            if name in exempt:
                continue
            classified = [
                (qual, lineno, contexts.classify(f"{module.modpath}::{qual}"))
                for qual, lineno in writers[name]
            ]
            kernel_writes = [
                (q, l) for q, l, c in classified if c in ("kernel", "both")
            ]
            for qual, lineno in kernel_writes:
                yield Finding(
                    self.id,
                    module.path,
                    lineno,
                    1,
                    f"module global {name!r} is written in {qual!r}, which "
                    "runs in kernel scope; concurrent kernel invocations "
                    "race on it under the thread executor and diverge "
                    "silently under fork",
                )
            if kernel_writes:
                continue  # the write findings already cover this global
            coord = [(q, l) for q, l, c in classified if c == "coordinator"]
            if not coord:
                continue
            for qual, node in reads.get(name, ()):
                if contexts.classify(f"{module.modpath}::{qual}") in (
                    "kernel",
                    "both",
                ):
                    yield module.finding(
                        self.id,
                        node,
                        f"module global {name!r} is written in coordinator "
                        f"scope ({coord[0][0]!r}) and read here in kernel "
                        "scope with no ownership transfer; pass it through "
                        "the task spec instead",
                    )


def _global_reads(
    tree: ast.Module, names: frozenset[str]
) -> dict[str, list[tuple[str, ast.Name]]]:
    """name -> [(qualname, load site)] for unshadowed global loads."""
    out: dict[str, list[tuple[str, ast.Name]]] = {}
    if not names:
        return out
    for qual, fn in _module_defs(tree):
        local = _local_bindings(fn)
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in names
                and node.id not in local
            ):
                out.setdefault(node.id, []).append((qual, node))
    return out


# -- REP202: fork-unsafe captures ---------------------------------------------


class ForkUnsafeCapture(Rule):
    """REP202: OS resources (open files, sockets, locks, live process
    handles, live generators) must never land on a picklable ``*Spec``
    field or be captured by a registered kernel from module scope — the
    fork/pickle transport cannot carry them, and under fork they alias
    the coordinator's file descriptors.
    """

    id = "REP202"
    title = "no fork-unsafe OS resources on specs or captured by kernels"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        facts = ctx.facts_for(module)
        factories = ctx.config.fork_unsafe_factories
        spec_names = ctx.spec_class_names
        gen_defs = frozenset(
            qual
            for qual, fn in _module_defs(module.tree)
            if "." not in qual
            and any(
                isinstance(n, (ast.Yield, ast.YieldFrom)) for n in _scope_walk(fn)
            )
        )
        module_resources = self._module_resources(
            module, facts, factories, gen_defs
        )

        if module.modpath == ctx.kernel_modpath and module_resources:
            registered = set(_registered_kernels(module.tree))
            for qual, fn in _module_defs(module.tree):
                if qual not in registered:
                    continue
                local = _local_bindings(fn)
                for node in ast.walk(fn):
                    if (
                        isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Load)
                        and node.id in module_resources
                        and node.id not in local
                    ):
                        yield module.finding(
                            self.id,
                            node,
                            f"kernel {qual!r} captures module-level "
                            f"{module_resources[node.id]} {node.id!r}; OS "
                            "resources do not survive the fork into worker "
                            "processes",
                        )

        for scope in _scopes(module.tree):
            lookup: dict[str, tuple[str, str | None]] = {}
            spec_locals: set[str] = set()
            for node in _scope_walk(scope):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    name = node.targets[0].id
                    hit = self._value_kind(
                        module, facts, node.value, factories, gen_defs
                    )
                    if hit is not None:
                        lookup[name] = hit
                    elif (
                        isinstance(node.value, ast.Call)
                        and _terminal_name(node.value.func) in spec_names
                    ):
                        spec_locals.add(name)
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                shadowed = _local_bindings(scope)
                for gname, kind in module_resources.items():
                    if gname not in shadowed:
                        lookup.setdefault(gname, (kind, None))
            for node in _scope_walk(scope):
                if (
                    isinstance(node, ast.Call)
                    and _terminal_name(node.func) in spec_names
                ):
                    for arg in (*node.args, *(kw.value for kw in node.keywords)):
                        hit = self._arg_kind(
                            module, facts, arg, factories, gen_defs, lookup
                        )
                        if hit is not None:
                            yield self._spec_finding(module, arg, hit, "argument")
                elif (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and isinstance(node.targets[0].value, ast.Name)
                    and node.targets[0].value.id in spec_locals
                ):
                    hit = self._arg_kind(
                        module, facts, node.value, factories, gen_defs, lookup
                    )
                    if hit is not None:
                        yield self._spec_finding(
                            module,
                            node,
                            hit,
                            f"field {node.targets[0].attr!r}",
                        )

    def _spec_finding(
        self,
        module: LintModule,
        node: ast.AST,
        hit: tuple[str, str | None],
        where: str,
    ) -> Finding:
        kind, witness = hit
        suffix = f" (path: {witness})" if witness else ""
        return module.finding(
            self.id,
            node,
            f"picklable spec {where} receives a {kind}{suffix}; the "
            "fork/pickle transport cannot carry OS resources — pass a "
            "path or config value and open it inside the kernel",
        )

    def _module_resources(
        self,
        module: LintModule,
        facts,
        factories: tuple[str, ...],
        gen_defs: frozenset[str],
    ) -> dict[str, str]:
        out: dict[str, str] = {}
        for node in module.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                hit = self._value_kind(
                    module, facts, node.value, factories, gen_defs
                )
                if hit is not None:
                    out[node.targets[0].id] = hit[0]
        return out

    def _arg_kind(
        self,
        module: LintModule,
        facts,
        value: ast.AST,
        factories: tuple[str, ...],
        gen_defs: frozenset[str],
        lookup: dict[str, tuple[str, str | None]],
    ) -> tuple[str, str | None] | None:
        if isinstance(value, ast.Name) and value.id in lookup:
            return lookup[value.id]
        return self._value_kind(module, facts, value, factories, gen_defs)

    def _value_kind(
        self,
        module: LintModule,
        facts,
        value: ast.AST,
        factories: tuple[str, ...],
        gen_defs: frozenset[str],
    ) -> tuple[str, str | None] | None:
        """(resource kind, witness chain) when the expression yields one."""
        if isinstance(value, ast.GeneratorExp):
            return "live generator", None
        if not isinstance(value, ast.Call):
            return None
        dotted = _call_dotted(module, value)
        if dotted is None:
            return None
        kind = resource_kind(dotted, factories)
        if kind is not None:
            return kind, None
        if "." not in dotted and dotted in gen_defs:
            return "live generator", None
        fid = facts.resolve(
            module.modpath, dotted, _enclosing_class_name(module, value)
        )
        entry = facts.resource.get(fid) if fid is not None else None
        if entry is None:
            return None
        detail = entry[0]
        return RESOURCE_KINDS.get(detail, detail), chain_display(fid, entry)


# -- REP203: blocking calls in coordinator scope ------------------------------


class CoordinatorBlockingCalls(Rule):
    """REP203: the coordinator's scheduling loop must stay nonblocking —
    ``time.sleep``, synchronous socket I/O, subprocess waits and
    unbounded queue/thread joins stall every in-flight partition.

    Each root cause is reported exactly once: direct blocking calls are
    flagged where they appear inside coordinator-scope modules, while
    blocking reached through helpers *outside* those modules (workload
    closures, shared utilities) is flagged transitively at the boundary
    call, with the witness chain.
    """

    id = "REP203"
    title = "no blocking calls in coordinator-scope functions"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        facts = ctx.facts_for(module)
        contexts = ctx.exec_contexts(facts)
        blocking = frozenset(ctx.config.blocking_calls)
        index = ctx.blocking_facts(facts)
        scopes = ctx.config.coordinator_scopes
        summary, _digest = ctx.module_summary(module)
        in_coordinator_module = module.modpath.startswith(scopes)
        for qual in sorted(summary.functions):
            if qual == MODULE_BODY:
                continue
            fid = f"{module.modpath}::{qual}"
            scope = contexts.classify(fid)
            if scope not in ("coordinator", "both"):
                continue
            where = (
                "coordinator-scope"
                if scope == "coordinator"
                else "shared coordinator/kernel"
            )
            fs = summary.functions[qual]
            for dotted, lineno, col in fs.calls:
                if dotted in blocking:
                    # Outside coordinator modules the call is charged to
                    # the coordinator-side caller (transitively, below).
                    if in_coordinator_module:
                        yield Finding(
                            self.id,
                            module.path,
                            lineno,
                            col + 1,
                            f"blocking call {dotted}() in {where} function "
                            f"{qual!r}; the coordinator event loop must not "
                            "stall (bound it with a timeout or move it to a "
                            "worker)",
                        )
                    continue
                target = facts.resolve(fs.modpath, dotted, fs.cls)
                entry = index.get(target) if target is not None else None
                if entry is None:
                    continue
                if target.partition("::")[0].startswith(scopes):
                    continue  # reported at the callee's own site
                yield Finding(
                    self.id,
                    module.path,
                    lineno,
                    col + 1,
                    f"call from {where} function {qual!r} blocks "
                    f"transitively on {entry[0]}() "
                    f"(via {chain_text(target, entry[1])})",
                )


# -- REP204: commit-then-emit protocol ordering -------------------------------


class CommitProtocolOrder(Rule):
    """REP204: crash consistency requires the reduce-commit journal
    record to happen-before the committed-output emission — a crash
    between emit and append replays the reduce and duplicates output.
    Functions that emit but never touch the journal are out of protocol
    scope (helpers given a pre-committed path).
    """

    id = "REP204"
    title = "reduce-commit journal append must precede output emission"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        receivers = ctx.config.journal_receivers
        emit_methods = ctx.config.emit_methods
        path_attrs = ctx.config.emit_path_attrs
        for qual, _fn, cfg in function_cfgs(module.tree):
            live = cfg.live()
            commits: set[int] = set()
            journal_touched = False
            emits: list[tuple[int, ast.Call]] = []
            for block in cfg.blocks:
                if block.index not in live:
                    continue
                for kind, _call in journal_appends(block, module, receivers):
                    journal_touched = True
                    if kind == "reduce-commit":
                        commits.add(block.index)
                for call in emit_sites(block, emit_methods, path_attrs):
                    emits.append((block.index, call))
            if not emits or not journal_touched:
                continue
            for idx, call in emits:
                if not commits:
                    yield module.finding(
                        self.id,
                        call,
                        f"{qual!r} emits committed output but appends no "
                        "reduce-commit journal record; append "
                        "K_REDUCE_COMMIT before emitting so a crash "
                        "replays instead of duplicating",
                    )
                    continue
                ahead = cfg.reachable([idx], forward=True, include_back=False)
                if ahead & commits:
                    yield module.finding(
                        self.id,
                        call,
                        f"{qual!r} emits committed output before its "
                        "reduce-commit journal append on a control-flow "
                        "path; the append must happen-before the emission",
                    )
                    continue
                behind = cfg.reachable([idx], forward=False, include_back=True)
                if not behind & commits:
                    yield module.finding(
                        self.id,
                        call,
                        f"no path through {qual!r} appends a reduce-commit "
                        "journal record before this committed-output "
                        "emission",
                    )


# -- REP205: path-sensitive resource release ----------------------------------


class PathSensitiveResourceRelease(Rule):
    """REP205: the release of an acquired resource must cover *every*
    CFG path out of the acquisition — including exception edges.  This
    upgrades REP103: a ``finally: x.close()`` satisfies REP103 even when
    statements between the acquisition and the ``try`` can raise and
    leak the handle; the CFG sees that window.
    """

    id = "REP205"
    title = "resource release must post-dominate acquisition on all paths"

    #: REP103's acquisition/ownership semantics, reused verbatim so the
    #: two rules can never disagree about what acquires or releases.
    _rep103 = InterproceduralResourceLeak()

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        facts = ctx.facts_for(module)
        for _qual, fn, cfg in function_cfgs(module.tree):
            live = cfg.live()
            for block in cfg.blocks:
                if block.index not in live:
                    continue
                node = block.node
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                hit = self._rep103._acquires(module, ctx, facts, node.value)
                if hit is None:
                    continue
                name = node.targets[0].id
                if self._rep103._disposition(module, fn, name, node) != "safe":
                    continue  # REP103 already reports the broken cases
                if not self._released_on_all_paths(cfg, block, name):
                    detail, path = hit
                    source = detail + (f" (path: {path})" if path else "")
                    yield module.finding(
                        self.id,
                        node,
                        f"resource {name!r} from {source} escapes on an "
                        "exception path before its release; the close/with "
                        "must post-dominate the acquisition (no raising "
                        "statements between acquire and the protected "
                        "region)",
                    )

    @staticmethod
    def _released_on_all_paths(cfg: CFG, acquire: Block, name: str) -> bool:
        """Greatest-fixpoint must-analysis: a block is safe when it
        releases ``name`` or every successor is safe; reaching function
        exit without a release is unsafe.  The acquisition's own
        exception edge is exempt (a failed acquire binds nothing)."""
        rel = [releases(b, name) for b in cfg.blocks]
        safe = [True] * len(cfg.blocks)
        safe[cfg.exit] = False
        changed = True
        while changed:
            changed = False
            for b in cfg.blocks:
                i = b.index
                if i == cfg.exit or rel[i] or not safe[i]:
                    continue
                if b.succs and not all(safe[s] for s, _k in b.succs):
                    safe[i] = False
                    changed = True
        return all(safe[s] for s, kind in acquire.succs if kind != "exc")


# -- REP206: lock-ordering consistency ----------------------------------------


class LockOrderConsistency(Rule):
    """REP206: every pair of statically named locks must be acquired in
    one global order across the whole call graph — a cycle in the
    lock-order digraph (direct nesting or calls made while holding a
    lock) is a deadlock waiting for the right interleaving.
    """

    id = "REP206"
    title = "consistent lock acquisition order across the call graph"

    def check(self, module: LintModule, ctx: LintContext) -> Iterator[Finding]:
        facts = ctx.facts_for(module)
        edges, cycles = ctx.lock_facts(facts)
        if not cycles:
            return
        prefix = f"{module.modpath}::"
        reported: set[tuple[str, str, str, int]] = set()
        for cycle in cycles:
            display = " -> ".join((*cycle, cycle[0]))
            pairs = [
                (cycle[i], cycle[(i + 1) % len(cycle)])
                for i in range(len(cycle))
            ]
            for outer, inner in pairs:
                for fid, lineno in edges.get((outer, inner), ()):
                    if not fid.startswith(prefix):
                        continue
                    key = (outer, inner, fid, lineno)
                    if key in reported:
                        continue
                    reported.add(key)
                    yield Finding(
                        self.id,
                        module.path,
                        lineno,
                        1,
                        f"lock-order cycle {display}: this site acquires "
                        f"{inner} while holding {outer}, and another path "
                        "acquires them in the opposite order (deadlock "
                        "risk); pick one global order",
                    )


CFG_RULES: tuple[Rule, ...] = (
    SharedStateRace(),
    ForkUnsafeCapture(),
    CoordinatorBlockingCalls(),
    CommitProtocolOrder(),
    PathSensitiveResourceRelease(),
    LockOrderConsistency(),
)

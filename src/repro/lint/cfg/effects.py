"""Per-block effect classification for the protocol rules.

``journal_appends`` finds ``journal.append(K_REDUCE_COMMIT, ...)``-style
calls and classifies the record kind; ``emit_sites`` finds committed-
output emissions (``hdfs.append_block(job.output_path, ...)``); both
feed REP204's commit-then-emit check.  ``releases`` is the per-block
release predicate REP205's must-analysis evaluates, mirroring REP103's
ownership semantics (close, ``with``, return/yield, hand-off).  The
resource lattice maps fork-unsafe factory calls to the human-readable
kind REP202 reports.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.cfg.builder import Block, block_exprs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.core import LintModule

__all__ = [
    "RESOURCE_KINDS",
    "emit_sites",
    "journal_appends",
    "releases",
    "resource_kind",
]

#: Journal record kinds that commit reduce output; emission of committed
#: output must be preceded by one of these (K_OUTPUT_COMMIT legitimately
#: *follows* emission — it seals the whole output file).
_REDUCE_COMMIT_NAMES = frozenset({"K_REDUCE_COMMIT"})
_REDUCE_COMMIT_VALUES = frozenset({"reduce-commit"})

#: Fork-unsafe factory -> the OS-resource kind REP202 names in findings.
#: Terminal-segment keys ("open") match bare builtins; dotted keys match
#: the alias-resolved call target exactly.
RESOURCE_KINDS: dict[str, str] = {
    "open": "open file handle",
    "tempfile.NamedTemporaryFile": "open file handle",
    "tempfile.TemporaryFile": "open file handle",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "subprocess.Popen": "live process handle",
    "threading.Lock": "thread lock",
    "threading.RLock": "thread lock",
    "threading.Condition": "condition variable",
    "threading.Semaphore": "semaphore",
    "threading.BoundedSemaphore": "semaphore",
    "threading.Event": "thread event",
}


def resource_kind(dotted: str, factories: tuple[str, ...]) -> str | None:
    """The REP202 resource kind of a call target, or None."""
    if dotted not in factories:
        terminal = dotted.rpartition(".")[2]
        if not any("." not in f and f == terminal for f in factories):
            return None
    return RESOURCE_KINDS.get(
        dotted, RESOURCE_KINDS.get(dotted.rpartition(".")[2], "OS resource")
    )


# -- REP204: journal commits and output emissions -----------------------------


def _is_journal_receiver(node: ast.AST, receivers: tuple[str, ...]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in receivers
    if isinstance(node, ast.Attribute):
        return node.attr in receivers  # self.journal, run.journal, ...
    return False


def _append_kind(call: ast.Call, module: "LintModule") -> str | None:
    """"reduce-commit", "output-commit" or "other" for a journal append."""
    if not call.args:
        return "other"
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        if arg.value in _REDUCE_COMMIT_VALUES:
            return "reduce-commit"
        return "output-commit" if arg.value == "output-commit" else "other"
    dotted = module.dotted(arg)
    if dotted is None:
        return "other"
    terminal = dotted.rpartition(".")[2]
    if terminal in _REDUCE_COMMIT_NAMES:
        return "reduce-commit"
    return "output-commit" if terminal == "K_OUTPUT_COMMIT" else "other"


def journal_appends(
    block: Block, module: "LintModule", receivers: tuple[str, ...]
) -> Iterator[tuple[str, ast.Call]]:
    """(kind, call) for every journal ``append`` call in the block."""
    for node in block_exprs(block):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "append"
            and _is_journal_receiver(node.func.value, receivers)
        ):
            kind = _append_kind(node, module)
            if kind is not None:
                yield kind, node


def emit_sites(
    block: Block,
    emit_methods: tuple[str, ...],
    path_attrs: tuple[str, ...],
) -> Iterator[ast.Call]:
    """Committed-output emissions: an ``append_block``-style call whose
    arguments reference the job's ``output_path``."""
    for node in block_exprs(block):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in emit_methods
        ):
            continue
        args = (*node.args, *(kw.value for kw in node.keywords))
        for arg in args:
            if any(
                isinstance(sub, ast.Attribute) and sub.attr in path_attrs
                for sub in ast.walk(arg)
            ):
                yield node
                break


# -- REP205: the per-block release predicate ----------------------------------


def releases(block: Block, name: str) -> bool:
    """Does this block release/transfer ownership of local ``name``?

    Mirrors REP103's ownership semantics: ``name.close()``, a ``with``
    managing it, returning/yielding it, storing it into longer-lived
    state, or passing it to another callable.
    """
    node = block.node
    if node is None:
        return False
    if isinstance(node, (ast.With, ast.AsyncWith)):
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Name) and expr.id == name:
                return True
            if isinstance(expr, ast.Call) and any(
                isinstance(a, ast.Name) and a.id == name for a in expr.args
            ):
                return True  # contextlib.closing(name) and friends
        return False
    for sub in block_exprs(block):
        if isinstance(sub, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = sub.value
            if value is not None and any(
                isinstance(n, ast.Name) and n.id == name for n in ast.walk(value)
            ):
                return True
        elif isinstance(sub, ast.Call):
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "close"
                and isinstance(func.value, ast.Name)
                and func.value.id == name
            ):
                return True
            if any(
                isinstance(a, ast.Name) and a.id == name
                for a in (*sub.args, *(kw.value for kw in sub.keywords))
            ):
                return True  # handed to another owner
        elif isinstance(sub, ast.Assign):
            if any(
                isinstance(t, (ast.Attribute, ast.Subscript)) for t in sub.targets
            ) and any(
                isinstance(n, ast.Name) and n.id == name
                for n in ast.walk(sub.value)
            ):
                return True  # stored into longer-lived state
    return False

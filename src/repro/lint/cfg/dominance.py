"""Dominator / post-dominator sets over a :class:`~.builder.CFG`.

Straight iterative dataflow over block-index sets.  Functions in this
codebase are small (tens of blocks), so the O(n^2) set formulation is
simpler and fast enough; no Lengauer-Tarjan needed.

Unreachable blocks (dead code after a return, loop-less ``after``
blocks of ``while True``) keep the full set as their dominator set —
callers filter on :meth:`CFG.live` when that matters.
"""

from __future__ import annotations

from repro.lint.cfg.builder import CFG

__all__ = ["dominators", "postdominators"]


def _solve(cfg: CFG, root: int, *, forward: bool) -> list[set[int]]:
    n = len(cfg.blocks)
    full = set(range(n))
    dom: list[set[int]] = [set(full) for _ in range(n)]
    dom[root] = {root}
    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            if block.index == root:
                continue
            edges = block.preds if forward else block.succs
            new = set(full)
            for src, _kind in edges:
                new &= dom[src]
            new.add(block.index)
            if not edges:
                new = full | {block.index}
            if new != dom[block.index]:
                dom[block.index] = new
                changed = True
    return dom


def dominators(cfg: CFG) -> list[set[int]]:
    """``dominators(cfg)[b]`` = blocks on *every* entry->b path."""
    return _solve(cfg, cfg.entry, forward=True)


def postdominators(cfg: CFG) -> list[set[int]]:
    """``postdominators(cfg)[b]`` = blocks on *every* b->exit path."""
    return _solve(cfg, cfg.exit, forward=False)

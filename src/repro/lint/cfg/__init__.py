"""Control-flow-graph layer: path-sensitive and concurrency contracts.

This package is the third reprolint layer.  ``builder`` turns each
function into an intraprocedural CFG (basic blocks with try/except/
finally, with, loop, early-return and exception edges); ``dominance``
computes dominator/post-dominator sets and acyclic reachability over
it; ``effects`` classifies the protocol-relevant effects of each block
(journal commits, output emissions, resource releases); ``context``
classifies every function in the whole-program call graph as
coordinator-scope, kernel/worker-scope or both, and derives the
blocking-call and lock-order facts the REP201..REP206 rules consume.
"""

from repro.lint.cfg.builder import CFG, Block, build_cfg, function_cfgs
from repro.lint.cfg.context import ExecContexts, build_contexts
from repro.lint.cfg.dominance import dominators, postdominators

__all__ = [
    "CFG",
    "Block",
    "ExecContexts",
    "build_cfg",
    "build_contexts",
    "dominators",
    "function_cfgs",
    "postdominators",
]

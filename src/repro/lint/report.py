"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

The SARIF output is the GitHub code-scanning interchange shape: one run,
one ``reprolint`` driver carrying the full rule catalogue (so the UI can
show titles for rules with zero results), one result per finding with a
physical location.  Paths are emitted exactly as linted (repo-relative
in CI), which is what the upload action expects.  The document itself is
built by :mod:`repro.lint.sarif`, shared with the reprosan runtime
sanitizer so both uploads carry the same shape.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.lint.core import Finding
from repro.lint.sarif import SARIF_SCHEMA

__all__ = [
    "SARIF_SCHEMA",
    "format_findings",
    "format_timings",
    "to_json",
    "to_sarif",
    "to_text",
]


def to_text(findings: Iterable[Finding]) -> str:
    findings = list(findings)
    lines = [str(f) for f in findings]
    by_rule: dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    if findings:
        summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(by_rule.items()))
        lines.append(f"{len(findings)} finding(s) ({summary})")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines) + "\n"


def to_json(
    findings: Iterable[Finding], timings: dict[str, float] | None = None
) -> str:
    payload: dict = {
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in findings
        ]
    }
    if timings is not None:
        payload["timings"] = {
            rule: round(seconds, 6) for rule, seconds in sorted(timings.items())
        }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def to_sarif(findings: Iterable[Finding]) -> str:
    from repro.lint.sarif import (
        rule_catalogue,
        sarif_document,
        sarif_result,
        to_sarif_json,
    )

    rules = rule_catalogue()
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = [
        sarif_result(
            f.rule,
            f.message,
            f.path,
            f.line,
            max(f.col, 1),
            rule_index=rule_index.get(f.rule),
        )
        for f in findings
    ]
    return to_sarif_json(sarif_document("reprolint", rules, results))


def format_timings(timings: dict[str, float]) -> str:
    """A per-rule wall-time table (slowest first), for ``--stats``."""
    if not timings:
        return ""
    width = max(len(rule) for rule in timings)
    lines = ["rule timings (wall time across all linted files):"]
    for rule, seconds in sorted(timings.items(), key=lambda kv: (-kv[1], kv[0])):
        lines.append(f"  {rule:<{width}}  {seconds * 1000.0:8.1f} ms")
    total = sum(timings.values())
    lines.append(f"  {'total':<{width}}  {total * 1000.0:8.1f} ms")
    return "\n".join(lines) + "\n"


def format_findings(
    findings: Iterable[Finding],
    fmt: str = "text",
    *,
    timings: dict[str, float] | None = None,
) -> str:
    if fmt == "json":
        return to_json(findings, timings)
    if fmt == "sarif":
        return to_sarif(findings)
    if fmt == "text":
        return to_text(findings)
    raise ValueError(f"unknown lint report format {fmt!r}")

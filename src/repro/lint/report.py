"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Iterable

from repro.lint.core import Finding

__all__ = ["format_findings", "to_json", "to_text"]


def to_text(findings: Iterable[Finding]) -> str:
    findings = list(findings)
    lines = [str(f) for f in findings]
    by_rule: dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    if findings:
        summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(by_rule.items()))
        lines.append(f"{len(findings)} finding(s) ({summary})")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines) + "\n"


def to_json(findings: Iterable[Finding]) -> str:
    payload = {
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in findings
        ]
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def format_findings(findings: Iterable[Finding], fmt: str = "text") -> str:
    if fmt == "json":
        return to_json(findings)
    if fmt == "text":
        return to_text(findings)
    raise ValueError(f"unknown lint report format {fmt!r}")

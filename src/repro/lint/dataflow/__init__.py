"""Whole-program dataflow layer for reprolint.

The per-file rules (REP001..REP007) prove the determinism contracts
*syntactically, one file at a time*.  This package closes the
interprocedural gap: it builds per-module :class:`ModuleSummary`
objects (each function's callees, returned taints, attribute writes,
opened resources), links them into a project :class:`Program` over all
of ``src/repro/``, and runs a fixpoint propagator whose resolved
:class:`ProgramFacts` power the REP101..REP105 rules.

Summaries are cached to disk keyed by file content hash
(:class:`SummaryCache`), so CI reruns and pre-commit hooks only
re-analyse modules that actually changed.
"""

from repro.lint.dataflow.cache import ANALYSIS_VERSION, SummaryCache
from repro.lint.dataflow.graph import Program, build_program, clear_program_memo
from repro.lint.dataflow.summary import (
    FunctionSummary,
    ModuleSummary,
    SummaryOptions,
    summarize_module,
)
from repro.lint.dataflow.taint import FactsView, ProgramFacts

__all__ = [
    "ANALYSIS_VERSION",
    "FactsView",
    "FunctionSummary",
    "ModuleSummary",
    "Program",
    "ProgramFacts",
    "SummaryCache",
    "SummaryOptions",
    "build_program",
    "clear_program_memo",
    "summarize_module",
]

"""Taint-source vocabulary shared by REP001 and the dataflow layer.

One classification function answers "does this call read a wall clock,
an OS entropy source or the global RNG?" for both the per-file REP001
rule and the interprocedural summaries, so the two can never drift.
"""

from __future__ import annotations

import ast
import builtins

__all__ = [
    "BUILTIN_NAMES",
    "HASH_ORDER",
    "ORDER_FREE_CALLS",
    "nondet_call",
]

#: Dotted call paths that read the wall clock or an OS entropy source.
NONDETERMINISTIC_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "uuid.getnode",
    }
)

#: The one deterministic entry point on the stdlib ``random`` module.
SEEDED_RANDOM = frozenset({"random.Random"})

#: The taint detail used for values whose *order* depends on the
#: per-process hash seed (set iteration leaking into a sequence).
HASH_ORDER = "hash-seed-dependent iteration order"

#: Wrapping calls for which element order cannot matter — they absorb
#: hash-order taint (``sorted`` canonicalises, the others reduce).
ORDER_FREE_CALLS = frozenset(
    {"sorted", "set", "frozenset", "sum", "min", "max", "len", "any", "all"}
)

#: Plain builtin names: calls to these are never project call-graph
#: edges, so summaries skip recording them as callees.
BUILTIN_NAMES = frozenset(dir(builtins))


def nondet_call(dotted: str, node: ast.Call) -> tuple[str, str] | None:
    """Classify one call as a nondeterminism source.

    Returns ``(source, message)`` — ``source`` is the short taint detail
    carried through summaries, ``message`` the REP001 finding text — or
    ``None`` when the call is deterministic.
    """
    if dotted in NONDETERMINISTIC_CALLS:
        return dotted, f"nondeterministic call {dotted}()"
    if dotted.startswith("random.Random."):
        return None  # method on an explicitly seeded RNG instance
    if dotted.startswith("random.") and dotted not in SEEDED_RANDOM:
        return (
            dotted,
            f"{dotted}() uses the global unseeded RNG; use random.Random(seed)",
        )
    if dotted.startswith("secrets."):
        return dotted, f"{dotted}() draws OS entropy"
    if dotted.endswith(".random.default_rng") and not (node.args or node.keywords):
        return (
            "unseeded default_rng",
            "default_rng() without a seed is nondeterministic",
        )
    if dotted.startswith("numpy.random.") and not dotted.endswith(".default_rng"):
        return (
            dotted,
            f"{dotted}() uses numpy's global RNG; use np.random.default_rng(seed)",
        )
    return None

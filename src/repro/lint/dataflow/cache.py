"""The on-disk summary store: incremental whole-program analysis.

Summaries are pure functions of (file content, analysis version,
summary options), so they are cached keyed by the file's SHA-256.  A
warm run — CI with an actions/cache hit, or a pre-commit hook — only
re-parses modules whose content hash changed; everything else loads
straight from JSON.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.lint.dataflow.summary import ModuleSummary

__all__ = [
    "ANALYSIS_VERSION",
    "SummaryCache",
    "content_digest",
    "ruleset_fingerprint",
]

#: Bump when the summary format or the summarisation semantics change;
#: a mismatched store is discarded wholesale.  (2: lock-order fields and
#: the CFG-layer source suppressors.)
ANALYSIS_VERSION = 2


def content_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def ruleset_fingerprint() -> str:
    """A digest of the active rule vocabulary.

    Folded into the cache fingerprint so a cached summary store
    self-invalidates when rules are added, removed or retitled — the
    suppression semantics baked into summaries (``_SOURCE_SUPPRESSORS``)
    depend on the rule vocabulary, so stale stores would silently keep
    pre-change analysis results alive.
    """
    from repro.lint.rules import ALL_RULES

    blob = "|".join(f"{r.id}:{r.title}" for r in ALL_RULES)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


class SummaryCache:
    """Content-hash keyed store of :class:`ModuleSummary` objects."""

    __slots__ = ("path", "fingerprint", "hits", "misses", "_entries", "_dirty")

    def __init__(self, path: Path, *, fingerprint: str = "") -> None:
        self.path = path
        self.fingerprint = f"v{ANALYSIS_VERSION}|r{ruleset_fingerprint()}|{fingerprint}"
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, dict] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if data.get("fingerprint") != self.fingerprint:
            return  # options or analysis version changed: start over
        entries = data.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def get(self, modpath: str, digest: str) -> ModuleSummary | None:
        entry = self._entries.get(modpath)
        if entry is None or entry.get("digest") != digest:
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_json(entry["summary"])
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, modpath: str, digest: str, summary: ModuleSummary) -> None:
        self._entries[modpath] = {"digest": digest, "summary": summary.to_json()}
        self._dirty = True

    def save(self) -> None:
        """Write the store atomically (best effort: read-only FS is fine)."""
        if not self._dirty:
            return
        payload = json.dumps(
            {
                "fingerprint": self.fingerprint,
                "entries": {k: self._entries[k] for k in sorted(self._entries)},
            },
            sort_keys=True,
        )
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(payload + "\n")
            os.replace(tmp, self.path)
        except OSError:
            return
        self._dirty = False

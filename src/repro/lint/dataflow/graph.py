"""The project call graph: scanning, caching and linking summaries.

:func:`build_program` walks the configured program scope (by default
all of ``src/repro/``), summarises every module — through the disk
cache, so unchanged files are never re-parsed — and returns a
:class:`Program` whose :class:`~repro.lint.dataflow.taint.ProgramFacts`
the REP101..REP105 rules query.

Programs are memoised in-process per (root, scope, options): a lint run
over eighty files builds the whole-program view exactly once.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.dataflow.cache import SummaryCache, content_digest
from repro.lint.dataflow.summary import (
    ModuleSummary,
    SummaryOptions,
    summarize_module,
)
from repro.lint.dataflow.taint import ProgramFacts

__all__ = ["Program", "build_program", "clear_program_memo"]

_PROGRAM_MEMO: dict[tuple, "Program"] = {}


class Program:
    """Every module summary in the program scope, plus resolved facts."""

    __slots__ = (
        "modules",
        "digests",
        "parsed_modules",
        "cached_modules",
        "_functions",
        "_facts",
        "_ext_memo",
    )

    def __init__(
        self,
        modules: dict[str, ModuleSummary],
        digests: dict[str, str],
        *,
        parsed_modules: int = 0,
        cached_modules: int = 0,
    ) -> None:
        self.modules = modules
        self.digests = digests
        self.parsed_modules = parsed_modules
        self.cached_modules = cached_modules
        self._functions: dict | None = None
        self._facts: ProgramFacts | None = None
        self._ext_memo: dict[tuple[str, str], ProgramFacts] = {}

    @property
    def functions(self) -> dict:
        if self._functions is None:
            self._functions = {
                f"{modpath}::{qual}": fn
                for modpath, summary in self.modules.items()
                for qual, fn in summary.functions.items()
            }
        return self._functions

    @property
    def facts(self) -> ProgramFacts:
        if self._facts is None:
            self._facts = ProgramFacts(self.functions)
        return self._facts

    def facts_for(self, summary: ModuleSummary, digest: str) -> ProgramFacts:
        """Facts with ``summary`` spliced in for its module path.

        When the summary matches the program's own copy byte-for-byte
        (the common ``repro lint src/`` case) this is the shared facts
        object; otherwise — fixture sources, seeded-violation tests,
        files outside the program scope — the module's functions replace
        or extend the program's and the fixpoint reruns.
        """
        if self.digests.get(summary.modpath) == digest:
            return self.facts
        key = (summary.modpath, digest)
        cached = self._ext_memo.get(key)
        if cached is not None:
            return cached
        prefix = f"{summary.modpath}::"
        combined = {
            fid: fn for fid, fn in self.functions.items()
            if not fid.startswith(prefix)
        }
        for qual, fn in summary.functions.items():
            combined[f"{prefix}{qual}"] = fn
        facts = ProgramFacts(combined)
        self._ext_memo[key] = facts
        return facts


def clear_program_memo() -> None:
    _PROGRAM_MEMO.clear()


def build_program(config, *, use_memo: bool = True) -> Program:
    """Build (or fetch) the whole-program view for one lint config."""
    from repro.lint.core import LintModule, module_path_for

    options = SummaryOptions.from_config(config)

    if config.program_modules_override is not None:
        modules: dict[str, ModuleSummary] = {}
        digests: dict[str, str] = {}
        for modpath, source in sorted(config.program_modules_override.items()):
            module = LintModule(source, path=modpath, modpath=modpath)
            modules[modpath] = summarize_module(module, options)
            digests[modpath] = content_digest(source.encode("utf-8"))
        return Program(modules, digests, parsed_modules=len(modules))

    root = Path(config.root).resolve()
    memo_key = (root, tuple(config.program_scope), options.fingerprint())
    if use_memo and memo_key in _PROGRAM_MEMO:
        return _PROGRAM_MEMO[memo_key]

    cache: SummaryCache | None = None
    if config.use_cache and config.cache_path:
        cache = SummaryCache(
            root / config.cache_path, fingerprint=options.fingerprint()
        )

    modules = {}
    digests = {}
    parsed = cached = 0
    for scope in config.program_scope:
        base = root / scope
        if base.is_file():
            paths = [base]
        elif base.is_dir():
            paths = sorted(
                p
                for p in base.rglob("*.py")
                if "__pycache__" not in p.parts and ".egg-info" not in p.as_posix()
            )
        else:
            continue
        for path in paths:
            try:
                data = path.read_bytes()
            except OSError:
                continue
            digest = content_digest(data)
            modpath = module_path_for(path)
            summary = cache.get(modpath, digest) if cache is not None else None
            if summary is None:
                try:
                    module = LintModule(
                        data.decode("utf-8"), path=str(path), modpath=modpath
                    )
                except (SyntaxError, UnicodeDecodeError):
                    continue
                summary = summarize_module(module, options)
                parsed += 1
                if cache is not None:
                    cache.put(modpath, digest, summary)
            else:
                cached += 1
            modules[modpath] = summary
            digests[modpath] = digest

    if cache is not None:
        cache.save()
    program = Program(
        modules, digests, parsed_modules=parsed, cached_modules=cached
    )
    if use_memo:
        _PROGRAM_MEMO[memo_key] = program
    return program

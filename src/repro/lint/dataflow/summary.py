"""Per-module dataflow summaries.

A :class:`ModuleSummary` condenses one source file into the facts the
fixpoint propagator needs, without keeping the AST around: for every
function (and the module body, as the pseudo-function ``<module>``) —

* ``calls``: the alias-resolved dotted targets of every call site,
  with constructor-typed locals resolved to ``Class.method`` targets
  and ``self.x()`` kept symbolic for class-local resolution;
* ``return_taints``: what escapes through ``return``/``yield`` — a
  nondeterminism source, an unpicklable value, a freshly acquired
  resource, or the result of a call (resolved later at fixpoint);
* ``param_attr_writes``: ``param.attr = value`` effects, so a helper
  that smuggles a lambda onto a caller-supplied spec is visible at the
  call site;
* ``global_writes`` / ``singleton_reads``: module-global mutations and
  coordinator-singleton reads, for kernel-escape reachability.

Summaries are plain JSON-serialisable data so the disk cache can store
them; nothing here keeps a reference to the tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.lint.dataflow.sources import (
    BUILTIN_NAMES,
    HASH_ORDER,
    ORDER_FREE_CALLS,
    nondet_call,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.core import LintModule

__all__ = [
    "FunctionSummary",
    "ModuleSummary",
    "SummaryOptions",
    "summarize_module",
]

MODULE_BODY = "<module>"

#: Taint kinds carried in ``return_taints``: ``nondet`` (wall clock /
#: RNG / hash order), ``unpicklable`` (lambda, local def), ``resource``
#: (open handle / writer / span), ``call`` (deferred to fixpoint).
Taint = tuple[str, str, int]

#: Method names that mutate a container in place (module-global escape).
_MUTATORS = frozenset(
    {
        "append", "add", "update", "setdefault", "pop", "popitem", "clear",
        "extend", "remove", "discard", "insert", "write",
    }
)

#: Rules whose inline suppression also silences the matching dataflow
#: source when it is *collected into a summary* (a justified direct
#: violation must not re-surface at every transitive call site).
_SOURCE_SUPPRESSORS = {
    "nondet": frozenset({"REP001", "REP101"}),
    "unpicklable": frozenset({"REP003", "REP102"}),
    "resource": frozenset({"REP005", "REP103"}),
    "state": frozenset({"REP002", "REP105", "REP201"}),
    "lock": frozenset({"REP206"}),
}


@dataclass(slots=True)
class SummaryOptions:
    """The config facts summaries depend on (part of the cache key)."""

    tracer_names: tuple[str, ...] = ("tracer", "trc")
    coordinator_singletons: tuple[str, ...] = ("_FORK_CONTEXT", "_KERNELS")
    resource_factories: tuple[str, ...] = ("open", "repro.io.runio.RunWriter")
    lock_factories: tuple[str, ...] = ("threading.Lock", "threading.RLock")

    @classmethod
    def from_config(cls, config: Any) -> "SummaryOptions":
        return cls(
            tracer_names=tuple(config.tracer_names),
            coordinator_singletons=tuple(config.coordinator_singletons),
            resource_factories=tuple(config.resource_factories),
            lock_factories=tuple(config.lock_factories),
        )

    def fingerprint(self) -> str:
        return "|".join(
            (
                ",".join(self.tracer_names),
                ",".join(self.coordinator_singletons),
                ",".join(self.resource_factories),
                ",".join(self.lock_factories),
            )
        )


@dataclass(slots=True)
class FunctionSummary:
    """One function's externally visible dataflow facts."""

    name: str
    modpath: str
    lineno: int = 0
    cls: str | None = None
    params: tuple[str, ...] = ()
    #: (dotted target, lineno, col) for every call site in this scope.
    calls: list[tuple[str, int, int]] = field(default_factory=list)
    #: Taints escaping through return/yield: (kind, detail, lineno).
    return_taints: list[Taint] = field(default_factory=list)
    #: ``params[i].attr = value``: (param index, value kind, detail, lineno)
    #: where value kind is "param" (detail: source index), "unpicklable"
    #: or "call" (detail: dotted target).
    param_attr_writes: list[tuple[int, str, str, int]] = field(default_factory=list)
    #: Module-global names this function writes or mutates.
    global_writes: list[tuple[str, int]] = field(default_factory=list)
    #: Coordinator singleton names this function reads.
    singleton_reads: list[tuple[str, int]] = field(default_factory=list)
    #: Statically named locks this function acquires: (canonical, lineno).
    lock_acquires: list[tuple[str, int]] = field(default_factory=list)
    #: Nested acquisitions: (outer lock, inner lock, inner lineno).
    lock_orders: list[tuple[str, str, int]] = field(default_factory=list)
    #: Calls made while holding a lock: (held lock, dotted target, lineno).
    calls_under_lock: list[tuple[str, str, int]] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "modpath": self.modpath,
            "lineno": self.lineno,
            "cls": self.cls,
            "params": list(self.params),
            "calls": [list(c) for c in self.calls],
            "return_taints": [list(t) for t in self.return_taints],
            "param_attr_writes": [list(w) for w in self.param_attr_writes],
            "global_writes": [list(g) for g in self.global_writes],
            "singleton_reads": [list(s) for s in self.singleton_reads],
            "lock_acquires": [list(a) for a in self.lock_acquires],
            "lock_orders": [list(o) for o in self.lock_orders],
            "calls_under_lock": [list(c) for c in self.calls_under_lock],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "FunctionSummary":
        return cls(
            name=data["name"],
            modpath=data["modpath"],
            lineno=data["lineno"],
            cls=data["cls"],
            params=tuple(data["params"]),
            calls=[tuple(c) for c in data["calls"]],
            return_taints=[tuple(t) for t in data["return_taints"]],
            param_attr_writes=[tuple(w) for w in data["param_attr_writes"]],
            global_writes=[tuple(g) for g in data["global_writes"]],
            singleton_reads=[tuple(s) for s in data["singleton_reads"]],
            lock_acquires=[tuple(a) for a in data["lock_acquires"]],
            lock_orders=[tuple(o) for o in data["lock_orders"]],
            calls_under_lock=[tuple(c) for c in data["calls_under_lock"]],
        )


@dataclass(slots=True)
class ModuleSummary:
    """Every function summary of one module, plus its defined classes."""

    modpath: str
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: tuple[str, ...] = ()

    def to_json(self) -> dict[str, Any]:
        return {
            "modpath": self.modpath,
            "classes": list(self.classes),
            "functions": {n: f.to_json() for n, f in sorted(self.functions.items())},
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ModuleSummary":
        return cls(
            modpath=data["modpath"],
            classes=tuple(data["classes"]),
            functions={
                n: FunctionSummary.from_json(f) for n, f in data["functions"].items()
            },
        )


# -- summarisation ------------------------------------------------------------


def summarize_module(
    module: "LintModule", options: SummaryOptions | None = None
) -> ModuleSummary:
    """Summarise one parsed module (every def, method and the body)."""
    opts = options or SummaryOptions()
    out = ModuleSummary(modpath=module.modpath)
    locks = module_lock_names(module, opts.lock_factories)
    classes: list[str] = []
    body_stmts: list[ast.stmt] = []
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.functions[node.name] = _summarize_function(
                module, node, node.name, None, opts, locks
            )
        elif isinstance(node, ast.ClassDef):
            classes.append(node.name)
            cls_locks = dict(locks)
            cls_locks.update(_class_lock_attrs(module, node, opts.lock_factories))
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{node.name}.{sub.name}"
                    out.functions[qual] = _summarize_function(
                        module, sub, qual, node.name, opts, cls_locks
                    )
        else:
            body_stmts.append(node)
    out.functions[MODULE_BODY] = _summarize_body(module, body_stmts, opts, locks)
    out.classes = tuple(classes)
    return out


def _dotted_module(modpath: str) -> str:
    """``repro/exec/base.py`` -> ``repro.exec.base`` (lock name prefix)."""
    stem = modpath[:-3] if modpath.endswith(".py") else modpath
    dotted = stem.replace("/", ".")
    return dotted[: -len(".__init__")] if dotted.endswith(".__init__") else dotted


def _is_lock_factory(
    module: "LintModule", node: ast.expr, lock_factories: tuple[str, ...]
) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = module.dotted(node.func)
    return dotted is not None and dotted in lock_factories


def module_lock_names(
    module: "LintModule", lock_factories: tuple[str, ...]
) -> dict[str, str]:
    """Module-level ``NAME = threading.Lock()`` bindings, keyed by the
    local reference form, valued by the program-wide canonical name."""
    prefix = _dotted_module(module.modpath)
    out: dict[str, str] = {}
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and _is_lock_factory(
            module, node.value, lock_factories
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = f"{prefix}.{target.id}"
        elif (
            isinstance(node, ast.AnnAssign)
            and node.value is not None
            and isinstance(node.target, ast.Name)
            and _is_lock_factory(module, node.value, lock_factories)
        ):
            out[node.target.id] = f"{prefix}.{node.target.id}"
    return out


def _class_lock_attrs(
    module: "LintModule", cls: ast.ClassDef, lock_factories: tuple[str, ...]
) -> dict[str, str]:
    """``self.X = threading.Lock()`` attributes of one class, keyed by
    the in-method reference form ``self.X``.  Instances share one static
    identity per (class, attr) — standard for lock-order analysis."""
    prefix = f"{_dotted_module(module.modpath)}.{cls.name}"
    out: dict[str, str] = {}
    for node in ast.walk(cls):
        if (
            isinstance(node, ast.Assign)
            and _is_lock_factory(module, node.value, lock_factories)
            and isinstance(node.targets[0], ast.Attribute)
            and isinstance(node.targets[0].value, ast.Name)
            and node.targets[0].value.id == "self"
        ):
            out[f"self.{node.targets[0].attr}"] = f"{prefix}.{node.targets[0].attr}"
    return out


def _summarize_function(
    module: "LintModule",
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
    cls: str | None,
    opts: SummaryOptions,
    locks: dict[str, str] | None = None,
) -> FunctionSummary:
    params = tuple(
        a.arg for a in (*fn.args.posonlyargs, *fn.args.args)
    )
    summary = FunctionSummary(
        name=qualname, modpath=module.modpath, lineno=fn.lineno, cls=cls, params=params
    )
    _Analyzer(module, summary, params, opts, locks=locks).run(fn.body)
    return summary


def _summarize_body(
    module: "LintModule",
    stmts: list[ast.stmt],
    opts: SummaryOptions,
    locks: dict[str, str] | None = None,
) -> FunctionSummary:
    summary = FunctionSummary(name=MODULE_BODY, modpath=module.modpath, lineno=1)
    # The module body cannot write "its own" globals in the escape sense
    # (that is just definition), so global-write tracking is disabled by
    # passing an analyzer with no module-global set.
    _Analyzer(module, summary, (), opts, track_globals=False, locks=locks).run(stmts)
    return summary


def _module_level_names(tree: ast.Module) -> frozenset[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return frozenset(names)


def _attr_root(node: ast.AST) -> ast.AST:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


class _Analyzer:
    """One pass (run twice, for loop-carried flows) over one scope."""

    def __init__(
        self,
        module: "LintModule",
        summary: FunctionSummary,
        params: tuple[str, ...],
        opts: SummaryOptions,
        *,
        track_globals: bool = True,
        locks: dict[str, str] | None = None,
    ) -> None:
        self.module = module
        self.summary = summary
        self.params = params
        self.opts = opts
        self.env: dict[str, frozenset[tuple[str, str, int]]] = {}
        self.local_defs: dict[str, str] = {}
        self.ctor_types: dict[str, str] = {}
        self.set_locals: set[str] = set()
        self.locals: set[str] = set(params)
        self.module_names = (
            _module_level_names(module.tree) if track_globals else frozenset()
        )
        self.lock_names = locks or {}
        self.held: list[str] = []
        self._recorded: set[tuple] = set()

    # -- suppression-aware recording ----------------------------------------

    def _suppressed(self, kind: str, lineno: int) -> bool:
        rules = self.module.suppressions.get(lineno)
        return bool(rules) and bool(rules & _SOURCE_SUPPRESSORS[kind])

    def _record(self, bucket: list, entry: tuple) -> None:
        key = (id(bucket), entry)
        if key not in self._recorded:
            self._recorded.add(key)
            bucket.append(entry)

    # -- driving ------------------------------------------------------------

    def run(self, body: list[ast.stmt]) -> None:
        self._collect_bindings(body)
        for _ in range(2):  # second pass resolves loop-carried flows
            self.held.clear()  # bare acquire() without release() resets
            for stmt in body:
                self._exec(stmt)
        self.summary.calls.sort()
        self.summary.return_taints.sort()
        self.summary.param_attr_writes.sort()
        self.summary.global_writes.sort()
        self.summary.singleton_reads.sort()
        self.summary.lock_acquires.sort()
        self.summary.lock_orders.sort()
        self.summary.calls_under_lock.sort()

    def _collect_bindings(self, body: list[ast.stmt]) -> None:
        for node in self._scope_walk(body):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.local_defs[node.name] = "function"
                self.locals.add(node.name)
            elif isinstance(node, ast.ClassDef):
                self.local_defs[node.name] = "class"
                self.locals.add(node.name)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                self.locals.add(node.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    self.locals.add(alias.asname or alias.name.partition(".")[0])
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                dotted = self.module.dotted(node.value.func)
                if dotted and dotted.rpartition(".")[2][:1].isupper():
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.ctor_types[target.id] = dotted
            if isinstance(node, (ast.Assign, ast.AnnAssign)) and getattr(
                node, "value", None
            ) is not None:
                if _is_set_expr(node.value):
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Name):
                            self.set_locals.add(target.id)

    def _scope_walk(self, body: list[ast.stmt]) -> Iterator[ast.AST]:
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                stack.extend(ast.iter_child_nodes(node))

    # -- call-target normalisation ------------------------------------------

    def call_target(self, func: ast.AST) -> str | None:
        """Dotted target of a call, with local receivers type-resolved."""
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            root = func.value.id
            if root == "self" and self.summary.cls:
                return f"self.{func.attr}"
            ctor = self.ctor_types.get(root)
            if ctor is not None:
                return f"{ctor}.{func.attr}"
        dotted = self.module.dotted(func)
        if dotted is None:
            return None
        root = dotted.partition(".")[0]
        if root in self.locals and root not in self.local_defs:
            return None  # a local value; its attribute calls are opaque
        return dotted

    # -- statements ----------------------------------------------------------

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            taints = self.taints(stmt.value)
            for target in stmt.targets:
                self._assign(target, stmt.value, taints, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, stmt.value, self.taints(stmt.value), stmt.lineno)
        elif isinstance(stmt, ast.AugAssign):
            taints = self.taints(stmt.value)
            if isinstance(stmt.target, ast.Name):
                prev = self.env.get(stmt.target.id, frozenset())
                self.env[stmt.target.id] = prev | taints
            else:
                self._assign(stmt.target, stmt.value, taints, stmt.lineno)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._escape(self.taints(stmt.value))
        elif isinstance(stmt, ast.Global):
            if not self._suppressed("state", stmt.lineno):
                for name in stmt.names:
                    self._record(
                        self.summary.global_writes, (name, stmt.lineno)
                    )
        elif isinstance(stmt, ast.For):
            iter_taints = self.taints(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = iter_taints
            for sub in (*stmt.body, *stmt.orelse):
                self._exec(sub)
        elif isinstance(stmt, ast.While):
            self.taints(stmt.test)
            for sub in (*stmt.body, *stmt.orelse):
                self._exec(sub)
        elif isinstance(stmt, ast.If):
            self.taints(stmt.test)
            for sub in (*stmt.body, *stmt.orelse):
                self._exec(sub)
        elif isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            pushed = 0
            for item in stmt.items:
                taints = self.taints(item.context_expr)
                if isinstance(item.optional_vars, ast.Name):
                    # Context-managed resources are released by the with.
                    self.env[item.optional_vars.id] = frozenset(
                        t for t in taints if t[0] != "resource"
                    )
                canon = self._lock_canonical(item.context_expr)
                if canon is not None:
                    self._acquire_lock(canon, item.context_expr.lineno)
                    pushed += 1
            for sub in stmt.body:
                self._exec(sub)
            del self.held[len(self.held) - pushed :]
        elif isinstance(stmt, ast.Try):
            for sub in (*stmt.body, *stmt.orelse, *stmt.finalbody):
                self._exec(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._exec(sub)
        elif isinstance(stmt, ast.Expr):
            self.taints(stmt.value)
        else:  # Raise, Assert, Match, Delete, ... — generic recursion
            self._exec_children(stmt)

    def _exec_children(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._exec(child)
            elif isinstance(child, ast.expr):
                self.taints(child)
            else:  # match cases, withitems, ... — keep descending
                self._exec_children(child)

    def _assign(
        self,
        target: ast.AST,
        value: ast.expr,
        taints: frozenset[tuple[str, str, int]],
        lineno: int,
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taints
        elif isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                self._assign(el, value, taints, lineno)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            root = _attr_root(target)
            if not isinstance(root, ast.Name):
                return
            if isinstance(target, ast.Attribute) and root.id in self.params:
                self._param_attr_write(root.id, value, taints, lineno)
            if root.id in self.module_names and root.id not in self.locals:
                if not self._suppressed("state", lineno):
                    self._record(self.summary.global_writes, (root.id, lineno))

    def _param_attr_write(
        self,
        param: str,
        value: ast.expr,
        taints: frozenset[tuple[str, str, int]],
        lineno: int,
    ) -> None:
        if self._suppressed("unpicklable", lineno):
            return
        idx = self.params.index(param)
        writes = self.summary.param_attr_writes
        if isinstance(value, ast.Name) and value.id in self.params:
            self._record(writes, (idx, "param", str(self.params.index(value.id)), lineno))
            return
        for kind, detail, _src_line in sorted(taints):
            if kind == "unpicklable":
                self._record(writes, (idx, "unpicklable", detail, lineno))
            elif kind == "call":
                self._record(writes, (idx, "call", detail, lineno))

    def _escape(self, taints: frozenset[tuple[str, str, int]]) -> None:
        for kind, detail, lineno in sorted(taints):
            self._record(self.summary.return_taints, (kind, detail, lineno))

    # -- lock tracking (REP206) ---------------------------------------------

    def _lock_canonical(self, node: ast.expr) -> str | None:
        """Canonical name when ``node`` references a statically named lock."""
        if isinstance(node, ast.Name) and node.id not in self.locals:
            return self.lock_names.get(node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return self.lock_names.get(f"self.{node.attr}")
        return None

    def _acquire_lock(self, canon: str, lineno: int) -> None:
        if self._suppressed("lock", lineno):
            return
        self._record(self.summary.lock_acquires, (canon, lineno))
        for outer in self.held:
            if outer != canon:
                self._record(self.summary.lock_orders, (outer, canon, lineno))
        self.held.append(canon)

    # -- expressions ---------------------------------------------------------

    def taints(self, node: ast.expr) -> frozenset[tuple[str, str, int]]:
        if isinstance(node, ast.Constant):
            return frozenset()
        if isinstance(node, ast.Name):
            out = set(self.env.get(node.id, frozenset()))
            if node.id in self.local_defs and not self._suppressed(
                "unpicklable", node.lineno
            ):
                out.add(
                    (
                        "unpicklable",
                        f"local {self.local_defs[node.id]} {node.id!r}",
                        node.lineno,
                    )
                )
            if node.id in self.opts.coordinator_singletons and not self._suppressed(
                "state", node.lineno
            ):
                self._record(self.summary.singleton_reads, (node.id, node.lineno))
            return frozenset(out)
        if isinstance(node, ast.Lambda):
            if self._suppressed("unpicklable", node.lineno):
                return frozenset()
            return frozenset({("unpicklable", "lambda", node.lineno)})
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self._escape(self.taints(node.value))
            return frozenset()
        if isinstance(node, ast.Call):
            return self._call_taints(node)
        if isinstance(
            node, (ast.ListComp, ast.GeneratorExp, ast.SetComp, ast.DictComp)
        ):
            out: set[tuple[str, str, int]] = set()
            for gen in node.generators:
                out |= self.taints(gen.iter)
                if not isinstance(node, ast.SetComp) and self._is_set_like(gen.iter):
                    if not self._suppressed("nondet", node.lineno):
                        out.add(("nondet", HASH_ORDER, node.lineno))
            return frozenset(out)
        # Generic recursion: union over child expressions.
        out = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self.taints(child)
        return frozenset(out)

    def _call_taints(self, node: ast.Call) -> frozenset[tuple[str, str, int]]:
        arg_taints: set[tuple[str, str, int]] = set()
        for value in (*node.args, *(kw.value for kw in node.keywords)):
            arg_taints |= self.taints(value)
        dotted = self.call_target(node.func)
        lineno, col = node.lineno, node.col_offset

        # Explicit lock.acquire() / lock.release() outside a with-block.
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "acquire",
            "release",
        ):
            canon = self._lock_canonical(node.func.value)
            if canon is not None:
                if node.func.attr == "acquire":
                    if canon not in self.held:
                        self._acquire_lock(canon, lineno)
                elif canon in self.held:
                    self.held.remove(canon)
                return frozenset(arg_taints)

        # Mutating a module-level container through a method call is a
        # module-global write (the REP105 escape source).
        if isinstance(node.func, ast.Attribute) and node.func.attr in _MUTATORS:
            root = _attr_root(node.func.value)
            if (
                isinstance(root, ast.Name)
                and root.id in self.module_names
                and root.id not in self.locals
                and not self._suppressed("state", lineno)
            ):
                self._record(self.summary.global_writes, (root.id, lineno))

        if dotted is not None:
            bare = "." not in dotted
            if not (bare and dotted in BUILTIN_NAMES):
                self._record(self.summary.calls, (dotted, lineno, col))
                for held in self.held:
                    self._record(
                        self.summary.calls_under_lock, (held, dotted, lineno)
                    )

            classified = nondet_call(dotted, node)
            if classified is not None:
                if self._suppressed("nondet", lineno):
                    return frozenset(arg_taints)
                return frozenset(arg_taints | {("nondet", classified[0], lineno)})

            if dotted in ORDER_FREE_CALLS:
                if dotted == "sorted":
                    return frozenset(
                        t for t in arg_taints if t[1] != HASH_ORDER
                    )
                return frozenset()  # reduced to an order-free scalar/set

            if self._is_resource_factory(node, dotted):
                if not self._suppressed("resource", lineno):
                    name = dotted.rpartition(".")[2]
                    return frozenset(arg_taints | {("resource", name, lineno)})

            if dotted in ("list", "tuple") and node.args:
                if any(self._is_set_like(a) for a in node.args):
                    if not self._suppressed("nondet", lineno):
                        return frozenset(
                            arg_taints | {("nondet", HASH_ORDER, lineno)}
                        )

            if not (bare and dotted in BUILTIN_NAMES):
                return frozenset(arg_taints | {("call", dotted, lineno)})
            return frozenset(arg_taints)

        # Unresolvable target, e.g. a method on an untyped local: the
        # span() heuristic still applies; otherwise arg taints flow.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "span"
            and _is_tracer_receiver(node.func.value, self.opts.tracer_names)
            and not self._suppressed("resource", lineno)
        ):
            return frozenset(arg_taints | {("resource", "tracer span", lineno)})
        return frozenset(arg_taints)

    def _is_resource_factory(self, node: ast.Call, dotted: str) -> bool:
        if dotted in self.opts.resource_factories:
            return True
        terminal = dotted.rpartition(".")[2]
        return any(
            "." not in f and f == terminal for f in self.opts.resource_factories
        )

    def _is_set_like(self, node: ast.expr) -> bool:
        if _is_set_expr(node):
            return True
        return isinstance(node, ast.Name) and node.id in self.set_locals


def _is_set_expr(node: ast.AST) -> bool:
    return isinstance(node, (ast.Set, ast.SetComp)) or (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_tracer_receiver(node: ast.AST, tracer_names: tuple[str, ...]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in tracer_names
    if isinstance(node, ast.Attribute):
        return node.attr in tracer_names
    return False

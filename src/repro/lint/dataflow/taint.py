"""The fixpoint propagator: whole-program facts over module summaries.

:class:`ProgramFacts` resolves every summary's symbolic call targets
against the project function index and iterates to a fixpoint on four
properties:

* ``nondet``   — the function's return value carries wall-clock,
  unseeded-RNG or hash-order taint (return-flow: a source that never
  escapes does not taint callers);
* ``unpicklable`` — the function returns a lambda/local def (or the
  result of a call that does);
* ``resource`` — the function returns a freshly acquired resource
  (file handle, run writer, tracer span), making its call sites
  acquisition sites;
* ``state``    — the function (or anything it transitively calls)
  writes a module global or reads a coordinator singleton
  (reachability, not return-flow: any call suffices to escape).

Every entry carries a witness chain of function ids so findings can
print the path from the call site to the source.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.lint.dataflow.summary import FunctionSummary

__all__ = ["FactsView", "ProgramFacts", "fid_display"]

#: (detail, witness chain of fids, source lineno)
Entry = tuple[str, tuple[str, ...], int]

_MAX_CHAIN = 8


def fid_display(fid: str) -> str:
    modpath, _, qual = fid.partition("::")
    return f"{qual} ({modpath})"


def chain_display(fid: str, entry: Entry) -> str:
    return " -> ".join(fid_display(f) for f in (fid, *entry[1]))


class ProgramFacts:
    """Resolved, propagated facts over one set of function summaries."""

    __slots__ = (
        "functions",
        "_modpaths",
        "nondet",
        "unpicklable",
        "resource",
        "state",
    )

    def __init__(self, functions: Mapping[str, FunctionSummary]) -> None:
        self.functions = dict(functions)
        self._modpaths = frozenset(
            fid.partition("::")[0] for fid in self.functions
        )
        self.nondet: dict[str, Entry] = {}
        self.unpicklable: dict[str, Entry] = {}
        self.resource: dict[str, Entry] = {}
        self.state: dict[str, Entry] = {}
        self._propagate()

    # -- resolution ----------------------------------------------------------

    def resolve(self, modpath: str, dotted: str, cls: str | None = None) -> str | None:
        """Function id for a summary's symbolic call target, or None."""
        if dotted.startswith("self."):
            if cls is None:
                return None
            fid = f"{modpath}::{cls}.{dotted[5:]}"
            return fid if fid in self.functions else None
        if "." not in dotted:
            fid = f"{modpath}::{dotted}"
            return fid if fid in self.functions else None
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            stem = "/".join(parts[:i])
            remainder = ".".join(parts[i:])
            for mp in (f"{stem}.py", f"{stem}/__init__.py"):
                if mp not in self._modpaths:
                    continue
                for qual in (remainder, f"{remainder}.__init__"):
                    fid = f"{mp}::{qual}"
                    if fid in self.functions:
                        return fid
                return None  # right module, unknown function: stop here
        return None

    def _resolve_for(self, summary: FunctionSummary, dotted: str) -> str | None:
        fid = self.resolve(summary.modpath, dotted, summary.cls)
        if fid == f"{summary.modpath}::{summary.name}":
            return None  # direct self-recursion adds nothing
        return fid

    # -- propagation ---------------------------------------------------------

    def _propagate(self) -> None:
        order = sorted(self.functions)
        # Seed the direct sources.
        for fid in order:
            s = self.functions[fid]
            for kind, detail, lineno in s.return_taints:
                table = {
                    "nondet": self.nondet,
                    "unpicklable": self.unpicklable,
                    "resource": self.resource,
                }.get(kind)
                if table is not None:
                    table.setdefault(fid, (detail, (), lineno))
            if s.singleton_reads:
                name, lineno = s.singleton_reads[0]
                self.state.setdefault(
                    fid, (f"reads coordinator singleton {name}", (), lineno)
                )
            if s.global_writes:
                name, lineno = s.global_writes[0]
                self.state.setdefault(
                    fid, (f"writes module global {name!r}", (), lineno)
                )
        # Breadth-first sweeps: each sweep extends chains by one hop, so
        # witness chains come out minimal.
        changed = True
        while changed:
            changed = False
            for fid in order:
                s = self.functions[fid]
                for kind, detail, lineno in s.return_taints:
                    if kind != "call":
                        continue
                    target = self._resolve_for(s, detail)
                    if target is None:
                        continue
                    for table in (self.nondet, self.unpicklable, self.resource):
                        entry = table.get(target)
                        if entry is None or fid in table:
                            continue
                        if len(entry[1]) >= _MAX_CHAIN:
                            continue
                        table[fid] = (entry[0], (target, *entry[1]), lineno)
                        changed = True
                if fid not in self.state:
                    for dotted, lineno, _col in s.calls:
                        target = self._resolve_for(s, dotted)
                        entry = self.state.get(target) if target else None
                        if entry is None or len(entry[1]) >= _MAX_CHAIN:
                            continue
                        self.state[fid] = (entry[0], (target, *entry[1]), lineno)
                        changed = True
                        break

    # -- queries -------------------------------------------------------------

    def spec_writes(
        self, fid: str
    ) -> Iterable[tuple[int, str, str, tuple[str, ...], int]]:
        """Resolved ``param.attr = value`` effects of one function.

        Yields ``(target param index, kind, detail, chain, lineno)`` with
        kind "param" (detail: source param index as str) or "unpicklable".
        """
        s = self.functions.get(fid)
        if s is None:
            return
        for tidx, kind, detail, lineno in s.param_attr_writes:
            if kind in ("param", "unpicklable"):
                yield tidx, kind, detail, (), lineno
            elif kind == "call":
                target = self._resolve_for(s, detail)
                entry = self.unpicklable.get(target) if target else None
                if entry is not None:
                    yield tidx, "unpicklable", entry[0], (target, *entry[1]), lineno


#: Back-compat alias: rules take whatever facts object the context hands
#: them; today that is always a ProgramFacts.
FactsView = ProgramFacts

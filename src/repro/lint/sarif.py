"""Shared SARIF 2.1.0 writer for reprolint and reprosan.

Both tools upload to GitHub code scanning, so both need the same
interchange shape: one run, one driver carrying the full rule (or
detector) catalogue, one result per finding with a physical location.
This module is the single place that shape is built; ``reprolint``
passes its static-rule catalogue, ``reprosan`` passes the dynamic
detector catalogue plus the static rules each detector cross-validates.

Serialisation is canonical (sorted keys, fixed indent, trailing
newline) so SARIF artifacts are byte-comparable across runs.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

__all__ = [
    "SARIF_SCHEMA",
    "full_catalogue",
    "rule_catalogue",
    "sarif_document",
    "sarif_result",
    "to_sarif_json",
]

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def rule_catalogue() -> list[dict[str, Any]]:
    """The static-rule catalogue: one entry per REPxxx rule."""
    from repro.lint.rules import ALL_RULES

    return [
        {"id": rule.id, "name": type(rule).__name__, "title": rule.title}
        for rule in ALL_RULES
    ]


def full_catalogue() -> list[dict[str, Any]]:
    """Static rules plus the reprosan dynamic detectors, ids unique.

    The combined catalogue is what makes a reprosan SARIF
    self-describing: every SANxxx result names the REPxxx rules it
    cross-validates, and those rules are present in the same driver.
    """
    from repro.san.report import DETECTORS

    catalogue = [
        {
            "id": d.id,
            "name": f"San{d.detector.capitalize()}",
            "title": d.title,
            "properties": {"staticRules": list(d.static_rules)},
        }
        for d in DETECTORS
    ]
    catalogue.extend(rule_catalogue())
    return catalogue


def sarif_result(
    rule_id: str,
    message: str,
    path: str,
    line: int,
    col: int = 1,
    *,
    rule_index: int | None = None,
    properties: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """One SARIF result with a physical location."""
    result: dict[str, Any] = {
        "ruleId": rule_id,
        "level": "error",
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": path.replace("\\", "/")},
                    "region": {
                        "startLine": max(line, 1),
                        "startColumn": max(col, 1),
                    },
                }
            }
        ],
    }
    if rule_index is not None:
        result["ruleIndex"] = rule_index
    if properties:
        result["properties"] = dict(properties)
    return result


def sarif_document(
    tool_name: str,
    rules: Sequence[Mapping[str, Any]],
    results: Sequence[Mapping[str, Any]],
) -> dict[str, Any]:
    """A complete one-run SARIF document.

    ``rules`` entries carry ``id``, ``name``, ``title`` and an optional
    ``properties`` mapping (reprosan uses it for the REPxxx
    cross-validation list).
    """
    driver_rules = []
    for rule in rules:
        entry: dict[str, Any] = {
            "id": rule["id"],
            "name": rule["name"],
            "shortDescription": {"text": rule["title"]},
            "defaultConfiguration": {"level": "error"},
        }
        if rule.get("properties"):
            entry["properties"] = dict(rule["properties"])
        driver_rules.append(entry)
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {"driver": {"name": tool_name, "rules": driver_rules}},
                "columnKind": "utf16CodeUnits",
                "results": list(results),
            }
        ],
    }


def to_sarif_json(document: Mapping[str, Any]) -> str:
    return json.dumps(document, indent=2, sort_keys=True) + "\n"

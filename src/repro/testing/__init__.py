"""Test harnesses that exercise the engines from the outside.

Unlike :mod:`repro.mapreduce.faults` (which injects failures *into* a
run), the tools here drive whole runs repeatedly — crash, resume, verify —
so they live outside the deterministic-kernel lint scope and are free to
use the filesystem and seeded randomness.
"""

from repro.testing.chaos import (
    ChaosReport,
    ChaosTarget,
    CrashpointInvariantError,
    run_crashpoint_sweep,
)

__all__ = [
    "ChaosReport",
    "ChaosTarget",
    "CrashpointInvariantError",
    "run_crashpoint_sweep",
]

"""Systematic crashpoint chaos harness for the journalled engines.

The :class:`~repro.mapreduce.journal.JobJournal` claims that a coordinator
killed at *any* point can be restarted against the same journal and produce
byte-identical output, exactly-once commits, and no leaked intermediate
state.  This module tests that claim mechanically instead of by spot-check:

1. Run the workload once uninterrupted with a journal to learn ``N``, the
   number of journal-append sites, and capture the reference output bytes.
2. For each chosen site ``k`` (all of ``1..N`` in exhaustive mode, a seeded
   sample in CI mode) and each crash mode (``"after"`` — the record is
   durable before the coordinator dies — and ``"torn"`` — the record is
   half-written), start a fresh cluster with ``crash_at=k``, let the run
   die with :class:`~repro.mapreduce.journal.CoordinatorCrash`, then resume
   from the surviving journal on another fresh cluster.
3. After every resume, check the invariants below; the first violation
   raises :class:`CrashpointInvariantError` carrying enough context
   (target, site, crash mode, journal directory) for the CLI to save a
   reproducer.

Checked invariants:

* **Byte-identical output** — the resumed run's output file matches the
  uninterrupted reference byte for byte.
* **Exactly-once commits** — the final journal holds exactly one
  ``reduce-commit`` per partition and exactly one ``output-commit``.
* **No orphans** — after the resume, cluster disks hold only ``hdfs/``
  files (every engine cleans its intermediates), and the journal
  directory holds only finalized ``.wal`` segments.
* **Counter consistency** — ``output_records`` and ``output.bytes`` match
  the reference, and the journaled reduce-commit record counts sum to the
  output record count.
* **Idempotent replay** — running a *third* time against the completed
  journal reproduces the bytes again without appending a single record.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.mapreduce.counters import C
from repro.mapreduce.journal import (
    K_OUTPUT_COMMIT,
    K_REDUCE_COMMIT,
    CoordinatorCrash,
    JobJournal,
)
from repro.obs.tracer import NULL_TRACER

__all__ = [
    "ChaosTarget",
    "ChaosReport",
    "CrashpointInvariantError",
    "run_crashpoint_sweep",
]

#: Crash modes exercised per site: the record was durable before the death,
#: or the death tore the record mid-write.
CRASH_MODES = ("after", "torn")


class CrashpointInvariantError(AssertionError):
    """A resume after an injected crash violated a durability invariant.

    Carries the failing coordinates so callers (the ``repro chaos`` CLI,
    CI) can persist the journal directory and print a one-line repro.
    """

    def __init__(
        self,
        message: str,
        *,
        target: str,
        site: int,
        crash_mode: str,
        journal_dir: str,
    ) -> None:
        super().__init__(
            f"[{target} site={site} mode={crash_mode}] {message} "
            f"(journal: {journal_dir})"
        )
        self.target = target
        self.site = site
        self.crash_mode = crash_mode
        self.journal_dir = journal_dir


@dataclass(frozen=True)
class ChaosTarget:
    """One workload/engine combination the sweep can crash repeatedly.

    The three factories must be *pure*: every call builds a fresh cluster
    (with input already loaded), a fresh engine bound to that cluster and
    the given journal, and a fresh job spec.  The harness never reuses a
    cluster across crash/resume boundaries — a real coordinator restart
    loses all of the old process's memory.
    """

    name: str
    make_cluster: Callable[[], Any]
    make_engine: Callable[[Any, Any], Any]
    make_job: Callable[[], Any]


@dataclass
class ChaosReport:
    """Outcome of one full sweep over a target."""

    target: str
    sites: int
    mode: str
    crash_modes: tuple[str, ...]
    crashes: int = 0
    resumes: int = 0
    replays: int = 0
    sites_swept: list[int] = field(default_factory=list)
    output_records: int = 0
    output_bytes: int = 0

    def summary(self) -> str:
        return (
            f"{self.target}: {self.sites} sites, swept {len(self.sites_swept)} "
            f"({self.mode}), {self.crashes} crashes / {self.resumes} resumes / "
            f"{self.replays} replays, all invariants held"
        )


def _output_bytes(cluster: Any, path: str) -> bytes:
    """The committed output file as one byte string, in block order."""
    blocks = cluster.hdfs.namenode.blocks_of(path)
    return b"".join(cluster.hdfs.read_block_bytes(b.block_id) for b in blocks)


def _orphan_files(cluster: Any) -> list[str]:
    """Non-``hdfs/`` files left on any disk — engine intermediates leaked."""
    orphans: list[str] = []
    for name in sorted(cluster.nodes):
        node = cluster.nodes[name]
        for disk_name in sorted(node.disks):
            for path in node.disks[disk_name].list_files():
                if not path.startswith("hdfs/"):
                    orphans.append(f"{name}:{disk_name}:{path}")
    return orphans


def _pick_sites(n_sites: int, mode: str, samples: int, seed: int) -> list[int]:
    if mode == "exhaustive":
        return list(range(1, n_sites + 1))
    if mode == "sampled":
        k = min(samples, n_sites)
        return sorted(random.Random(seed).sample(range(1, n_sites + 1), k))
    raise ValueError(f"unknown sweep mode {mode!r} (use 'exhaustive' or 'sampled')")


def run_crashpoint_sweep(
    target: ChaosTarget,
    workdir: str,
    *,
    mode: str = "exhaustive",
    samples: int = 8,
    seed: int = 0,
    crash_modes: tuple[str, ...] = CRASH_MODES,
    tracer: Any = NULL_TRACER,
) -> ChaosReport:
    """Crash-and-resume ``target`` at every chosen journal-append site.

    ``workdir`` receives one journal directory per (site, crash-mode)
    probe plus ``ref/`` for the reference run; on failure the offending
    directory is left in place and named in the raised
    :class:`CrashpointInvariantError`.
    """
    bad = [m for m in crash_modes if m not in CRASH_MODES]
    if bad:
        raise ValueError(f"unknown crash modes: {bad}")
    os.makedirs(workdir, exist_ok=True)

    # -- reference run: journal on, no crash --------------------------------
    ref_journal = JobJournal(os.path.join(workdir, "ref"))
    ref_cluster = target.make_cluster()
    job = target.make_job()
    ref_result = target.make_engine(ref_cluster, ref_journal).run(job)
    n_sites = ref_journal.appends
    if n_sites == 0:
        raise ValueError(f"{target.name}: reference run made no journal appends")
    ref_bytes = _output_bytes(ref_cluster, job.output_path)
    ref_records = ref_result.output_records
    ref_out_bytes = ref_result.counters[C.OUTPUT_BYTES]
    ref_orphans = _orphan_files(ref_cluster)
    if ref_orphans:
        raise ValueError(
            f"{target.name}: reference run leaked intermediates: {ref_orphans[:5]}"
        )

    report = ChaosReport(
        target=target.name,
        sites=n_sites,
        mode=mode,
        crash_modes=tuple(crash_modes),
        output_records=ref_records,
        output_bytes=len(ref_bytes),
    )

    def fail(message: str, site: int, crash_mode: str, journal_dir: str) -> None:
        raise CrashpointInvariantError(
            message,
            target=target.name,
            site=site,
            crash_mode=crash_mode,
            journal_dir=journal_dir,
        )

    for site in _pick_sites(n_sites, mode, samples, seed):
        report.sites_swept.append(site)
        for crash_mode in crash_modes:
            journal_dir = os.path.join(workdir, f"site{site:04d}-{crash_mode}")
            tracer.event("chaos.crashpoint", "chaos", site=site, mode=crash_mode)

            # Crash the coordinator at append #site.
            crash_journal = JobJournal(
                journal_dir, crash_at=site, crash_mode=crash_mode
            )
            crash_cluster = target.make_cluster()
            try:
                target.make_engine(crash_cluster, crash_journal).run(
                    target.make_job()
                )
            except CoordinatorCrash:
                report.crashes += 1
            else:
                fail(
                    f"crash_at={site} did not fire (run completed)",
                    site,
                    crash_mode,
                    journal_dir,
                )

            # Resume on a fresh cluster from the surviving journal.
            resume_cluster = target.make_cluster()
            resume_job = target.make_job()
            result = target.make_engine(
                resume_cluster, JobJournal(journal_dir)
            ).run(resume_job)
            report.resumes += 1

            got = _output_bytes(resume_cluster, resume_job.output_path)
            if got != ref_bytes:
                fail(
                    f"resumed output differs from reference "
                    f"({len(got)} vs {len(ref_bytes)} bytes)",
                    site,
                    crash_mode,
                    journal_dir,
                )

            # Exactly-once commits over the durable journal.
            final = JobJournal(journal_dir)
            reduce_commits: dict[int, int] = {}
            output_commits = 0
            committed_records = 0
            for rec in final.records:
                if rec.kind == K_REDUCE_COMMIT:
                    part = rec.fields["partition"]
                    reduce_commits[part] = reduce_commits.get(part, 0) + 1
                    committed_records += len(rec.fields["records"])
                elif rec.kind == K_OUTPUT_COMMIT:
                    output_commits += 1
            dupes = {p: n for p, n in reduce_commits.items() if n != 1}
            if dupes:
                fail(
                    f"reduce partitions committed != once: {dupes}",
                    site,
                    crash_mode,
                    journal_dir,
                )
            if output_commits != 1:
                fail(
                    f"{output_commits} output commits (want exactly 1)",
                    site,
                    crash_mode,
                    journal_dir,
                )

            # No orphaned intermediates or unsealed journal segments.
            orphans = _orphan_files(resume_cluster)
            if orphans:
                fail(
                    f"leaked intermediates after resume: {orphans[:5]}",
                    site,
                    crash_mode,
                    journal_dir,
                )
            loose = [
                f
                for f in os.listdir(journal_dir)
                if not f.endswith(".wal")
            ]
            if loose:
                fail(
                    f"journal dir holds non-finalized files: {loose}",
                    site,
                    crash_mode,
                    journal_dir,
                )

            # Counter consistency with the reference run.
            if result.output_records != ref_records:
                fail(
                    f"output_records {result.output_records} != {ref_records}",
                    site,
                    crash_mode,
                    journal_dir,
                )
            if result.counters[C.OUTPUT_BYTES] != ref_out_bytes:
                fail(
                    f"output.bytes {result.counters[C.OUTPUT_BYTES]} "
                    f"!= {ref_out_bytes}",
                    site,
                    crash_mode,
                    journal_dir,
                )
            if committed_records != ref_records:
                fail(
                    f"journaled commit records sum to {committed_records}, "
                    f"output has {ref_records}",
                    site,
                    crash_mode,
                    journal_dir,
                )

            # Idempotent replay: a third run must not append anything.
            replay_cluster = target.make_cluster()
            replay_journal = JobJournal(journal_dir)
            before = len(replay_journal.records)
            target.make_engine(replay_cluster, replay_journal).run(
                target.make_job()
            )
            report.replays += 1
            if _output_bytes(replay_cluster, resume_job.output_path) != ref_bytes:
                fail(
                    "double replay produced different bytes",
                    site,
                    crash_mode,
                    journal_dir,
                )
            after = len(JobJournal(journal_dir).records)
            if after != before:
                fail(
                    f"replay appended {after - before} journal records",
                    site,
                    crash_mode,
                    journal_dir,
                )

    return report

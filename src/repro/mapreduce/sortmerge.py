"""Sort-merge map and reduce tasks — the Hadoop baseline of the paper.

Map side (Fig. 1 of the paper): each map task reads one block, applies the
map function, partitions key-value pairs by reducer, and **sorts the output
buffer on the compound (partition, key)**.  A full buffer sorts and spills;
at task end the spills are merged into one sorted segment per partition.
The sorting step is the CPU cost the paper quantifies in Table II; the
final segment write is the synchronous map-output write of §III.B.2.

Reduce side: fetched segments accumulate through a
:class:`~repro.mapreduce.merge.MultiPassMerger`; after the last segment the
blocking final merge produces a single sorted run, which is grouped and fed
to the reduce function.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Any, Iterable, Iterator

from repro.io.batch import merge_segments, sort_bucket
from repro.io.disk import LocalDisk
from repro.io.runio import stream_run, write_run
from repro.io.serialization import estimate_size
from repro.mapreduce.api import MapReduceJob
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.merge import MultiPassMerger, group_sorted, merge_sorted
from repro.mapreduce.partition import Partitioner, hash_partitioner
from repro.obs.tracer import NULL_TRACER, byte_cost

__all__ = ["MapOutputSegment", "MapOutput", "SortMergeMapTask", "SortMergeReduceTask"]

_RECORD_OVERHEAD = 32

# Sorting on the compound (partition, key) is the map side's hot loop; a
# C-level itemgetter key beats a per-record lambda by ~2x on large buffers.
_PARTITION_KEY = itemgetter(0, 1)


@dataclass(frozen=True, slots=True)
class MapOutputSegment:
    """One partition's sorted segment of one map task's output."""

    path: str
    nbytes: int
    records: int


@dataclass(slots=True)
class MapOutput:
    """Everything a completed map task leaves behind for the shuffle."""

    task_id: int
    node: str
    segments: dict[int, MapOutputSegment] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return sum(s.nbytes for s in self.segments.values())

    @property
    def total_records(self) -> int:
        return sum(s.records for s in self.segments.values())


class _SortSpillBuffer:
    """Map-side output buffer with Hadoop's sort-and-spill behaviour."""

    def __init__(
        self,
        job: MapReduceJob,
        disk: LocalDisk,
        task_id: int,
        counters: Counters,
        partitioner: Partitioner,
        *,
        tracer: Any = NULL_TRACER,
        node: str = "",
    ) -> None:
        self.job = job
        self.disk = disk
        self.task_id = task_id
        self.counters = counters
        self.partitioner = partitioner
        self.tracer = tracer
        self.node = node
        self._task = f"map:{task_id:05d}"
        self._entries: list[tuple[int, Any, Any]] = []
        self._bytes = 0
        self._spill_seq = 0
        # spill_segments[s][p] -> (path, nbytes, records)
        self.spill_segments: list[dict[int, tuple[str, int, int]]] = []

    def add(self, key: Any, value: Any) -> None:
        partition = self.partitioner(key, self.job.config.num_reducers)
        self._entries.append((partition, key, value))
        self._bytes += estimate_size(key) + estimate_size(value) + _RECORD_OVERHEAD
        self.counters.inc(C.MAP_OUTPUT_RECORDS)
        if self._bytes >= self.job.config.map_buffer_bytes:
            self.spill()

    def spill(self) -> None:
        """Sort the buffer on (partition, key), combine, write one spill."""
        if not self._entries:
            return
        entries = self._entries
        self._entries = []
        self._bytes = 0

        self.tracer.metrics.histogram("map.sort.records").observe(len(entries))
        with self.tracer.span(
            "sort", "sort", node=self.node, task=self._task, cost=len(entries)
        ) as sort_span:
            sort_span.set(records=len(entries))
            with self.counters.timer(C.T_SORT):
                entries.sort(key=_PARTITION_KEY)
        self.counters.inc(C.SORT_RECORDS, len(entries))

        if self.job.has_combiner and self.job.config.combine_on_spill:
            entries = self._combine_sorted(entries)

        segments: dict[int, tuple[str, int, int]] = {}
        spill_bytes = 0
        with self.tracer.span(
            "spill", "spill", node=self.node, task=self._task
        ) as spill_span:
            start = 0
            n = len(entries)
            while start < n:
                partition = entries[start][0]
                end = start
                while end < n and entries[end][0] == partition:
                    end += 1
                path = f"mapspill/{self.task_id:05d}/s{self._spill_seq:03d}-p{partition:03d}"
                pairs = [(k, v) for _, k, v in entries[start:end]]
                nbytes = write_run(self.disk, path, pairs)
                segments[partition] = (path, nbytes, len(pairs))
                self.counters.inc(C.MAP_SPILL_BYTES, nbytes)
                spill_bytes += nbytes
                start = end
            spill_span.set(bytes=spill_bytes, segments=len(segments))
            spill_span.set_cost(byte_cost(spill_bytes))
        self.spill_segments.append(segments)
        self.counters.inc(C.MAP_SPILLS)
        self._spill_seq += 1

    def _combine_sorted(
        self, entries: list[tuple[int, Any, Any]]
    ) -> list[tuple[int, Any, Any]]:
        """Run the combiner over consecutive equal (partition, key) groups."""
        combine_fn = self.job.combine_fn
        assert combine_fn is not None
        out: list[tuple[int, Any, Any]] = []
        with self.tracer.span(
            "combine", "combine", node=self.node, task=self._task, cost=len(entries)
        ) as combine_span, self.counters.timer(C.T_COMBINE):
            i = 0
            n = len(entries)
            while i < n:
                # Pre-extract the group key once and slice the group out,
                # instead of re-indexing each entry in an inner loop.
                partition, key, _ = entries[i]
                j = i + 1
                while j < n and entries[j][0] == partition and entries[j][1] == key:
                    j += 1
                values = [e[2] for e in entries[i:j]]
                i = j
                self.counters.inc(C.COMBINE_INPUT_RECORDS, len(values))
                for out_key, out_value in combine_fn(key, iter(values)):
                    out.append((partition, out_key, out_value))
                    self.counters.inc(C.COMBINE_OUTPUT_RECORDS)
            combine_span.set(records_in=len(entries), records_out=len(out))
        return out

    def finish(self) -> dict[int, MapOutputSegment]:
        """Flush the last buffer and merge spills into final segments.

        A single spill's segments *are* the final output (no extra I/O), as
        in a well-tuned Hadoop job; multiple spills pay a per-partition
        merge read+write.
        """
        self.spill()
        if not self.spill_segments:
            return {}
        if len(self.spill_segments) == 1:
            final: dict[int, MapOutputSegment] = {}
            for partition, (path, nbytes, records) in self.spill_segments[0].items():
                out_path = f"mapout/{self.task_id:05d}/p{partition:03d}"
                self.disk.rename(path, out_path)
                final[partition] = MapOutputSegment(out_path, nbytes, records)
                self.counters.inc(C.MAP_OUTPUT_BYTES, nbytes)
            return final

        final = {}
        partitions = sorted({p for seg in self.spill_segments for p in seg})
        read_total = 0
        write_total = 0
        with self.tracer.span(
            "merge", "merge", node=self.node, task=self._task
        ) as merge_span, self.counters.timer(C.T_MERGE):
            for partition in partitions:
                sources = [
                    seg[partition] for seg in self.spill_segments if partition in seg
                ]
                streams = [stream_run(self.disk, path) for path, _, _ in sources]
                read_bytes = sum(nbytes for _, nbytes, _ in sources)
                self.counters.inc(C.MERGE_READ_BYTES, read_bytes)
                read_total += read_bytes
                out_path = f"mapout/{self.task_id:05d}/p{partition:03d}"
                records = sum(r for _, _, r in sources)
                merged: Iterable[tuple[Any, Any]] = merge_sorted(streams)
                if self.job.has_combiner and self.job.config.combine_on_spill:
                    merged = self._combine_stream(merged)
                    nbytes = write_run(self.disk, out_path, merged)
                    records = -1  # recomputed below from the written run
                else:
                    nbytes = write_run(self.disk, out_path, merged)
                if records < 0:
                    records = sum(1 for _ in stream_run(self.disk, out_path))
                for path, _, _ in sources:
                    self.disk.delete(path)
                final[partition] = MapOutputSegment(out_path, nbytes, records)
                self.counters.inc(C.MAP_OUTPUT_BYTES, nbytes)
                self.counters.inc(C.MERGE_WRITE_BYTES, nbytes)
                write_total += nbytes
            merge_span.set(
                bytes_in=read_total, bytes_out=write_total, spills=len(self.spill_segments)
            )
            merge_span.set_cost(byte_cost(read_total + write_total))
        return final

    def _combine_stream(
        self, pairs: Iterator[tuple[Any, Any]]
    ) -> Iterator[tuple[Any, Any]]:
        combine_fn = self.job.combine_fn
        assert combine_fn is not None
        for key, values in group_sorted(pairs):
            vals = list(values)
            self.counters.inc(C.COMBINE_INPUT_RECORDS, len(vals))
            for out in combine_fn(key, iter(vals)):
                self.counters.inc(C.COMBINE_OUTPUT_RECORDS)
                yield out


class _BatchSortSpillBuffer(_SortSpillBuffer):
    """The columnar batch path of the map-side buffer (``config.batch``).

    Pairs fan out into one bucket per partition *at add time* — the
    partition never needs to ride along as a tuple element or be compared
    during sorting.  A spill stably sorts each bucket by key alone
    (:func:`repro.io.batch.sort_bucket`); because the tuple path's
    global ``(partition, key)`` sort is also stable, the concatenation of
    sorted buckets in ascending partition order is the *same record
    sequence*, so the spill files, counters and spans below are
    byte-identical to the tuple path's.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._buckets: list[list[tuple[Any, Any]]] = [
            [] for _ in range(self.job.config.num_reducers)
        ]

    def add(self, key: Any, value: Any) -> None:
        partition = self.partitioner(key, self.job.config.num_reducers)
        self._buckets[partition].append((key, value))
        self._bytes += estimate_size(key) + estimate_size(value) + _RECORD_OVERHEAD
        self.counters.inc(C.MAP_OUTPUT_RECORDS)
        if self._bytes >= self.job.config.map_buffer_bytes:
            self.spill()

    def spill(self) -> None:
        """Per-bucket sort + combine + write; one spill, same observables."""
        total = sum(len(bucket) for bucket in self._buckets)
        if not total:
            return
        buckets = self._buckets
        self._buckets = [[] for _ in range(self.job.config.num_reducers)]
        self._bytes = 0

        with self.tracer.span(
            "sort", "sort", node=self.node, task=self._task, cost=total
        ) as sort_span:
            sort_span.set(records=total)
            with self.counters.timer(C.T_SORT):
                for bucket in buckets:
                    if bucket:
                        sort_bucket(bucket)
        self.counters.inc(C.SORT_RECORDS, total)

        if self.job.has_combiner and self.job.config.combine_on_spill:
            buckets = self._combine_buckets(buckets, total)

        segments: dict[int, tuple[str, int, int]] = {}
        spill_bytes = 0
        with self.tracer.span(
            "spill", "spill", node=self.node, task=self._task
        ) as spill_span:
            for partition, pairs in enumerate(buckets):
                if not pairs:
                    continue
                path = f"mapspill/{self.task_id:05d}/s{self._spill_seq:03d}-p{partition:03d}"
                nbytes = write_run(self.disk, path, pairs)
                segments[partition] = (path, nbytes, len(pairs))
                self.counters.inc(C.MAP_SPILL_BYTES, nbytes)
                spill_bytes += nbytes
            spill_span.set(bytes=spill_bytes, segments=len(segments))
            spill_span.set_cost(byte_cost(spill_bytes))
        self.spill_segments.append(segments)
        self.counters.inc(C.MAP_SPILLS)
        self._spill_seq += 1

    def _combine_buckets(
        self, buckets: list[list[tuple[Any, Any]]], total: int
    ) -> list[list[tuple[Any, Any]]]:
        """Combine each sorted bucket; one span over all, like the tuple path."""
        combine_fn = self.job.combine_fn
        assert combine_fn is not None
        out_buckets: list[list[tuple[Any, Any]]] = []
        total_out = 0
        with self.tracer.span(
            "combine", "combine", node=self.node, task=self._task, cost=total
        ) as combine_span, self.counters.timer(C.T_COMBINE):
            for pairs in buckets:
                out: list[tuple[Any, Any]] = []
                i = 0
                n = len(pairs)
                while i < n:
                    key = pairs[i][0]
                    j = i + 1
                    while j < n and pairs[j][0] == key:
                        j += 1
                    values = [p[1] for p in pairs[i:j]]
                    i = j
                    self.counters.inc(C.COMBINE_INPUT_RECORDS, len(values))
                    for out_pair in combine_fn(key, iter(values)):
                        out.append(out_pair)
                        self.counters.inc(C.COMBINE_OUTPUT_RECORDS)
                out_buckets.append(out)
                total_out += len(out)
            combine_span.set(records_in=total, records_out=total_out)
        return out_buckets


class SortMergeMapTask:
    """Executes one map task over one input split (one HDFS block)."""

    def __init__(
        self,
        job: MapReduceJob,
        task_id: int,
        node: str,
        disk: LocalDisk,
        *,
        partitioner: Partitioner = hash_partitioner,
        tracer: Any = NULL_TRACER,
    ) -> None:
        self.job = job
        self.task_id = task_id
        self.node = node
        self.disk = disk
        self.partitioner = partitioner
        self.counters = Counters()
        self.tracer = tracer

    def run(self, records: Iterable[Any], *, input_bytes: int = 0) -> MapOutput:
        """Apply the map function to every record; sort, spill, finalise."""
        counters = self.counters
        counters.inc(C.MAP_TASKS)
        counters.inc(C.MAP_INPUT_BYTES, input_bytes)
        buffer_cls = (
            _BatchSortSpillBuffer if self.job.config.batch else _SortSpillBuffer
        )
        buffer = buffer_cls(
            self.job,
            self.disk,
            self.task_id,
            counters,
            self.partitioner,
            tracer=self.tracer,
            node=self.node,
        )
        map_fn = self.job.map_fn
        perf = time.perf_counter
        with self.tracer.span(
            "map", "map", node=self.node, task=f"map:{self.task_id:05d}"
        ) as map_span:
            t_map = 0.0
            n_in = 0
            for record in records:
                n_in += 1
                t0 = perf()
                emitted = list(map_fn(record))
                t_map += perf() - t0
                for key, value in emitted:
                    buffer.add(key, value)
            counters.inc(C.MAP_INPUT_RECORDS, n_in)
            counters.inc(C.T_MAP_FN, t_map)
            segments = buffer.finish()
            map_span.set_cost(max(1, n_in))
            map_span.set(records=n_in, bytes=input_bytes)
        return MapOutput(task_id=self.task_id, node=self.node, segments=segments)


class SortMergeReduceTask:
    """Executes one reduce task: multi-pass merge, then grouped reduce."""

    def __init__(
        self,
        job: MapReduceJob,
        partition: int,
        node: str,
        disk: LocalDisk,
        *,
        tracer: Any = NULL_TRACER,
    ) -> None:
        self.job = job
        self.partition = partition
        self.node = node
        self.disk = disk
        self.counters = Counters()
        self.tracer = tracer
        self._task = f"reduce:{partition:03d}"
        self._merger = MultiPassMerger(
            disk,
            f"reduce/{partition:03d}",
            factor=job.config.merge_factor,
            counters=self.counters,
            tracer=tracer,
            node=node,
            task=self._task,
        )
        self._memory: list[list[tuple[Any, Any]]] = []
        self._memory_bytes = 0

    # -- shuffle ingestion -----------------------------------------------------

    def accept_segment(self, pairs: list[tuple[Any, Any]], nbytes: int) -> None:
        """Receive one fetched (already sorted) map-output segment.

        Segments buffer in memory; when the reduce buffer fills, the
        in-memory segments are merged into one sorted run and spilled into
        the multi-pass merger (Hadoop's in-memory merge).
        """
        self._memory.append(pairs)
        self._memory_bytes += nbytes
        self.counters.inc(C.SHUFFLE_BYTES, nbytes)
        if self._memory_bytes >= self.job.config.reduce_buffer_bytes:
            self._spill_memory()

    def _spill_memory(self) -> None:
        if not self._memory:
            return
        nbytes = self._memory_bytes
        segments, self._memory = self._memory, []
        self._memory_bytes = 0
        with self.tracer.span(
            "spill",
            "spill",
            node=self.node,
            task=self._task,
            cost=byte_cost(nbytes),
            bytes=nbytes,
            segments=len(segments),
        ):
            if self.job.config.batch:
                # Concat-in-stream-order + stable key sort: same sequence
                # as the heap merge (both stable w.r.t. stream order).
                merged: Iterable[tuple[Any, Any]] = merge_segments(segments)
            else:
                merged = merge_sorted([iter(s) for s in segments])
            if self.job.has_combiner and self.job.config.combine_on_spill:
                merged = _combine_sorted_stream(self.job, merged, self.counters)
            self._merger.add_run(merged)

    # -- state transfer (parallel execution) -------------------------------------

    def export_ingested(
        self,
    ) -> tuple[list[list[tuple[Any, Any]]], int, tuple[list[tuple[str, int]], int]]:
        """Hand the ingestion-phase state to a worker-side task.

        Returns ``(memory segments, memory bytes, merger state)``; together
        with the merger's run files this is everything :meth:`run` needs.
        """
        return self._memory, self._memory_bytes, self._merger.export_state()

    def adopt_ingested(
        self,
        memory: list[list[tuple[Any, Any]]],
        memory_bytes: int,
        merger_state: tuple[list[tuple[str, int]], int],
    ) -> None:
        """Install ingestion-phase state exported by :meth:`export_ingested`."""
        self._memory = memory
        self._memory_bytes = memory_bytes
        self._merger.adopt_state(merger_state)

    # -- reduce ------------------------------------------------------------------

    def run(self) -> tuple[list[Any], int]:
        """Blocking final merge + reduce; returns (output records, groups)."""
        counters = self.counters
        counters.inc(C.REDUCE_TASKS)
        with self.tracer.span(
            "reduce", "reduce", node=self.node, task=self._task
        ) as reduce_span:
            if self._merger.run_count == 0:
                # Everything fits in memory: final merge happens purely in RAM.
                if self.job.config.batch:
                    stream: Iterable[tuple[Any, Any]] = merge_segments(self._memory)
                else:
                    stream = merge_sorted([iter(s) for s in self._memory])
            else:
                self._spill_memory()
                stream = self._merger.final_merge()

            reduce_fn = self.job.reduce_fn
            output: list[Any] = []
            groups = 0
            n_in = 0
            perf = time.perf_counter
            t_reduce = 0.0
            for key, values in group_sorted(stream):
                groups += 1
                vals = list(values)
                n_in += len(vals)
                counters.inc(C.REDUCE_INPUT_RECORDS, len(vals))
                t0 = perf()
                output.extend(reduce_fn(key, iter(vals)))
                t_reduce += perf() - t0
            counters.inc(C.T_REDUCE_FN, t_reduce)
            counters.inc(C.REDUCE_INPUT_GROUPS, groups)
            counters.inc(C.REDUCE_OUTPUT_RECORDS, len(output))
            self._merger.cleanup()
            reduce_span.set_cost(max(1, n_in))
            reduce_span.set(records=n_in, groups=groups, out_records=len(output))
        return output, groups


def _combine_sorted_stream(
    job: MapReduceJob,
    pairs: Iterable[tuple[Any, Any]],
    counters: Counters,
) -> Iterator[tuple[Any, Any]]:
    """Apply the job's combiner to a key-sorted stream (reduce-side)."""
    combine_fn = job.combine_fn
    assert combine_fn is not None
    for key, values in group_sorted(pairs):
        vals = list(values)
        counters.inc(C.COMBINE_INPUT_RECORDS, len(vals))
        with counters.timer(C.T_COMBINE):
            combined = list(combine_fn(key, iter(vals)))
        counters.inc(C.COMBINE_OUTPUT_RECORDS, len(combined))
        yield from combined

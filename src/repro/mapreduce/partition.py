"""Partitioning map output across reducers.

Partitioning must be deterministic across processes and runs (Python's
built-in ``hash`` is salted per process for strings), so the default
partitioner hashes a canonical byte encoding of the key with CRC-32.
"""

from __future__ import annotations

import pickle
import zlib
from typing import Any, Callable

__all__ = ["stable_hash", "HashPartitioner", "Partitioner"]

Partitioner = Callable[[Any, int], int]


def stable_hash(key: Any) -> int:
    """A deterministic, well-mixed 32-bit hash of any picklable key."""
    if isinstance(key, str):
        data = key.encode("utf-8")
    elif isinstance(key, bytes):
        data = key
    elif isinstance(key, int):
        data = key.to_bytes(16, "little", signed=True)
    else:
        data = pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL)
    return zlib.crc32(data)


class HashPartitioner:
    """``partition(key) = stable_hash(key) mod num_partitions``."""

    def __call__(self, key: Any, num_partitions: int) -> int:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        return stable_hash(key) % num_partitions


hash_partitioner = HashPartitioner()

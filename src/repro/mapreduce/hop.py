"""MapReduce Online (the Hadoop Online Prototype, HOP) — pipelined variant.

HOP (Condie et al., NSDI 2010) changes two things relative to stock Hadoop,
both reproduced here:

1. **Push-based pipelining.**  As a map task produces output it eagerly
   pushes sorted mini-segments to the reducers; the granularity is a
   parameter (:attr:`HOPConfig.granularity_records`).  An adaptive control
   loop applies backpressure: when a reducer's in-memory backlog exceeds a
   threshold, mappers *stage* their chunks on local disk instead and the
   staged data is delivered when the reducer catches up.
2. **Periodic snapshots.**  At configured fractions of map completion
   (25%, 50%, 75%, ...) each reducer repeats the merge over everything it
   has received so far and applies the reduce function to produce an early
   answer.  As the paper stresses, this is *not* incremental computation:
   every snapshot re-merges from scratch and re-reads any on-disk runs,
   which is exactly the extra I/O the paper attributes to HOP's design.

Crucially, HOP keeps the sort-merge group-by, so the blocking final merge
and its multi-pass I/O remain — the paper's central observation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.io.disk import LocalDisk
from repro.io.runio import stream_run, write_run
from repro.mapreduce.api import MapReduceJob
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.merge import MultiPassMerger, group_sorted, merge_sorted
from repro.mapreduce.partition import Partitioner, hash_partitioner
from repro.mapreduce.runtime import JobResult, LocalCluster
from repro.mapreduce.scheduler import WaveScheduler
from repro.hdfs.filesystem import InputSplit

__all__ = ["HOPConfig", "Snapshot", "PipelinedReduceTask", "HOPEngine"]


@dataclass(slots=True)
class HOPConfig:
    """Knobs specific to the pipelined prototype."""

    granularity_records: int = 2000
    snapshot_fractions: tuple[float, ...] = (0.25, 0.5, 0.75)
    backpressure_bytes: int = 16 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.granularity_records < 1:
            raise ValueError("granularity_records must be >= 1")
        for f in self.snapshot_fractions:
            if not 0 < f < 1:
                raise ValueError("snapshot fractions must lie in (0, 1)")
        if tuple(sorted(self.snapshot_fractions)) != tuple(self.snapshot_fractions):
            raise ValueError("snapshot fractions must be increasing")


@dataclass(frozen=True, slots=True)
class Snapshot:
    """One early answer: input fraction seen and the reduce output."""

    fraction: float
    records: tuple[Any, ...]


class PipelinedReduceTask:
    """Reduce task that accepts eagerly pushed mini-segments."""

    def __init__(
        self,
        job: MapReduceJob,
        partition: int,
        node: str,
        disk: LocalDisk,
        hop: HOPConfig,
    ) -> None:
        self.job = job
        self.partition = partition
        self.node = node
        self.disk = disk
        self.hop = hop
        self.counters = Counters()
        self._merger = MultiPassMerger(
            disk,
            f"hop-reduce/{partition:03d}",
            factor=job.config.merge_factor,
            counters=self.counters,
        )
        self._memory: list[list[tuple[Any, Any]]] = []
        self._memory_bytes = 0

    @property
    def backlog_bytes(self) -> int:
        return self._memory_bytes

    def accept_chunk(self, pairs: list[tuple[Any, Any]], nbytes: int) -> None:
        """Receive one pushed, sorted mini-segment."""
        self._memory.append(pairs)
        self._memory_bytes += nbytes
        self.counters.inc(C.SHUFFLE_BYTES, nbytes)
        if self._memory_bytes >= self.job.config.reduce_buffer_bytes:
            self._spill_memory()

    def _spill_memory(self) -> None:
        if not self._memory:
            return
        segments, self._memory = self._memory, []
        self._memory_bytes = 0
        self._merger.add_run(merge_sorted([iter(s) for s in segments]))

    # -- snapshots -----------------------------------------------------------

    def snapshot(self, fraction: float) -> Snapshot:
        """Repeat merge + reduce over all data received so far.

        On-disk runs are re-read (accounted), in-memory segments are merged
        in RAM; nothing is consumed, so the final merge still happens later
        — this duplication of work is HOP's snapshot overhead.
        """
        self.counters.inc(C.SNAPSHOTS)
        streams: list[Iterator[tuple[Any, Any]]] = [
            iter(seg) for seg in self._memory
        ]
        for path, nbytes in self._merger.run_paths:
            streams.append(stream_run(self.disk, path))
            self.counters.inc(C.MERGE_READ_BYTES, nbytes)
        with self.counters.timer(C.T_MERGE):
            merged = list(merge_sorted(streams))
        output: list[Any] = []
        with self.counters.timer(C.T_REDUCE_FN):
            for key, values in group_sorted(iter(merged)):
                output.extend(self.job.reduce_fn(key, values))
        return Snapshot(fraction=fraction, records=tuple(output))

    # -- final reduce ------------------------------------------------------------

    def run(self) -> list[Any]:
        self.counters.inc(C.REDUCE_TASKS)
        if self._merger.run_count == 0:
            stream: Iterator[tuple[Any, Any]] = merge_sorted(
                [iter(s) for s in self._memory]
            )
        else:
            self._spill_memory()
            stream = self._merger.final_merge()
        output: list[Any] = []
        groups = 0
        perf = time.perf_counter
        t_reduce = 0.0
        for key, values in group_sorted(stream):
            groups += 1
            vals = list(values)
            self.counters.inc(C.REDUCE_INPUT_RECORDS, len(vals))
            t0 = perf()
            output.extend(self.job.reduce_fn(key, iter(vals)))
            t_reduce += perf() - t0
        self.counters.inc(C.T_REDUCE_FN, t_reduce)
        self.counters.inc(C.REDUCE_INPUT_GROUPS, groups)
        self.counters.inc(C.REDUCE_OUTPUT_RECORDS, len(output))
        self._merger.cleanup()
        return output


class _PipelinedMapTask:
    """Map task that sorts and pushes mini-segments as it goes."""

    def __init__(
        self,
        job: MapReduceJob,
        task_id: int,
        node: str,
        disk: LocalDisk,
        hop: HOPConfig,
        reducers: dict[int, PipelinedReduceTask],
        partitioner: Partitioner = hash_partitioner,
    ) -> None:
        self.job = job
        self.task_id = task_id
        self.node = node
        self.disk = disk
        self.hop = hop
        self.reducers = reducers
        self.partitioner = partitioner
        self.counters = Counters()
        self.staged_bytes = 0
        self._staged: list[tuple[int, str, int, int]] = []  # (partition, path, nbytes, records)
        self._stage_seq = 0
        self.pushed_chunks = 0

    def run(self, records: Iterable[Any], *, input_bytes: int = 0) -> None:
        counters = self.counters
        counters.inc(C.MAP_TASKS)
        counters.inc(C.MAP_INPUT_BYTES, input_bytes)
        chunk: list[tuple[int, Any, Any]] = []
        map_fn = self.job.map_fn
        perf = time.perf_counter
        t_map = 0.0
        n_in = 0
        num_partitions = self.job.config.num_reducers
        for record in records:
            n_in += 1
            t0 = perf()
            emitted = list(map_fn(record))
            t_map += perf() - t0
            for key, value in emitted:
                chunk.append((self.partitioner(key, num_partitions), key, value))
                counters.inc(C.MAP_OUTPUT_RECORDS)
            if len(chunk) >= self.hop.granularity_records:
                self._emit_chunk(chunk)
                chunk = []
        if chunk:
            self._emit_chunk(chunk)
        counters.inc(C.MAP_INPUT_RECORDS, n_in)
        counters.inc(C.T_MAP_FN, t_map)
        self._drain_staged()

    def _emit_chunk(self, chunk: list[tuple[int, Any, Any]]) -> None:
        """Sort one mini-chunk and push (or stage) its partition pieces."""
        with self.counters.timer(C.T_SORT):
            chunk.sort(key=lambda e: (e[0], e[1]))
        self.counters.inc(C.SORT_RECORDS, len(chunk))

        if self.job.has_combiner and self.job.config.combine_on_spill:
            chunk = self._combine(chunk)

        start = 0
        n = len(chunk)
        while start < n:
            partition = chunk[start][0]
            end = start
            while end < n and chunk[end][0] == partition:
                end += 1
            pairs = [(k, v) for _, k, v in chunk[start:end]]
            nbytes = sum(48 for _ in pairs) + 64  # framed-size proxy for transport
            reducer = self.reducers[partition]
            if reducer.backlog_bytes >= self.hop.backpressure_bytes:
                self._stage(partition, pairs)
            else:
                reducer.accept_chunk(pairs, nbytes)
                self.pushed_chunks += 1
            start = end

    def _combine(self, chunk: list[tuple[int, Any, Any]]) -> list[tuple[int, Any, Any]]:
        combine_fn = self.job.combine_fn
        assert combine_fn is not None
        out: list[tuple[int, Any, Any]] = []
        with self.counters.timer(C.T_COMBINE):
            i = 0
            n = len(chunk)
            while i < n:
                partition, key = chunk[i][0], chunk[i][1]
                values = []
                while i < n and chunk[i][0] == partition and chunk[i][1] == key:
                    values.append(chunk[i][2])
                    i += 1
                self.counters.inc(C.COMBINE_INPUT_RECORDS, len(values))
                for k, v in combine_fn(key, iter(values)):
                    out.append((partition, k, v))
                    self.counters.inc(C.COMBINE_OUTPUT_RECORDS)
        return out

    def _stage(self, partition: int, pairs: list[tuple[Any, Any]]) -> None:
        """Backpressure: write the chunk to local disk for later delivery."""
        path = f"hop-stage/{self.task_id:05d}/c{self._stage_seq:05d}-p{partition:03d}"
        self._stage_seq += 1
        nbytes = write_run(self.disk, path, pairs)
        self.staged_bytes += nbytes
        self.counters.inc(C.MAP_SPILL_BYTES, nbytes)
        self._staged.append((partition, path, nbytes, len(pairs)))

    def _drain_staged(self) -> None:
        """Deliver staged chunks once the task finishes (reducers caught up)."""
        for partition, path, nbytes, _records in self._staged:
            pairs = list(stream_run(self.disk, path))
            self.reducers[partition].accept_chunk(pairs, nbytes)
            self.disk.delete(path)
        self._staged.clear()


class HOPEngine:
    """MapReduce Online: pipelined sort-merge with periodic snapshots."""

    name = "hop"

    def __init__(
        self,
        cluster: LocalCluster,
        *,
        hop_config: HOPConfig | None = None,
        map_slots: int = 2,
    ) -> None:
        self.cluster = cluster
        self.hop = hop_config or HOPConfig()
        self.scheduler = WaveScheduler(cluster.compute_node_names, map_slots=map_slots)

    def _read_split(self, split: InputSplit, node: str) -> tuple[Iterator[Any], int, bool]:
        hdfs = self.cluster.hdfs
        local = node in split.preferred_nodes
        data = hdfs.read_block_bytes(split.block_id, from_node=node if local else None)
        info = hdfs.namenode.file_info(split.block_id.path)
        codec = hdfs.codec(info.codec_name)
        return codec.decode(data), len(data), local

    def run(self, job: MapReduceJob) -> JobResult:
        if not job.input_path or not job.output_path:
            raise ValueError("job must set input_path and output_path")
        cluster = self.cluster
        hdfs = cluster.hdfs
        counters = Counters()
        t_start = time.perf_counter()

        splits = hdfs.input_splits(job.input_path)
        assignments, sched_stats = self.scheduler.schedule(splits)
        reducer_nodes = self.scheduler.assign_reducers(job.config.num_reducers)
        reduce_tasks = {
            p: PipelinedReduceTask(
                job, p, node, cluster.nodes[node].intermediate_disk, self.hop
            )
            for p, node in reducer_nodes.items()
        }

        network_bytes = 0
        snapshots: list[Snapshot] = []
        total_maps = len(assignments)
        next_snapshot = 0

        t_map_start = time.perf_counter()
        for done, assignment in enumerate(assignments, start=1):
            node = assignment.node
            task = _PipelinedMapTask(
                job,
                assignment.task_id,
                node,
                cluster.nodes[node].intermediate_disk,
                self.hop,
                reduce_tasks,
            )
            records, nbytes, local = self._read_split(assignment.split, node)
            if not local:
                network_bytes += nbytes
            task.run(records, input_bytes=nbytes)
            counters.merge(task.counters)

            fraction = done / total_maps
            while (
                next_snapshot < len(self.hop.snapshot_fractions)
                and fraction >= self.hop.snapshot_fractions[next_snapshot]
            ):
                target = self.hop.snapshot_fractions[next_snapshot]
                merged: list[Any] = []
                for rtask in reduce_tasks.values():
                    merged.extend(rtask.snapshot(target).records)
                snapshots.append(Snapshot(fraction=target, records=tuple(merged)))
                next_snapshot += 1
        t_map = time.perf_counter() - t_map_start

        t_reduce_start = time.perf_counter()
        hdfs.namenode.create_file(job.output_path, codec_name="binary")
        output_records = 0
        for partition, rtask in sorted(reduce_tasks.items()):
            output = rtask.run()
            output_records += len(output)
            if output:
                hdfs.append_block(
                    job.output_path, output, writer_node=reducer_nodes[partition]
                )
            counters.merge(rtask.counters)
        t_reduce = time.perf_counter() - t_reduce_start

        counters.inc(C.OUTPUT_BYTES, hdfs.file_bytes(job.output_path))
        network_bytes += int(counters[C.SHUFFLE_BYTES])
        return JobResult(
            job_name=job.name,
            engine=self.name,
            output_path=job.output_path,
            counters=counters,
            wall_time=time.perf_counter() - t_start,
            phase_times={"map": t_map, "reduce": t_reduce},
            schedule=sched_stats,
            network_bytes=network_bytes,
            output_records=output_records,
            snapshots=list(snapshots),
        )

"""MapReduce Online (the Hadoop Online Prototype, HOP) — pipelined variant.

HOP (Condie et al., NSDI 2010) changes two things relative to stock Hadoop,
both reproduced here:

1. **Push-based pipelining.**  As a map task produces output it eagerly
   pushes sorted mini-segments to the reducers; the granularity is a
   parameter (:attr:`HOPConfig.granularity_records`).  An adaptive control
   loop applies backpressure: when a reducer's in-memory backlog exceeds a
   threshold, mappers *stage* their chunks on local disk instead and the
   staged data is delivered when the reducer catches up.
2. **Periodic snapshots.**  At configured fractions of map completion
   (25%, 50%, 75%, ...) each reducer repeats the merge over everything it
   has received so far and applies the reduce function to produce an early
   answer.  As the paper stresses, this is *not* incremental computation:
   every snapshot re-merges from scratch and re-reads any on-disk runs,
   which is exactly the extra I/O the paper attributes to HOP's design.

Crucially, HOP keeps the sort-merge group-by, so the blocking final merge
and its multi-pass I/O remain — the paper's central observation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Any, Callable, Iterable, Iterator

from repro.exec import resolve_executor
from repro.io.batch import merge_segments, sort_bucket
from repro.io.disk import LocalDisk
from repro.io.runio import stream_run, write_run
from repro.mapreduce.api import MapReduceJob
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.journal import (
    K_JOB_SPEC,
    K_MAP_COMMIT,
    K_OUTPUT_COMMIT,
    K_REDUCE_COMMIT,
    K_SHUFFLE_COMMIT,
    K_TASK_GRANT,
    NULL_JOURNAL,
    emit_committed_output,
    job_fingerprint,
    output_digest,
)
from repro.mapreduce.merge import MultiPassMerger, group_sorted, merge_sorted
from repro.mapreduce.partition import Partitioner, hash_partitioner
from repro.mapreduce.recovery import (
    PartitionLog,
    RecoveryManager,
    SpeculationPolicy,
)
from repro.mapreduce.runtime import JobResult, LocalCluster
from repro.mapreduce.scheduler import WaveScheduler
from repro.obs.log import get_logger
from repro.obs.tracer import NULL_TRACER, byte_cost
from repro.hdfs.filesystem import InputSplit

__all__ = ["HOPConfig", "Snapshot", "PipelinedReduceTask", "HOPEngine"]


@dataclass(slots=True)
class HOPConfig:
    """Knobs specific to the pipelined prototype."""

    granularity_records: int = 2000
    snapshot_fractions: tuple[float, ...] = (0.25, 0.5, 0.75)
    backpressure_bytes: int = 16 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.granularity_records < 1:
            raise ValueError("granularity_records must be >= 1")
        for f in self.snapshot_fractions:
            if not 0 < f < 1:
                raise ValueError("snapshot fractions must lie in (0, 1)")
        if tuple(sorted(self.snapshot_fractions)) != tuple(self.snapshot_fractions):
            raise ValueError("snapshot fractions must be increasing")


@dataclass(frozen=True, slots=True)
class Snapshot:
    """One early answer: input fraction seen and the reduce output."""

    fraction: float
    records: tuple[Any, ...]


class PipelinedReduceTask:
    """Reduce task that accepts eagerly pushed mini-segments."""

    def __init__(
        self,
        job: MapReduceJob,
        partition: int,
        node: str,
        disk: LocalDisk,
        hop: HOPConfig,
        *,
        tracer: Any = NULL_TRACER,
    ) -> None:
        self.job = job
        self.partition = partition
        self.node = node
        self.disk = disk
        self.hop = hop
        self.counters = Counters()
        self.tracer = tracer
        self._task = f"reduce:{partition:03d}"
        self._merger = MultiPassMerger(
            disk,
            f"hop-reduce/{partition:03d}",
            factor=job.config.merge_factor,
            counters=self.counters,
            tracer=tracer,
            node=node,
            task=self._task,
        )
        self._memory: list[list[tuple[Any, Any]]] = []
        self._memory_bytes = 0

    @property
    def backlog_bytes(self) -> int:
        return self._memory_bytes

    def accept_chunk(self, pairs: list[tuple[Any, Any]], nbytes: int) -> None:
        """Receive one pushed, sorted mini-segment."""
        self._memory.append(pairs)
        self._memory_bytes += nbytes
        self.counters.inc(C.SHUFFLE_BYTES, nbytes)
        if self._memory_bytes >= self.job.config.reduce_buffer_bytes:
            self._spill_memory()

    def _spill_memory(self) -> None:
        if not self._memory:
            return
        segments, self._memory = self._memory, []
        nbytes, self._memory_bytes = self._memory_bytes, 0
        with self.tracer.span(
            "spill",
            "spill",
            node=self.node,
            task=self._task,
            cost=byte_cost(nbytes),
            bytes=nbytes,
            segments=len(segments),
        ):
            if self.job.config.batch:
                self._merger.add_run(merge_segments(segments))
            else:
                self._merger.add_run(merge_sorted([iter(s) for s in segments]))

    # -- snapshots -----------------------------------------------------------

    def snapshot(self, fraction: float) -> Snapshot:
        """Repeat merge + reduce over all data received so far.

        On-disk runs are re-read (accounted), in-memory segments are merged
        in RAM; nothing is consumed, so the final merge still happens later
        — this duplication of work is HOP's snapshot overhead.
        """
        self.counters.inc(C.SNAPSHOTS)
        with self.tracer.span(
            "snapshot", "snapshot", node=self.node, task=self._task, fraction=fraction
        ) as snap_span:
            if self.job.config.batch:
                segments: list[Iterable[tuple[Any, Any]]] = list(self._memory)
                for path, nbytes in self._merger.run_paths:
                    segments.append(list(stream_run(self.disk, path)))
                    self.counters.inc(C.MERGE_READ_BYTES, nbytes)
                with self.counters.timer(C.T_MERGE):
                    merged = merge_segments(segments)
            else:
                streams: list[Iterator[tuple[Any, Any]]] = [
                    iter(seg) for seg in self._memory
                ]
                for path, nbytes in self._merger.run_paths:
                    streams.append(stream_run(self.disk, path))
                    self.counters.inc(C.MERGE_READ_BYTES, nbytes)
                with self.counters.timer(C.T_MERGE):
                    merged = list(merge_sorted(streams))
            output: list[Any] = []
            with self.counters.timer(C.T_REDUCE_FN):
                for key, values in group_sorted(iter(merged)):
                    output.extend(self.job.reduce_fn(key, values))
            snap_span.set_cost(max(1, len(merged)))
            snap_span.set(records=len(merged), out_records=len(output))
        return Snapshot(fraction=fraction, records=tuple(output))

    # -- final reduce ------------------------------------------------------------

    def run(self) -> list[Any]:
        self.counters.inc(C.REDUCE_TASKS)
        with self.tracer.span(
            "reduce", "reduce", node=self.node, task=self._task
        ) as reduce_span:
            if self._merger.run_count == 0:
                if self.job.config.batch:
                    stream: Iterable[tuple[Any, Any]] = merge_segments(self._memory)
                else:
                    stream = merge_sorted([iter(s) for s in self._memory])
            else:
                self._spill_memory()
                stream = self._merger.final_merge()
            output: list[Any] = []
            groups = 0
            n_in = 0
            perf = time.perf_counter
            t_reduce = 0.0
            for key, values in group_sorted(stream):
                groups += 1
                vals = list(values)
                n_in += len(vals)
                self.counters.inc(C.REDUCE_INPUT_RECORDS, len(vals))
                t0 = perf()
                output.extend(self.job.reduce_fn(key, iter(vals)))
                t_reduce += perf() - t0
            self.counters.inc(C.T_REDUCE_FN, t_reduce)
            self.counters.inc(C.REDUCE_INPUT_GROUPS, groups)
            self.counters.inc(C.REDUCE_OUTPUT_RECORDS, len(output))
            reduce_span.set_cost(max(1, n_in))
            reduce_span.set(records=n_in, groups=groups, out_records=len(output))
        self._merger.cleanup()
        return output


_PARTITION_KEY = itemgetter(0, 1)


class _PipelinedMapTask:
    """Map task that sorts mini-segments and hands them to an emit router.

    The task itself is a pure function of its input: every sorted partition
    piece goes to ``emit(partition, pairs, nbytes)``.  Whether a piece is
    pushed to a live reducer, staged under backpressure, or buffered until a
    fault-plan attempt survives is the router's business — which is what
    lets the whole task run on a worker process while the coordinator keeps
    all scheduling decisions.
    """

    def __init__(
        self,
        job: MapReduceJob,
        task_id: int,
        node: str,
        disk: LocalDisk,
        hop: HOPConfig,
        emit: Callable[[int, list[tuple[Any, Any]], int], None] | None,
        partitioner: Partitioner = hash_partitioner,
        tracer: Any = NULL_TRACER,
    ) -> None:
        self.job = job
        self.task_id = task_id
        self.node = node
        self.disk = disk
        self.hop = hop
        self.emit = emit
        self.partitioner = partitioner
        self.counters = Counters()
        self.tracer = tracer
        self._task = f"map:{task_id:05d}"

    def run(self, records: Iterable[Any], *, input_bytes: int = 0) -> None:
        counters = self.counters
        counters.inc(C.MAP_TASKS)
        counters.inc(C.MAP_INPUT_BYTES, input_bytes)
        with self.tracer.span(
            "map", "map", node=self.node, task=self._task
        ) as map_span:
            if self.job.config.batch:
                n_in, t_map = self._run_batch(records)
            else:
                n_in, t_map = self._run_tuple(records)
            counters.inc(C.MAP_INPUT_RECORDS, n_in)
            counters.inc(C.T_MAP_FN, t_map)
            map_span.set_cost(max(1, n_in))
            map_span.set(records=n_in, bytes=input_bytes)

    def _run_tuple(self, records: Iterable[Any]) -> tuple[int, float]:
        counters = self.counters
        chunk: list[tuple[int, Any, Any]] = []
        map_fn = self.job.map_fn
        perf = time.perf_counter
        t_map = 0.0
        n_in = 0
        num_partitions = self.job.config.num_reducers
        for record in records:
            n_in += 1
            t0 = perf()
            emitted = list(map_fn(record))
            t_map += perf() - t0
            for key, value in emitted:
                chunk.append((self.partitioner(key, num_partitions), key, value))
                counters.inc(C.MAP_OUTPUT_RECORDS)
            if len(chunk) >= self.hop.granularity_records:
                self._emit_chunk(chunk)
                chunk = []
        if chunk:
            self._emit_chunk(chunk)
        return n_in, t_map

    def _run_batch(self, records: Iterable[Any]) -> tuple[int, float]:
        """Batch path: fan out at append time, per-bucket sorts per chunk.

        Chunk boundaries match the tuple path exactly — the granularity
        check runs after each input record, on the same pending-pair
        count — so spill/emit points and combiner group boundaries are
        identical.
        """
        counters = self.counters
        map_fn = self.job.map_fn
        partitioner = self.partitioner
        perf = time.perf_counter
        t_map = 0.0
        n_in = 0
        num_partitions = self.job.config.num_reducers
        buckets: list[list[tuple[Any, Any]]] = [[] for _ in range(num_partitions)]
        appends = [b.append for b in buckets]
        pending = 0
        granularity = self.hop.granularity_records
        for record in records:
            n_in += 1
            t0 = perf()
            emitted = list(map_fn(record))
            t_map += perf() - t0
            for key, value in emitted:
                appends[partitioner(key, num_partitions)]((key, value))
                counters.inc(C.MAP_OUTPUT_RECORDS)
                pending += 1
            if pending >= granularity:
                self._emit_buckets(buckets, pending)
                buckets = [[] for _ in range(num_partitions)]
                appends = [b.append for b in buckets]
                pending = 0
        if pending:
            self._emit_buckets(buckets, pending)
        return n_in, t_map

    def _emit_chunk(self, chunk: list[tuple[int, Any, Any]]) -> None:
        """Sort one mini-chunk and emit its partition pieces in order."""
        with self.tracer.span(
            "sort",
            "sort",
            node=self.node,
            task=self._task,
            cost=max(1, len(chunk)),
            records=len(chunk),
        ):
            with self.counters.timer(C.T_SORT):
                chunk.sort(key=_PARTITION_KEY)
        self.counters.inc(C.SORT_RECORDS, len(chunk))

        if self.job.has_combiner and self.job.config.combine_on_spill:
            chunk = self._combine(chunk)

        start = 0
        n = len(chunk)
        while start < n:
            partition = chunk[start][0]
            end = start
            while end < n and chunk[end][0] == partition:
                end += 1
            pairs = [(k, v) for _, k, v in chunk[start:end]]
            nbytes = 48 * len(pairs) + 64  # framed-size proxy for transport
            self.emit(partition, pairs, nbytes)
            start = end

    def _combine(self, chunk: list[tuple[int, Any, Any]]) -> list[tuple[int, Any, Any]]:
        combine_fn = self.job.combine_fn
        assert combine_fn is not None
        out: list[tuple[int, Any, Any]] = []
        with self.tracer.span(
            "combine",
            "combine",
            node=self.node,
            task=self._task,
            cost=max(1, len(chunk)),
        ) as comb_span:
            with self.counters.timer(C.T_COMBINE):
                i = 0
                n = len(chunk)
                while i < n:
                    partition, key = chunk[i][0], chunk[i][1]
                    values = []
                    while i < n and chunk[i][0] == partition and chunk[i][1] == key:
                        values.append(chunk[i][2])
                        i += 1
                    self.counters.inc(C.COMBINE_INPUT_RECORDS, len(values))
                    for k, v in combine_fn(key, iter(values)):
                        out.append((partition, k, v))
                        self.counters.inc(C.COMBINE_OUTPUT_RECORDS)
            comb_span.set(records_in=len(chunk), records_out=len(out))
        return out

    def _emit_buckets(
        self, buckets: list[list[tuple[Any, Any]]], total: int
    ) -> None:
        """Batch twin of :meth:`_emit_chunk`: per-bucket sorts, same spans.

        One "sort" span covers all bucket sorts (cost and record count
        equal the tuple path's single chunk sort); emission walks buckets
        in ascending partition order, which is the order the tuple path's
        ``(partition, key)``-sorted chunk yields its partition slices.
        """
        with self.tracer.span(
            "sort",
            "sort",
            node=self.node,
            task=self._task,
            cost=max(1, total),
            records=total,
        ):
            with self.counters.timer(C.T_SORT):
                for bucket in buckets:
                    if bucket:
                        sort_bucket(bucket)
        self.counters.inc(C.SORT_RECORDS, total)

        if self.job.has_combiner and self.job.config.combine_on_spill:
            buckets = self._combine_buckets(buckets, total)

        for partition, pairs in enumerate(buckets):
            if not pairs:
                continue
            nbytes = 48 * len(pairs) + 64  # framed-size proxy for transport
            self.emit(partition, pairs, nbytes)

    def _combine_buckets(
        self, buckets: list[list[tuple[Any, Any]]], total: int
    ) -> list[list[tuple[Any, Any]]]:
        combine_fn = self.job.combine_fn
        assert combine_fn is not None
        out_buckets: list[list[tuple[Any, Any]]] = []
        total_out = 0
        with self.tracer.span(
            "combine",
            "combine",
            node=self.node,
            task=self._task,
            cost=max(1, total),
        ) as comb_span:
            with self.counters.timer(C.T_COMBINE):
                for bucket in buckets:
                    out: list[tuple[Any, Any]] = []
                    i = 0
                    n = len(bucket)
                    while i < n:
                        key = bucket[i][0]
                        values = []
                        while i < n and bucket[i][0] == key:
                            values.append(bucket[i][1])
                            i += 1
                        self.counters.inc(C.COMBINE_INPUT_RECORDS, len(values))
                        for k, v in combine_fn(key, iter(values)):
                            out.append((k, v))
                            self.counters.inc(C.COMBINE_OUTPUT_RECORDS)
                    out_buckets.append(out)
                    total_out += len(out)
            comb_span.set(records_in=total, records_out=total_out)
        return out_buckets

class _FrozenStageRouter:
    """Fault-path emit router: buffer everything, stage by frozen backlogs.

    With a fault plan, a map attempt must not push directly: a killed
    attempt's chunks would be unrecallable, and observing *live* reducer
    state would leak coordinator state into the worker.  The router makes
    backpressure decisions against backlog sizes frozen at attempt start,
    stages over-pressure chunks on the task's (shadow) disk, and exposes
    everything in :attr:`delivered` — pushes in emit order, then drained
    staged chunks — for the coordinator to log and deliver after the
    attempt survives.
    """

    def __init__(
        self,
        task_id: int,
        disk: LocalDisk,
        counters: Counters,
        backpressure_bytes: int,
        frozen_backlogs: dict[int, int],
    ) -> None:
        self.task_id = task_id
        self.disk = disk
        self.counters = counters
        self.backpressure_bytes = backpressure_bytes
        self.frozen_backlogs = frozen_backlogs
        self.delivered: dict[int, list[tuple[list[tuple[Any, Any]], int]]] = {
            p: [] for p in sorted(frozen_backlogs)
        }
        self._staged: list[tuple[int, str, int]] = []  # (partition, path, nbytes)
        self._seq = 0

    def emit(self, partition: int, pairs: list[tuple[Any, Any]], nbytes: int) -> None:
        if self.frozen_backlogs[partition] >= self.backpressure_bytes:
            path = f"hop-stage/{self.task_id:05d}/c{self._seq:05d}-p{partition:03d}"
            self._seq += 1
            written = write_run(self.disk, path, pairs)
            self.counters.inc(C.MAP_SPILL_BYTES, written)
            self._staged.append((partition, path, written))
        else:
            self.delivered[partition].append((pairs, nbytes))

    def drain(self) -> None:
        """Re-read staged chunks (in stage order) into the delivery lists."""
        for partition, path, nbytes in self._staged:
            pairs = list(stream_run(self.disk, path))
            self.delivered[partition].append((pairs, nbytes))
            self.disk.delete(path)
        self._staged.clear()


class HOPEngine:
    """MapReduce Online: pipelined sort-merge with periodic snapshots.

    With a ``fault_plan``, pushes are buffered per map attempt and, on
    success, appended to a 2-way replicated
    :class:`~repro.mapreduce.recovery.PartitionLog` before delivery — the
    durability a push architecture needs because map output never stays at
    the mappers.  Killed map/reduce attempts retry through the shared
    :class:`~repro.mapreduce.recovery.RecoveryManager` loop; a lost reduce
    task (killed attempt or node crash) is rebuilt by replaying its
    partition's log in delivery order.
    """

    name = "hop"

    def __init__(
        self,
        cluster: LocalCluster,
        *,
        hop_config: HOPConfig | None = None,
        map_slots: int = 2,
        fault_plan: FaultPlan | None = None,
        speculation: SpeculationPolicy | None = None,
        executor: Any = None,
        tracer: Any = None,
        journal: Any = None,
    ) -> None:
        self.cluster = cluster
        self.hop = hop_config or HOPConfig()
        self.scheduler = WaveScheduler(cluster.compute_node_names, map_slots=map_slots)
        self.fault_plan = fault_plan
        self.speculation = speculation
        self.executor = resolve_executor(executor)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.journal = journal if journal is not None else NULL_JOURNAL

    def _read_block(self, split: InputSplit, node: str) -> tuple[bytes, bool]:
        hdfs = self.cluster.hdfs
        local = node in split.preferred_nodes
        data = hdfs.read_block_bytes(split.block_id, from_node=node if local else None)
        return data, local

    # -- fault tolerance ------------------------------------------------------

    def _log_replicas(self, node: str) -> list[tuple[str, LocalDisk]]:
        """Replica disks for a reducer's log: its own node plus the next."""
        names = self.cluster.compute_node_names
        chosen = [node]
        if len(names) > 1:
            chosen.append(names[(names.index(node) + 1) % len(names)])
        return [(n, self.cluster.nodes[n].intermediate_disk) for n in chosen]

    def _deliver_live(
        self,
        task_id: int,
        node: str,
        chunks: list[tuple[int, list[tuple[Any, Any]], int]],
        reduce_tasks: dict[int, PipelinedReduceTask],
        counters: Counters,
    ) -> None:
        """Replay one live map task's emissions against real reducer state.

        The worker returned the ordered emission stream; pushing versus
        staging depends on live backlogs (which earlier deliveries mutate),
        so the decision — and the staging I/O on the mapper's real disk —
        happens here, in deterministic task order.
        """
        disk = self.cluster.nodes[node].intermediate_disk
        chunk_hist = self.tracer.metrics.histogram("push.chunk.bytes")
        with self.tracer.span(
            "push",
            "shuffle",
            node=node,
            task=f"map:{task_id:05d}",
            partitions=sorted({p for p, _, _ in chunks}),
        ) as push_span:
            staged: list[tuple[int, str, int]] = []
            seq = 0
            pushed_bytes = 0
            for partition, pairs, nbytes in chunks:
                chunk_hist.observe(nbytes)
                reducer = reduce_tasks[partition]
                if reducer.backlog_bytes >= self.hop.backpressure_bytes:
                    path = f"hop-stage/{task_id:05d}/c{seq:05d}-p{partition:03d}"
                    seq += 1
                    written = write_run(disk, path, pairs)
                    counters.inc(C.MAP_SPILL_BYTES, written)
                    staged.append((partition, path, written))
                else:
                    pushed_bytes += nbytes
                    reducer.accept_chunk(pairs, nbytes)
            # Staged chunks are delivered once the task finishes (reducers
            # caught up), at their on-disk framed size.
            staged_bytes = 0
            for partition, path, written in staged:
                pairs = list(stream_run(disk, path))
                staged_bytes += written
                reduce_tasks[partition].accept_chunk(pairs, written)
                disk.delete(path)
            push_span.set_cost(byte_cost(pushed_bytes + staged_bytes))
            push_span.set(bytes_pushed=pushed_bytes, bytes_staged=staged_bytes)

    def _run_map_with_recovery(
        self,
        job: MapReduceJob,
        recovery: RecoveryManager,
        session: Any,
        assignment: Any,
        live: list[str],
        reduce_tasks: dict[int, PipelinedReduceTask],
        logs: dict[int, PartitionLog],
        counters: Counters,
        committed: frozenset[int] = frozenset(),
    ) -> int:
        """Run one map task under a fault plan, buffering pushes until success."""
        from repro.exec.kernels import HopMapSpec

        cluster = self.cluster
        network_bytes = 0
        self.journal.append(
            K_TASK_GRANT, task=assignment.task_id, node=assignment.node
        )

        def attempt(node: str) -> dict[int, list[tuple[list[tuple[Any, Any]], int]]]:
            nonlocal network_bytes
            data, local = self._read_block(assignment.split, node)
            if not local:
                network_bytes += len(data)
            disk = cluster.nodes[node].intermediate_disk
            spec = HopMapSpec(
                assignment.task_id,
                node,
                data,
                disk.profile,
                disk.name,
                frozen_backlogs={
                    p: rt.backlog_bytes for p, rt in reduce_tasks.items()
                },
            )
            res = session.run_one("hop_map", spec)
            disk.absorb(res.disk)
            counters.merge(res.counters)
            self.tracer.absorb(res.trace)
            return res.by_partition

        def discard(
            _node: str, by_partition: dict[int, list[tuple[list[tuple[Any, Any]], int]]]
        ) -> None:
            # A dead or losing attempt's buffered chunks never reached the
            # reducers; dropping them is the whole cleanup.
            for chunks in by_partition.values():
                chunks.clear()

        node, by_partition = recovery.run_map_task(
            assignment.task_id,
            assignment.node,
            live,
            assignment.split.nbytes,
            attempt,
            discard,
        )
        delivered_bytes = 0
        for partition in sorted(by_partition):
            if partition in committed:
                continue  # journaled output; the reducer never runs
            for pairs, nbytes in by_partition[partition]:
                counters.inc(C.STAGED_OUTPUT_BYTES, nbytes)
                logs[partition].append(pairs, nbytes)
                reduce_tasks[partition].accept_chunk(pairs, nbytes)
                delivered_bytes += nbytes
        self.journal.append(
            K_MAP_COMMIT, task=assignment.task_id, node=node, nbytes=delivered_bytes
        )
        return network_bytes

    def _rebuild_reduce_task(
        self,
        job: MapReduceJob,
        partition: int,
        node: str,
        log: PartitionLog,
        counters: Counters,
    ) -> PipelinedReduceTask:
        """Reconstruct a lost reduce task by replaying its delivery log."""
        disk = self.cluster.nodes[node].intermediate_disk
        disk.delete_prefix(f"hop-reduce/{partition:03d}")
        rtask = PipelinedReduceTask(
            job, partition, node, disk, self.hop, tracer=self.tracer
        )
        replayed = 0
        nbytes_replayed = 0
        with self.tracer.span(
            "replay", "recovery", node=node, task=f"reduce:{partition:03d}"
        ) as replay_span:
            for _seq, pairs, nbytes in log.replay():
                rtask.accept_chunk(pairs, nbytes)
                replayed += len(pairs)
                nbytes_replayed += nbytes
                counters.inc(C.REPLAYED_RECORDS, len(pairs))
                counters.inc(C.BYTES_RESHUFFLED, nbytes)
            replay_span.set_cost(max(1, byte_cost(nbytes_replayed)))
            replay_span.set(records=replayed, bytes=nbytes_replayed)
        return rtask

    def _handle_node_crash(
        self,
        crashed: str,
        *,
        job: MapReduceJob,
        live: list[str],
        reducer_nodes: dict[int, str],
        reduce_tasks: dict[int, PipelinedReduceTask],
        logs: dict[int, PartitionLog],
        counters: Counters,
    ) -> None:
        """React to losing a whole node: re-replicate, rebuild its reducers."""
        counters.inc(C.NODE_CRASHES)
        self.tracer.event("node.crash", "recovery", node=crashed)
        live.remove(crashed)
        if not live:
            raise RuntimeError(f"node crash of {crashed} left no live compute nodes")
        self.cluster.wipe_node(crashed)
        report = self.cluster.hdfs.handle_node_loss(crashed)
        if report.blocks_rereplicated:
            counters.inc(C.BLOCKS_REREPLICATED, report.blocks_rereplicated)
            counters.inc(C.BYTES_REREPLICATED, report.bytes_rereplicated)

        for partition in sorted(logs):
            log = logs[partition]
            holders = [n for n, _ in log.replicas]
            if crashed in holders:
                candidates = [n for n in live if n not in holders]
                if candidates:
                    new_node = candidates[0]
                    log.replace_replica(
                        crashed, new_node, self.cluster.nodes[new_node].intermediate_disk
                    )

        for partition in sorted(reducer_nodes):
            if reducer_nodes[partition] != crashed:
                continue
            dead = reduce_tasks[partition]
            counters.merge(dead.counters)  # its work still happened
            counters.inc(C.TASKS_RERUN)
            new_node = live[partition % len(live)]
            reducer_nodes[partition] = new_node
            reduce_tasks[partition] = self._rebuild_reduce_task(
                job, partition, new_node, logs[partition], counters
            )

    def run(self, job: MapReduceJob) -> JobResult:
        from repro.exec.kernels import HopMapSpec

        if not job.input_path or not job.output_path:
            raise ValueError("job must set input_path and output_path")
        cluster = self.cluster
        hdfs = cluster.hdfs
        counters = Counters()
        t_start = time.perf_counter()

        splits = hdfs.input_splits(job.input_path)
        assignments, sched_stats = self.scheduler.schedule(splits)
        reducer_nodes = self.scheduler.assign_reducers(job.config.num_reducers)

        # ---- journal resume protocol ----
        journal = self.journal
        appends0, jbytes0 = journal.appends, journal.bytes_written
        committed: dict[int, tuple[Any, ...]] = {}
        if journal.enabled:
            state = journal.resume_state()
            fingerprint = job_fingerprint(job, self.name)
            state.check_spec(fingerprint)
            if state.truncated_bytes:
                self.tracer.event(
                    "journal.truncated", "journal", bytes=state.truncated_bytes
                )
            done_commits = state.output_commits > 0
            if done_commits or state.complete(job.config.num_reducers):
                if not done_commits:
                    journal.append(
                        K_JOB_SPEC, spec=fingerprint, engine=self.name, job=job.name
                    )
                output_records = emit_committed_output(
                    hdfs, job, reducer_nodes, state, counters, self.tracer
                )
                if not done_commits:
                    journal.append(
                        K_OUTPUT_COMMIT,
                        path=job.output_path,
                        records=output_records,
                        digest=output_digest(hdfs, job.output_path),
                    )
                journal.finalize()
                counters.inc(C.JOURNAL_APPENDS, journal.appends - appends0)
                counters.inc(C.JOURNAL_BYTES, journal.bytes_written - jbytes0)
                return JobResult(
                    job_name=job.name,
                    engine=self.name,
                    output_path=job.output_path,
                    counters=counters,
                    wall_time=time.perf_counter() - t_start,
                    phase_times={"map": 0.0, "reduce": 0.0},
                    schedule=sched_stats,
                    network_bytes=0,
                    output_records=output_records,
                    trace=self.tracer if self.tracer.enabled else None,
                )
            journal.append(
                K_JOB_SPEC, spec=fingerprint, engine=self.name, job=job.name
            )
            committed = dict(state.reduce_commits)
            if committed:
                counters.inc(C.JOURNAL_REPLAYED_COMMITS, len(committed))
                self.tracer.event(
                    "journal.resume",
                    "journal",
                    commits=len(committed),
                    checkpoints=len(state.checkpoints),
                )

        reduce_tasks = {
            p: PipelinedReduceTask(
                job,
                p,
                node,
                cluster.nodes[node].intermediate_disk,
                self.hop,
                tracer=self.tracer,
            )
            for p, node in reducer_nodes.items()
        }
        live = list(cluster.compute_node_names)
        recovery = RecoveryManager(
            self.fault_plan, counters, speculation=self.speculation, tracer=self.tracer
        )
        logs: dict[int, PartitionLog] = {}
        if self.fault_plan is not None:
            for p, node in reducer_nodes.items():
                logs[p] = PartitionLog(p, self._log_replicas(node), counters)
            if self.fault_plan.has_disk_faults:
                for name in sorted(cluster.compute_node_names):
                    cluster.nodes[name].intermediate_disk.fault_injector = (
                        self.fault_plan
                    )

        network_bytes = 0
        snapshots: list[Snapshot] = []
        total_maps = len(assignments)
        next_snapshot = 0

        def maybe_snapshot(done: int) -> None:
            nonlocal next_snapshot
            fraction = done / total_maps
            while (
                next_snapshot < len(self.hop.snapshot_fractions)
                and fraction >= self.hop.snapshot_fractions[next_snapshot]
            ):
                target = self.hop.snapshot_fractions[next_snapshot]
                merged: list[Any] = []
                for rtask in reduce_tasks.values():
                    merged.extend(rtask.snapshot(target).records)
                snapshots.append(Snapshot(fraction=target, records=tuple(merged)))
                next_snapshot += 1

        codec = hdfs.codec(hdfs.namenode.file_info(job.input_path).codec_name)
        context = {
            "job": job,
            "hop": self.hop,
            "codec": codec,
            "trace": self.tracer.enabled,
        }
        c_map0 = self.tracer.clock
        t_map_start = time.perf_counter()
        with self.executor.session(context) as session:
            if self.fault_plan is None:
                done = 0
                idx = 0
                while idx < len(assignments):
                    batch = assignments[idx : idx + session.max_batch]
                    idx += len(batch)
                    specs = []
                    for a in batch:
                        journal.append(K_TASK_GRANT, task=a.task_id, node=a.node)
                        data, local = self._read_block(a.split, a.node)
                        if not local:
                            network_bytes += len(data)
                        disk = cluster.nodes[a.node].intermediate_disk
                        specs.append(
                            HopMapSpec(a.task_id, a.node, data, disk.profile, disk.name)
                        )
                    for a, res in zip(batch, session.run_batch("hop_map", specs)):
                        counters.merge(res.counters)
                        self.tracer.absorb(res.trace)
                        chunks = [c for c in res.chunks if c[0] not in committed]
                        self._deliver_live(
                            a.task_id, a.node, chunks, reduce_tasks, counters
                        )
                        journal.append(
                            K_MAP_COMMIT,
                            task=a.task_id,
                            node=a.node,
                            nbytes=sum(c[2] for c in chunks),
                        )
                        done += 1
                        maybe_snapshot(done)
            else:
                for done, assignment in enumerate(assignments, start=1):
                    network_bytes += self._run_map_with_recovery(
                        job,
                        recovery,
                        session,
                        assignment,
                        live,
                        reduce_tasks,
                        logs,
                        counters,
                        frozenset(committed),
                    )
                    for crashed in self.fault_plan.crashes_due(done):
                        with counters.timer(C.T_RECOVERY):
                            self._handle_node_crash(
                                crashed,
                                job=job,
                                live=live,
                                reducer_nodes=reducer_nodes,
                                reduce_tasks=reduce_tasks,
                                logs=logs,
                                counters=counters,
                            )
                    maybe_snapshot(done)
        t_map = time.perf_counter() - t_map_start
        self.tracer.add_span(
            "map-phase", "phase", c_map0, self.tracer.clock, wall_s=t_map
        )
        get_logger("hop").info(
            "map.phase.done",
            tasks=total_maps,
            snapshots=len(snapshots),
            wall_ms=t_map * 1e3,
        )
        for partition in sorted(reduce_tasks):
            if partition not in committed:
                journal.append(K_SHUFFLE_COMMIT, partition=partition)

        c_reduce0 = self.tracer.clock
        t_reduce_start = time.perf_counter()
        hdfs.namenode.create_file(job.output_path, codec_name="binary")
        output_records = 0
        for partition in sorted(reduce_tasks):
            if partition in committed:
                output = list(committed[partition])
                output_records += len(output)
                if output:
                    hdfs.append_block(
                        job.output_path, output, writer_node=reducer_nodes[partition]
                    )
                continue

            def attempt(attempt_idx: int, partition: int = partition) -> list[Any]:
                if attempt_idx > 0:
                    # The previous attempt died mid-reduce: rebuild its
                    # state on the next live node by replaying the log.
                    dead = reduce_tasks[partition]
                    counters.merge(dead.counters)  # its work still happened
                    counters.inc(C.TASKS_RERUN)
                    new_node = live[(partition + attempt_idx) % len(live)]
                    reducer_nodes[partition] = new_node
                    with counters.timer(C.T_RECOVERY):
                        reduce_tasks[partition] = self._rebuild_reduce_task(
                            job, partition, new_node, logs[partition], counters
                        )
                return reduce_tasks[partition].run()

            output = recovery.run_reduce_task(partition, attempt)
            counters.merge(reduce_tasks[partition].counters)
            journal.append(K_REDUCE_COMMIT, partition=partition, records=tuple(output))
            if journal.enabled:
                self.tracer.event(
                    "journal.commit",
                    "journal",
                    task=f"reduce:{partition:03d}",
                    records=len(output),
                )
            output_records += len(output)
            if output:
                hdfs.append_block(
                    job.output_path, output, writer_node=reducer_nodes[partition]
                )
        t_reduce = time.perf_counter() - t_reduce_start
        self.tracer.add_span(
            "reduce-phase", "phase", c_reduce0, self.tracer.clock, wall_s=t_reduce
        )
        get_logger("hop").info(
            "reduce.phase.done",
            partitions=len(reduce_tasks),
            records=output_records,
            wall_ms=t_reduce * 1e3,
        )

        for partition in sorted(logs):
            logs[partition].cleanup()

        counters.inc(C.OUTPUT_BYTES, hdfs.file_bytes(job.output_path))
        if journal.enabled:
            journal.append(
                K_OUTPUT_COMMIT,
                path=job.output_path,
                records=output_records,
                digest=output_digest(hdfs, job.output_path),
            )
            journal.finalize()
            counters.inc(C.JOURNAL_APPENDS, journal.appends - appends0)
            counters.inc(C.JOURNAL_BYTES, journal.bytes_written - jbytes0)
        network_bytes += int(counters[C.SHUFFLE_BYTES])
        return JobResult(
            job_name=job.name,
            engine=self.name,
            output_path=job.output_path,
            counters=counters,
            wall_time=time.perf_counter() - t_start,
            phase_times={"map": t_map, "reduce": t_reduce},
            schedule=sched_stats,
            network_bytes=network_bytes,
            output_records=output_records,
            snapshots=list(snapshots),
            trace=self.tracer if self.tracer.enabled else None,
        )

"""Hadoop-like MapReduce substrate: the paper's sort-merge baselines.

* :class:`~repro.mapreduce.runtime.HadoopEngine` — stock Hadoop: sort-spill
  map output, pull shuffle, multi-pass merge, blocking reduce.
* :class:`~repro.mapreduce.hop.HOPEngine` — MapReduce Online: push-based
  pipelining and periodic snapshots layered over the same sort-merge core.

Both execute real :class:`~repro.mapreduce.api.MapReduceJob` programs over
the in-process cluster, with full byte/time accounting.
"""

from repro.mapreduce.api import CombineFn, JobConfig, MapFn, MapReduceJob, ReduceFn
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.faults import FaultPlan, TaskFailure
from repro.mapreduce.hop import HOPConfig, HOPEngine, Snapshot
from repro.mapreduce.merge import MultiPassMerger, group_sorted, merge_sorted
from repro.mapreduce.partition import HashPartitioner, hash_partitioner, stable_hash
from repro.mapreduce.recovery import (
    CheckpointStore,
    FetchRetryPolicy,
    PartitionLog,
    RecoveryManager,
    SpeculationPolicy,
    StragglerDetector,
    TaskLineage,
)
from repro.mapreduce.runtime import ClusterNode, HadoopEngine, JobResult, LocalCluster
from repro.mapreduce.scheduler import ScheduleStats, TaskAssignment, WaveScheduler
from repro.mapreduce.shuffle import FetchedSegment, FetchFailedError, ShuffleService
from repro.mapreduce.sortmerge import (
    MapOutput,
    MapOutputSegment,
    SortMergeMapTask,
    SortMergeReduceTask,
)

__all__ = [
    "MapReduceJob",
    "JobConfig",
    "MapFn",
    "ReduceFn",
    "CombineFn",
    "Counters",
    "C",
    "FaultPlan",
    "TaskFailure",
    "merge_sorted",
    "group_sorted",
    "MultiPassMerger",
    "stable_hash",
    "HashPartitioner",
    "hash_partitioner",
    "WaveScheduler",
    "TaskAssignment",
    "ScheduleStats",
    "ShuffleService",
    "FetchedSegment",
    "FetchFailedError",
    "FetchRetryPolicy",
    "SpeculationPolicy",
    "StragglerDetector",
    "TaskLineage",
    "RecoveryManager",
    "PartitionLog",
    "CheckpointStore",
    "SortMergeMapTask",
    "SortMergeReduceTask",
    "MapOutput",
    "MapOutputSegment",
    "LocalCluster",
    "ClusterNode",
    "HadoopEngine",
    "JobResult",
    "HOPEngine",
    "HOPConfig",
    "Snapshot",
]

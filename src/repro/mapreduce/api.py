"""The MapReduce programming model: user-facing job specification.

This mirrors the two-function API the paper describes in §II:

* ``map(record) -> iterable of (key, value)``
* ``reduce(key, values) -> iterable of output records``

plus the optional ``combine`` function applied after map (and, in the
baseline, again when reduce-side buffers fill).  A combine function must be
algebraically safe: commutative and associative over values of the same
key, emitting ``(key, value)`` pairs of the same value type it consumes.

The same :class:`MapReduceJob` object runs unmodified on every engine in
this repository — the sort-merge baseline, MapReduce Online, and the
hash-based one-pass engine — which is exactly the portability argument the
paper makes for keeping the MapReduce API while replacing its
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

__all__ = ["MapFn", "ReduceFn", "CombineFn", "JobConfig", "MapReduceJob"]

MapFn = Callable[[Any], Iterable[tuple[Any, Any]]]
ReduceFn = Callable[[Any, Iterator[Any]], Iterable[Any]]
CombineFn = Callable[[Any, Iterator[Any]], Iterable[tuple[Any, Any]]]


@dataclass(slots=True)
class JobConfig:
    """Engine tuning knobs, named after their Hadoop equivalents.

    Parameters
    ----------
    num_reducers:
        Number of reduce tasks (``r`` in the paper; 40 in its cluster runs).
    map_buffer_bytes:
        Map-side output buffer (``io.sort.mb``); a full buffer triggers a
        sort-and-spill in the baseline or a hash-partition flush in the
        one-pass engine.
    merge_factor:
        ``F``, the fan-in of the multi-pass merge (``io.sort.factor``).
    reduce_buffer_bytes:
        Shuffle buffer on each reducer; overflow spills sorted runs (or
        hash partitions) to the reducer's local disk.
    combine_on_spill:
        Apply the combiner when spilling, as Hadoop does.
    batch:
        Use the columnar batch kernel path (per-batch partition fanout,
        per-bucket sorts, concat-and-stable-sort merges; see
        ``repro.io.batch`` and docs/PERFORMANCE.md).  Output is
        byte-identical to the tuple path; only CPU cost changes.
    """

    num_reducers: int = 2
    map_buffer_bytes: int = 8 * 1024 * 1024
    merge_factor: int = 10
    reduce_buffer_bytes: int = 32 * 1024 * 1024
    combine_on_spill: bool = True
    batch: bool = False

    def __post_init__(self) -> None:
        if self.num_reducers < 1:
            raise ValueError("num_reducers must be >= 1")
        if self.merge_factor < 2:
            raise ValueError("merge_factor must be >= 2")
        if self.map_buffer_bytes <= 0 or self.reduce_buffer_bytes <= 0:
            raise ValueError("buffer sizes must be positive")


@dataclass(slots=True)
class MapReduceJob:
    """A complete analytical job: functions plus configuration.

    ``sort_comparable_keys`` must be True for the sort-merge baseline (its
    group-by orders keys); the hash engines only require hashable keys.
    """

    name: str
    map_fn: MapFn
    reduce_fn: ReduceFn
    combine_fn: CombineFn | None = None
    config: JobConfig = field(default_factory=JobConfig)
    input_path: str = ""
    output_path: str = ""

    def __post_init__(self) -> None:
        if not callable(self.map_fn) or not callable(self.reduce_fn):
            raise TypeError("map_fn and reduce_fn must be callable")
        if self.combine_fn is not None and not callable(self.combine_fn):
            raise TypeError("combine_fn must be callable or None")
        if not self.name:
            raise ValueError("job must have a name")

    @property
    def has_combiner(self) -> bool:
        return self.combine_fn is not None

    def with_config(self, **overrides: Any) -> "MapReduceJob":
        """Return a copy of the job with config fields replaced."""
        cfg = JobConfig(
            num_reducers=self.config.num_reducers,
            map_buffer_bytes=self.config.map_buffer_bytes,
            merge_factor=self.config.merge_factor,
            reduce_buffer_bytes=self.config.reduce_buffer_bytes,
            combine_on_spill=self.config.combine_on_spill,
            batch=self.config.batch,
        )
        for key, value in overrides.items():
            if not hasattr(cfg, key):
                raise AttributeError(f"JobConfig has no field {key!r}")
            setattr(cfg, key, value)
        return MapReduceJob(
            name=self.name,
            map_fn=self.map_fn,
            reduce_fn=self.reduce_fn,
            combine_fn=self.combine_fn,
            config=cfg,
            input_path=self.input_path,
            output_path=self.output_path,
        )


def run_combiner(
    combine_fn: CombineFn, grouped: Iterable[tuple[Any, list[Any]]]
) -> Iterator[tuple[Any, Any]]:
    """Apply a combiner to pre-grouped pairs, flattening its emissions."""
    for key, values in grouped:
        yield from combine_fn(key, iter(values))

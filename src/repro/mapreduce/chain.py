"""In-memory intermediate reuse for chained jobs (the M3R idea).

A multi-stage analysis — sessionize, then aggregate the sessions — runs as
a chain of MapReduce jobs where stage *i*'s output file is stage *i+1*'s
input.  Run naively, every intermediate round-trips through HDFS: the
producing reducers write replicated blocks, and the next job's map phase
reads them straight back.  For a chain that is pure waste — the bytes were
in this process moments ago.

:class:`PartitionCache` keeps those intermediate blocks in memory instead.
:func:`run_chain` registers each non-final output path in the cache before
its stage runs; the HDFS facade then routes the registered paths' block
*bytes* into the cache at write time and serves reads from it, while the
NameNode keeps normal block metadata (placement still consumes the same
round-robin cursor positions, so file layout and locality scheduling are
byte-identical to the uncached run).  Entries are keyed by job fingerprint
plus block index, which both deduplicates re-runs of an identical stage and
keeps a crashed-and-resumed chain from doubling its footprint.

Memory is bounded: past ``capacity_bytes`` the cache spills entries to an
*accounted* local disk in deterministic FIFO (insertion) order, so a
pressured chain degrades to exactly the disk traffic it saved, never to an
unbounded resident set.

This module is coordinator-only.  Kernels never see the cache — blocks are
materialised to plain ``bytes`` before any task spec is built, which is
also why :meth:`PartitionCache.get` returns the stored object rather than a
``memoryview`` (process-pool executors pickle task specs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.hdfs.blocks import BlockId
from repro.io.disk import LocalDisk
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.journal import job_fingerprint
from repro.obs.tracer import NULL_TRACER, byte_cost

__all__ = ["PartitionCache", "ChainStage", "ChainResult", "run_chain"]


class _CacheEntry:
    """One cached block: in-memory bytes, or a pointer to its spill file."""

    __slots__ = ("block_id", "nbytes", "data", "spill_path")

    def __init__(self, block_id: BlockId, data: bytes) -> None:
        self.block_id = block_id
        self.nbytes = len(data)
        self.data: bytes | None = data
        self.spill_path: str | None = None


class PartitionCache:
    """Process-local store of intermediate HDFS blocks for chained jobs.

    Entries are keyed by ``(job_fingerprint, block_index)``; re-storing an
    existing key is a dedup hit (the bytes are already here).  All counter
    traffic lands on :attr:`counters` — the cache's own bag, merged into
    the chain-level totals by :func:`run_chain`, never into a single job's
    counters (which must stay byte-identical with the cache on or off).
    """

    __slots__ = (
        "capacity_bytes",
        "spill_disk",
        "tracer",
        "counters",
        "_registered",
        "_entries",
        "_by_block",
        "used_bytes",
    )

    def __init__(
        self,
        *,
        capacity_bytes: int = 64 * 1024 * 1024,
        spill_disk: LocalDisk | None = None,
        tracer: Any = NULL_TRACER,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self.spill_disk = spill_disk
        self.tracer = tracer
        self.counters = Counters()
        #: path -> fingerprint of the job that produces it
        self._registered: dict[str, str] = {}
        #: (fingerprint, block index) -> entry, in insertion (FIFO) order
        self._entries: dict[tuple[str, int], _CacheEntry] = {}
        #: block id -> entry key
        self._by_block: dict[BlockId, tuple[str, int]] = {}
        self.used_bytes = 0

    # -- registration --------------------------------------------------------

    def register(self, path: str, fingerprint: str) -> None:
        """Route ``path``'s future block writes/reads through the cache."""
        self._registered[path] = fingerprint
        self.tracer.event("cache.register", "cache", path=path, fp=fingerprint)

    def captures(self, path: str) -> bool:
        return path in self._registered

    def holds(self, block_id: BlockId) -> bool:
        return block_id in self._by_block

    # -- block traffic (called by the HDFS facade) ---------------------------

    def store(self, block_id: BlockId, data: bytes) -> None:
        """Capture one block write of a registered path."""
        key = (self._registered[block_id.path], block_id.index)
        if key in self._entries:
            # An identical stage already produced this block (chain re-run
            # or resume): the bytes are here, nothing to copy.
            self.counters.inc(C.CACHE_DEDUP_HITS)
            self._by_block[block_id] = key
            return
        entry = _CacheEntry(block_id, data)
        self._entries[key] = entry
        self._by_block[block_id] = key
        self.used_bytes += entry.nbytes
        self._spill_over_pressure()

    def get(self, block_id: BlockId) -> bytes | None:
        """Serve one block read, unspilling from local disk if needed."""
        key = self._by_block.get(block_id)
        if key is None:
            self.counters.inc(C.CACHE_MISSES)
            return None
        entry = self._entries[key]
        self.counters.inc(C.CACHE_HITS)
        if entry.data is not None:
            return entry.data
        assert self.spill_disk is not None and entry.spill_path is not None
        return self.spill_disk.read(entry.spill_path)

    # -- pressure ------------------------------------------------------------

    def _spill_over_pressure(self) -> None:
        """Spill resident entries FIFO until back under the byte budget.

        Insertion order is deterministic, so which blocks hit disk (and in
        what order) is a pure function of the chain — no clock, no
        randomness.  A cache over budget with no spill disk raises rather
        than growing silently.
        """
        while self.used_bytes > self.capacity_bytes:
            key = next(
                (k for k, e in self._entries.items() if e.data is not None), None
            )
            if key is None:
                return
            entry = self._entries[key]
            if self.spill_disk is None:
                raise RuntimeError(
                    "PartitionCache over capacity with no spill disk; "
                    "pass spill_disk= or raise capacity_bytes"
                )
            path = f"chaincache/{key[0]}/blk-{key[1]:06d}"
            assert entry.data is not None
            with self.tracer.span(
                "batch.encode",
                "cache",
                cost=byte_cost(entry.nbytes),
                bytes=entry.nbytes,
            ):
                self.spill_disk.write(path, entry.data, overwrite=True)
            self.tracer.event("cache.spill", "cache", bytes=entry.nbytes)
            self.counters.inc(C.CACHE_SPILLS)
            self.counters.inc(C.CACHE_SPILL_BYTES, entry.nbytes)
            entry.spill_path = path
            entry.data = None
            self.used_bytes -= entry.nbytes
            self.tracer.metrics.gauge("cache.resident.bytes").record(
                self.tracer.clock, self.used_bytes
            )

    # -- cleanup -------------------------------------------------------------

    def release(self, path: str) -> None:
        """Drop every entry of ``path`` and unregister it."""
        fingerprint = self._registered.pop(path, None)
        if fingerprint is None:
            return
        doomed = [k for k in self._entries if k[0] == fingerprint]
        for key in doomed:
            entry = self._entries.pop(key)
            if entry.data is not None:
                self.used_bytes -= entry.nbytes
            elif self.spill_disk is not None and entry.spill_path is not None:
                self.spill_disk.delete(entry.spill_path)
        dead_blocks = [b for b, k in self._by_block.items() if k[0] == fingerprint]
        for block_id in dead_blocks:
            del self._by_block[block_id]

    def clear(self) -> None:
        for path in list(self._registered):
            self.release(path)

    @property
    def resident_blocks(self) -> int:
        return sum(1 for e in self._entries.values() if e.data is not None)

    @property
    def spilled_blocks(self) -> int:
        return sum(1 for e in self._entries.values() if e.data is None)


# -- chained execution ---------------------------------------------------------


@dataclass(slots=True)
class ChainStage:
    """One link of a chained pipeline: a job plus the engine to run it on.

    ``engine`` is an engine name (``"hadoop"``, ``"hop"``, ``"onepass"``);
    ``engine_kwargs`` is passed to the engine constructor (fault plans,
    checkpoint intervals, ...).  The job's ``input_path`` must be the
    previous stage's ``output_path`` for the cache to help, though
    :func:`run_chain` does not require it — unrelated stages simply see no
    cache traffic.
    """

    job: Any
    engine: str = "onepass"
    engine_kwargs: dict[str, Any] = field(default_factory=dict)


@dataclass(slots=True)
class ChainResult:
    """Outcome of a chained run: per-stage results plus merged accounting.

    ``counters`` is the union of every stage's counters *plus* the cache's
    own (``cache.hits`` / ``cache.misses`` / ``cache.spills`` / ...); the
    per-stage :class:`~repro.mapreduce.runtime.JobResult` objects keep
    their cache-free counter bags untouched.
    """

    results: list[Any]
    counters: Counters
    cache: PartitionCache


def _make_engine(stage: ChainStage, cluster: Any, executor: Any, tracer: Any) -> Any:
    kwargs = dict(stage.engine_kwargs)
    kwargs.setdefault("executor", executor)
    if tracer is not None:
        kwargs.setdefault("tracer", tracer)
    if stage.engine == "hadoop":
        from repro.mapreduce.runtime import HadoopEngine

        return HadoopEngine(cluster, **kwargs)
    if stage.engine == "hop":
        from repro.mapreduce.hop import HOPEngine

        return HOPEngine(cluster, **kwargs)
    if stage.engine == "onepass":
        from repro.core.engine import OnePassEngine

        return OnePassEngine(cluster, **kwargs)
    raise ValueError(f"unknown engine {stage.engine!r}")


def run_chain(
    cluster: Any,
    stages: list[ChainStage],
    *,
    cache: PartitionCache | None = None,
    cache_bytes: int = 64 * 1024 * 1024,
    executor: Any = None,
    tracer: Any = None,
    keep_intermediates: bool = False,
) -> ChainResult:
    """Run a job chain with intermediate outputs held in memory.

    Every stage's output except the last is registered in the cache before
    the stage runs, so its blocks never land on the DataNodes' disks and
    the next stage's map phase reads them straight from memory.  The final
    stage's output goes through the normal replicated write path — it must
    outlive the cache.

    Unless ``keep_intermediates`` is set, intermediate files are deleted
    (metadata and cached bytes) once the chain completes; a kept
    intermediate is only readable while its cache stays attached, since
    its bytes exist nowhere else.
    """
    if not stages:
        raise ValueError("run_chain needs at least one stage")
    if cache is None:
        spill_node = cluster.compute_node_names[0]
        cache = PartitionCache(
            capacity_bytes=cache_bytes,
            spill_disk=cluster.nodes[spill_node].intermediate_disk,
            tracer=tracer if tracer is not None else NULL_TRACER,
        )
    hdfs = cluster.hdfs
    previous_cache = getattr(hdfs, "block_cache", None)
    hdfs.block_cache = cache
    results: list[Any] = []
    merged = Counters()
    try:
        last = len(stages) - 1
        for i, stage in enumerate(stages):
            if i < last:
                cache.register(
                    stage.job.output_path, job_fingerprint(stage.job, stage.engine)
                )
            engine = _make_engine(stage, cluster, executor, tracer)
            result = engine.run(stage.job)
            results.append(result)
            merged.merge(result.counters)
        if not keep_intermediates:
            for stage in stages[:last]:
                hdfs.delete_file(stage.job.output_path)
    finally:
        hdfs.block_cache = previous_cache
    merged.merge(cache.counters)
    return ChainResult(results=results, counters=merged, cache=cache)

"""The in-process cluster and the Hadoop-baseline job runner.

:class:`LocalCluster` assembles N simulated nodes — each with one or two
accounted local disks and a DataNode — plus an HDFS namespace over them.
:class:`HadoopEngine` executes a :class:`~repro.mapreduce.api.MapReduceJob`
on that cluster exactly the way the paper describes Hadoop doing it:
block-level map tasks with locality-aware scheduling, sort-spill map
output, pull shuffle after each map completion, multi-pass merge, blocking
reduce.

Everything runs in one Python process (task "parallelism" is logical), but
all data movement is real: records are really mapped, sorted, spilled,
merged and reduced, and every byte is accounted on the node disks.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.exec import resolve_executor
from repro.hdfs.datanode import DataNode
from repro.hdfs.filesystem import HDFS, InputSplit
from repro.io.device import HDD_7200RPM, SSD_SATA, DeviceProfile
from repro.io.disk import DiskStats, LocalDisk
from repro.mapreduce.api import MapReduceJob
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.journal import (
    K_JOB_SPEC,
    K_MAP_COMMIT,
    K_OUTPUT_COMMIT,
    K_REDUCE_COMMIT,
    K_SHUFFLE_COMMIT,
    K_TASK_GRANT,
    NULL_JOURNAL,
    emit_committed_output,
    job_fingerprint,
    output_digest,
)
from repro.mapreduce.recovery import (
    FetchRetryPolicy,
    RecoveryManager,
    SpeculationPolicy,
    TaskLineage,
)
from repro.mapreduce.scheduler import ScheduleStats, TaskAssignment, WaveScheduler
from repro.mapreduce.shuffle import FetchFailedError, ShuffleService
from repro.mapreduce.sortmerge import MapOutput, SortMergeReduceTask
from repro.obs.log import get_logger
from repro.obs.tracer import NULL_TRACER, byte_cost

__all__ = ["ClusterNode", "LocalCluster", "JobResult", "HadoopEngine"]


@dataclass(slots=True)
class ClusterNode:
    """One simulated machine: a name and its storage devices.

    ``intermediate`` names the disk that receives map output, spills and
    merge traffic.  In the default architecture it is the same device as
    HDFS data (``"hdd"``) — the contention the paper measures; in the
    HDD+SSD architecture it is the SSD.
    """

    name: str
    disks: dict[str, LocalDisk]
    intermediate: str = "hdd"

    @property
    def hdfs_disk(self) -> LocalDisk:
        return self.disks["hdd"]

    @property
    def intermediate_disk(self) -> LocalDisk:
        return self.disks[self.intermediate]


class LocalCluster:
    """A set of nodes plus the HDFS namespace spanning them.

    Parameters
    ----------
    num_nodes:
        Total machines.  With ``storage_nodes`` set, the first
        ``storage_nodes`` machines host HDFS only and the rest compute only
        (the paper's "separate distributed storage" architecture);
        otherwise every node does both (colocated, the default).
    with_ssd:
        Give each compute node an SSD and direct intermediate data to it
        (the paper's "separate storage devices" architecture).
    block_size:
        HDFS block size in bytes.
    """

    def __init__(
        self,
        num_nodes: int = 4,
        *,
        with_ssd: bool = False,
        storage_nodes: int = 0,
        block_size: int = 1 * 1024 * 1024,
        replication: int = 1,
        hdd_profile: DeviceProfile = HDD_7200RPM,
        ssd_profile: DeviceProfile = SSD_SATA,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if storage_nodes >= num_nodes:
            raise ValueError("storage_nodes must leave at least one compute node")
        self.nodes: dict[str, ClusterNode] = {}
        names = [f"node{i:02d}" for i in range(num_nodes)]
        for name in names:
            disks = {"hdd": LocalDisk(hdd_profile, name=f"{name}.hdd")}
            intermediate = "hdd"
            if with_ssd:
                disks["ssd"] = LocalDisk(ssd_profile, name=f"{name}.ssd")
                intermediate = "ssd"
            self.nodes[name] = ClusterNode(name=name, disks=disks, intermediate=intermediate)

        if storage_nodes > 0:
            self.storage_node_names = names[:storage_nodes]
            self.compute_node_names = names[storage_nodes:]
        else:
            self.storage_node_names = names
            self.compute_node_names = names

        datanodes = {
            name: DataNode(name, self.nodes[name].hdfs_disk)
            for name in self.storage_node_names
        }
        self.hdfs = HDFS(datanodes, replication=replication, block_size=block_size)

    @property
    def separate_storage(self) -> bool:
        return self.storage_node_names != self.compute_node_names

    def node(self, name: str) -> ClusterNode:
        return self.nodes[name]

    def intermediate_disks(self) -> dict[str, LocalDisk]:
        """Map from compute-node name to its intermediate-data disk."""
        return {
            name: self.nodes[name].intermediate_disk
            for name in self.compute_node_names
        }

    def wipe_node(self, name: str) -> None:
        """Simulate a machine crash: every byte stored on the node is lost.

        HDFS block replicas, map output, spills, logs — all gone.  The
        disks' accounting survives (the I/O the node performed before the
        crash really happened and stays on the job's bill).
        """
        for disk in self.nodes[name].disks.values():
            disk.delete_prefix("")

    def disk_stats(self) -> dict[str, DiskStats]:
        """Snapshot of every disk's counters, keyed ``node.device``."""
        out: dict[str, DiskStats] = {}
        for node in self.nodes.values():
            for dev, disk in node.disks.items():
                out[f"{node.name}.{dev}"] = disk.stats.snapshot()
        return out

    def total_disk_stats(self) -> DiskStats:
        total = DiskStats()
        for node in self.nodes.values():
            for disk in node.disks.values():
                s = disk.stats
                total.bytes_read += s.bytes_read
                total.bytes_written += s.bytes_written
                total.read_ops += s.read_ops
                total.write_ops += s.write_ops
                total.random_ops += s.random_ops
                total.sequential_ops += s.sequential_ops
                total.deletes += s.deletes
                total.busy_time += s.busy_time
        return total


@dataclass(slots=True)
class JobResult:
    """Outcome of one engine run: counters, timings and output location."""

    job_name: str
    engine: str
    output_path: str
    counters: Counters
    wall_time: float
    phase_times: dict[str, float] = field(default_factory=dict)
    schedule: ScheduleStats | None = None
    network_bytes: int = 0
    output_records: int = 0
    snapshots: list[Any] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)
    #: The run's merged :class:`~repro.obs.tracer.Tracer` when tracing was
    #: on, else ``None``.
    trace: Any = None

    def summary(self) -> dict[str, float]:
        """The headline numbers for reports."""
        c = self.counters
        return {
            "wall_time": self.wall_time,
            "map_input_bytes": c[C.MAP_INPUT_BYTES],
            "map_output_bytes": c[C.MAP_OUTPUT_BYTES],
            "reduce_spill_bytes": c[C.REDUCE_SPILL_BYTES],
            "merge_read_bytes": c[C.MERGE_READ_BYTES],
            "output_records": self.output_records,
            "network_bytes": self.network_bytes,
        }


class HadoopEngine:
    """The sort-merge baseline: stock Hadoop's execution model.

    ``fault_plan`` injects deterministic failures, all recovered the way
    Hadoop's JobTracker recovers them — and all charged to the job's
    counters, because re-execution is not free:

    * killed map/reduce attempts run, their output is discarded, and the
      task retries on the next live candidate node;
    * transient shuffle fetch failures back off exponentially; a segment
      that stays unfetchable past the retry budget ("too many fetch
      failures") re-executes its map task;
    * a node crash loses every HDFS replica, completed map output and
      reduce state on the node: under-replicated blocks re-replicate,
      the lost maps re-execute on survivors, and the node's reducers
      restart elsewhere and re-pull their partitions;
    * slow nodes make completed-but-straggling attempts race a
      speculative backup; the loser's work is counted as waste.

    The synchronous map-output write is what makes this recovery
    possible — the fault-tolerance rationale the paper cites for that
    write.  ``fetch_interval`` sets how many map completions pass between
    reducer pulls (Hadoop's poll period); larger values leave segments
    unfetched longer, which matters when a node dies in between.
    """

    name = "hadoop"

    def __init__(
        self,
        cluster: LocalCluster,
        *,
        map_slots: int = 2,
        fault_plan: FaultPlan | None = None,
        fetch_interval: int = 1,
        retry_policy: FetchRetryPolicy | None = None,
        speculation: SpeculationPolicy | None = None,
        executor: Any = None,
        tracer: Any = None,
        journal: Any = None,
    ) -> None:
        if fetch_interval < 1:
            raise ValueError("fetch_interval must be >= 1")
        self.cluster = cluster
        self.scheduler = WaveScheduler(
            cluster.compute_node_names, map_slots=map_slots
        )
        self.fault_plan = fault_plan
        self.fetch_interval = fetch_interval
        self.retry_policy = retry_policy
        self.speculation = speculation
        self.executor = resolve_executor(executor)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.journal = journal if journal is not None else NULL_JOURNAL

    # -- input ------------------------------------------------------------

    def _read_block(self, split: InputSplit, node: str) -> tuple[bytes, bool]:
        """Read a split's raw bytes, preferring the local replica."""
        hdfs = self.cluster.hdfs
        local = node in split.preferred_nodes
        data = hdfs.read_block_bytes(split.block_id, from_node=node if local else None)
        return data, local

    # -- execution -----------------------------------------------------------

    def _execute_map(
        self,
        job: MapReduceJob,
        recovery: RecoveryManager,
        session: Any,
        task_id: int,
        split: InputSplit,
        preferred: str,
        live: list[str],
        counters: Counters,
    ) -> tuple[str, MapOutput, int]:
        """Run one map task through the shared recovery loop.

        Returns ``(winning node, output, network bytes)``.  Every attempt
        — killed, speculative loser or winner — charges its read, map,
        sort and spill work to the job.
        """
        from repro.exec.kernels import HadoopMapSpec

        cluster = self.cluster
        network_bytes = 0

        def attempt(node: str) -> MapOutput:
            nonlocal network_bytes
            data, local = self._read_block(split, node)
            if not local:
                network_bytes += len(data)
            disk = cluster.nodes[node].intermediate_disk
            res = session.run_one(
                "hadoop_map", HadoopMapSpec(task_id, node, data, disk.profile, disk.name)
            )
            disk.absorb(res.disk)
            counters.merge(res.counters)
            self.tracer.absorb(res.trace)
            return res.output

        def discard(node: str, _output: MapOutput) -> None:
            # The attempt died (or lost the speculative race) before its
            # completion report: its output files are gone.
            disk = cluster.nodes[node].intermediate_disk
            disk.delete_prefix(f"mapout/{task_id:05d}")
            disk.delete_prefix(f"mapspill/{task_id:05d}")

        node, output = recovery.run_map_task(
            task_id, preferred, live, split.nbytes, attempt, discard
        )
        return node, output, network_bytes

    def _rerun_lost_map(
        self,
        job: MapReduceJob,
        recovery: RecoveryManager,
        session: Any,
        shuffle: ShuffleService,
        lineage: TaskLineage,
        task_id: int,
        live: list[str],
        splits_by_task: dict[int, InputSplit],
        counters: Counters,
    ) -> int:
        """Re-execute a map whose output is lost; re-register fresh output.

        Already-delivered segments stay valid at their reducers (the
        shuffle keeps fetch marks across ``invalidate``), so only the
        still-missing segments are served from the new output.
        """
        old_node = lineage.node_of(task_id)
        if old_node is not None:
            disk = self.cluster.nodes[old_node].intermediate_disk
            disk.delete_prefix(f"mapout/{task_id:05d}")
            disk.delete_prefix(f"mapspill/{task_id:05d}")
        shuffle.invalidate(task_id)
        lineage.forget(task_id)
        counters.inc(C.TASKS_RERUN)
        self.tracer.event(
            "map.rerun", "recovery", node=old_node or "", task=f"map:{task_id:05d}"
        )
        split = splits_by_task[task_id]
        rescheduler = WaveScheduler(live, map_slots=self.scheduler.map_slots)
        preferred = rescheduler.schedule([split])[0][0].node
        self.journal.append(K_TASK_GRANT, task=task_id, node=preferred)
        node, output, network_bytes = self._execute_map(
            job, recovery, session, task_id, split, preferred, live, counters
        )
        shuffle.register(output)
        lineage.record(task_id, node, output.total_bytes)
        self.journal.append(
            K_MAP_COMMIT, task=task_id, node=node, nbytes=output.total_bytes
        )
        return network_bytes

    def _pull_partition(
        self,
        partition: int,
        rtask: SortMergeReduceTask,
        job: MapReduceJob,
        recovery: RecoveryManager,
        session: Any,
        shuffle: ShuffleService,
        lineage: TaskLineage,
        live: list[str],
        splits_by_task: dict[int, InputSplit],
        counters: Counters,
    ) -> int:
        """Fetch every pending segment for ``partition`` into ``rtask``.

        A segment that exhausts its fetch retries ("too many fetch
        failures") re-executes its map task; the loop then pulls from the
        fresh output.  Returns the network bytes spent on re-executions.
        """
        network_bytes = 0
        while True:
            pending = shuffle.pending_fetches(partition)
            if not pending:
                return network_bytes
            for task_id in pending:
                try:
                    seg = shuffle.fetch(task_id, partition)
                except FetchFailedError:
                    self.tracer.event(
                        "shuffle.fetch_failed",
                        "recovery",
                        node=rtask.node,
                        task=f"reduce:{partition:03d}",
                        map_task=task_id,
                    )
                    with counters.timer(C.T_RECOVERY):
                        network_bytes += self._rerun_lost_map(
                            job,
                            recovery,
                            session,
                            shuffle,
                            lineage,
                            task_id,
                            live,
                            splits_by_task,
                            counters,
                        )
                    continue
                self.tracer.metrics.histogram("shuffle.segment.bytes").observe(
                    seg.nbytes
                )
                with self.tracer.span(
                    "fetch",
                    "shuffle",
                    node=rtask.node,
                    task=f"reduce:{partition:03d}",
                    cost=byte_cost(seg.nbytes),
                    bytes=seg.nbytes,
                    map_task=task_id,
                ):
                    rtask.accept_segment(list(seg.pairs), seg.nbytes)

    def _handle_node_crash(
        self,
        crashed: str,
        *,
        job: MapReduceJob,
        shuffle: ShuffleService,
        lineage: TaskLineage,
        reduce_tasks: dict[int, SortMergeReduceTask],
        reducer_nodes: dict[int, str],
        queue: deque[TaskAssignment],
        splits_by_task: dict[int, InputSplit],
        live: list[str],
        counters: Counters,
    ) -> None:
        """JobTracker reaction to losing a whole node mid-job.

        The node's HDFS replicas re-replicate, its completed map tasks
        re-execute on survivors (rescheduled with locality), and its
        reduce tasks restart on survivors — their partitions re-pulled in
        full on the next drain.
        """
        counters.inc(C.NODE_CRASHES)
        self.tracer.event("node.crash", "recovery", node=crashed)
        live.remove(crashed)
        if not live:
            raise RuntimeError(f"node crash of {crashed} left no live compute nodes")
        self.cluster.wipe_node(crashed)
        report = self.cluster.hdfs.handle_node_loss(crashed)
        if report.blocks_rereplicated:
            counters.inc(C.BLOCKS_REREPLICATED, report.blocks_rereplicated)
            counters.inc(C.BYTES_REREPLICATED, report.bytes_rereplicated)

        # Completed map output on the node died with it.
        lost = lineage.tasks_on(crashed)
        for task_id in lost:
            shuffle.invalidate(task_id)
            lineage.forget(task_id)
        if lost:
            counters.inc(C.TASKS_RERUN, len(lost))
            rescheduler = WaveScheduler(live, map_slots=self.scheduler.map_slots)
            reassigned, _ = rescheduler.schedule([splits_by_task[t] for t in lost])
            for a in reassigned:
                queue.append(
                    TaskAssignment(lost[a.task_id], a.split, a.node, a.wave, a.data_local)
                )

        # Reduce tasks resident on the node lost everything they fetched.
        for partition in sorted(reducer_nodes):
            if reducer_nodes[partition] != crashed:
                continue
            new_node = live[partition % len(live)]
            reducer_nodes[partition] = new_node
            dead = reduce_tasks[partition]
            counters.merge(dead.counters)  # its work still happened
            counters.inc(C.TASKS_RERUN)
            reduce_tasks[partition] = SortMergeReduceTask(
                job,
                partition,
                new_node,
                self.cluster.nodes[new_node].intermediate_disk,
                tracer=self.tracer,
            )
            shuffle.reset_partition(partition)

    def run(self, job: MapReduceJob) -> JobResult:
        """Execute ``job``; returns the merged counters and output path."""
        from repro.exec.kernels import HadoopMapSpec, HadoopReduceSpec

        if not job.input_path or not job.output_path:
            raise ValueError("job must set input_path and output_path")
        cluster = self.cluster
        hdfs = cluster.hdfs
        counters = Counters()
        recovery = RecoveryManager(
            self.fault_plan, counters, speculation=self.speculation, tracer=self.tracer
        )
        t_start = time.perf_counter()

        splits = hdfs.input_splits(job.input_path)
        assignments, sched_stats = self.scheduler.schedule(splits)
        reducer_nodes = self.scheduler.assign_reducers(job.config.num_reducers)
        splits_by_task = {a.task_id: a.split for a in assignments}
        live = list(cluster.compute_node_names)

        # ---- journal resume protocol ----
        journal = self.journal
        appends0, jbytes0 = journal.appends, journal.bytes_written
        committed: dict[int, tuple[Any, ...]] = {}
        if journal.enabled:
            state = journal.resume_state()
            fingerprint = job_fingerprint(job, self.name)
            state.check_spec(fingerprint)
            if state.truncated_bytes:
                self.tracer.event(
                    "journal.truncated", "journal", bytes=state.truncated_bytes
                )
            done = state.output_commits > 0
            if done or state.complete(job.config.num_reducers):
                # Every partition's output is journaled: rebuild the output
                # file from commits alone, no recompute.  A journal that
                # already holds the output commit gets zero new appends, so
                # replaying it again is byte-identical (idempotent).
                if not done:
                    journal.append(
                        K_JOB_SPEC, spec=fingerprint, engine=self.name, job=job.name
                    )
                output_records = emit_committed_output(
                    hdfs, job, reducer_nodes, state, counters, self.tracer
                )
                if not done:
                    journal.append(
                        K_OUTPUT_COMMIT,
                        path=job.output_path,
                        records=output_records,
                        digest=output_digest(hdfs, job.output_path),
                    )
                journal.finalize()
                counters.inc(C.JOURNAL_APPENDS, journal.appends - appends0)
                counters.inc(C.JOURNAL_BYTES, journal.bytes_written - jbytes0)
                return JobResult(
                    job_name=job.name,
                    engine=self.name,
                    output_path=job.output_path,
                    counters=counters,
                    wall_time=time.perf_counter() - t_start,
                    phase_times={"map": 0.0, "reduce": 0.0},
                    schedule=sched_stats,
                    network_bytes=0,
                    output_records=output_records,
                    trace=self.tracer if self.tracer.enabled else None,
                )
            journal.append(
                K_JOB_SPEC, spec=fingerprint, engine=self.name, job=job.name
            )
            committed = dict(state.reduce_commits)
            if committed:
                counters.inc(C.JOURNAL_REPLAYED_COMMITS, len(committed))
                self.tracer.event(
                    "journal.resume",
                    "journal",
                    commits=len(committed),
                    checkpoints=len(state.checkpoints),
                )

        shuffle = ShuffleService(
            cluster.intermediate_disks(),
            fault_plan=self.fault_plan,
            retry_policy=self.retry_policy,
        )
        reduce_tasks = {
            p: SortMergeReduceTask(
                job, p, node, cluster.nodes[node].intermediate_disk, tracer=self.tracer
            )
            for p, node in reducer_nodes.items()
        }
        lineage = TaskLineage()
        network_bytes = 0
        codec = hdfs.codec(hdfs.namenode.file_info(job.input_path).codec_name)
        session = self.executor.session(
            {"job": job, "codec": codec, "trace": self.tracer.enabled}
        )

        def drain() -> int:
            net = 0
            for partition in sorted(reduce_tasks):
                if partition in committed:
                    continue  # journaled output; nothing to pull
                net += self._pull_partition(
                    partition,
                    reduce_tasks[partition],
                    job,
                    recovery,
                    session,
                    shuffle,
                    lineage,
                    live,
                    splits_by_task,
                    counters,
                )
            return net

        with session:
            # ---- map phase (reducers pull every ``fetch_interval`` completions) ----
            c_map0 = self.tracer.clock
            t_map_start = time.perf_counter()
            queue: deque[TaskAssignment] = deque(assignments)
            completed_maps = 0
            since_drain = 0
            if self.fault_plan is None:
                while queue:
                    batch = [
                        queue.popleft()
                        for _ in range(min(len(queue), session.max_batch))
                    ]
                    specs = []
                    for a in batch:
                        journal.append(K_TASK_GRANT, task=a.task_id, node=a.node)
                        data, local = self._read_block(a.split, a.node)
                        if not local:
                            network_bytes += len(data)
                        disk = cluster.nodes[a.node].intermediate_disk
                        specs.append(
                            HadoopMapSpec(
                                a.task_id, a.node, data, disk.profile, disk.name
                            )
                        )
                    for a, res in zip(batch, session.run_batch("hadoop_map", specs)):
                        cluster.nodes[a.node].intermediate_disk.absorb(res.disk)
                        counters.merge(res.counters)
                        self.tracer.absorb(res.trace)
                        shuffle.register(res.output)
                        lineage.record(a.task_id, a.node, res.output.total_bytes)
                        journal.append(
                            K_MAP_COMMIT,
                            task=a.task_id,
                            node=a.node,
                            nbytes=res.output.total_bytes,
                        )
                        completed_maps += 1
                        since_drain += 1
                        if since_drain >= self.fetch_interval:
                            network_bytes += drain()
                            since_drain = 0
                if since_drain > 0:
                    network_bytes += drain()
            else:
                while queue:
                    a = queue.popleft()
                    journal.append(K_TASK_GRANT, task=a.task_id, node=a.node)
                    node, output, extra_net = self._execute_map(
                        job, recovery, session, a.task_id, a.split, a.node, live, counters
                    )
                    network_bytes += extra_net
                    shuffle.register(output)
                    lineage.record(a.task_id, node, output.total_bytes)
                    journal.append(
                        K_MAP_COMMIT, task=a.task_id, node=node, nbytes=output.total_bytes
                    )
                    completed_maps += 1
                    since_drain += 1
                    for crashed in self.fault_plan.crashes_due(completed_maps):
                        with counters.timer(C.T_RECOVERY):
                            self._handle_node_crash(
                                crashed,
                                job=job,
                                shuffle=shuffle,
                                lineage=lineage,
                                reduce_tasks=reduce_tasks,
                                reducer_nodes=reducer_nodes,
                                queue=queue,
                                splits_by_task=splits_by_task,
                                live=live,
                                counters=counters,
                            )
                    if since_drain >= self.fetch_interval or not queue:
                        network_bytes += drain()
                        since_drain = 0
            t_map = time.perf_counter() - t_map_start
            self.tracer.add_span(
                "map-phase", "phase", c_map0, self.tracer.clock, wall_s=t_map
            )
            get_logger("hadoop").info(
                "map.phase.done", tasks=completed_maps, wall_ms=t_map * 1e3
            )
            for partition in sorted(reduce_tasks):
                if partition not in committed:
                    journal.append(K_SHUFFLE_COMMIT, partition=partition)

            # ---- reduce phase (blocking merge + reduce + output write) ----
            c_reduce0 = self.tracer.clock
            t_reduce_start = time.perf_counter()
            hdfs.namenode.create_file(job.output_path, codec_name="binary")
            output_records = 0
            if self.fault_plan is None:
                # Independent partitions: ship each reduce task's ingested
                # state (in-memory segments + on-disk runs) to the kernel
                # and absorb the shadow disk's merge/output I/O back.
                order = sorted(reduce_tasks)
                pending = [p for p in order if p not in committed]
                outputs: dict[int, list[Any]] = {
                    p: list(committed[p]) for p in committed
                }
                specs = []
                for partition in pending:
                    rtask = reduce_tasks[partition]
                    disk = cluster.nodes[reducer_nodes[partition]].intermediate_disk
                    memory, memory_bytes, (runs, seq) = rtask.export_ingested()
                    specs.append(
                        HadoopReduceSpec(
                            partition,
                            reducer_nodes[partition],
                            disk.profile,
                            disk.name,
                            memory,
                            memory_bytes,
                            runs,
                            seq,
                            {path: disk.peek(path) for path, _ in runs},
                        )
                    )
                for partition, res in zip(
                    pending, session.run_batch("hadoop_reduce", specs)
                ):
                    disk = cluster.nodes[reducer_nodes[partition]].intermediate_disk
                    disk.absorb(res.disk)
                    counters.merge(reduce_tasks[partition].counters)
                    counters.merge(res.counters)
                    self.tracer.absorb(res.trace)
                    journal.append(
                        K_REDUCE_COMMIT, partition=partition, records=tuple(res.output)
                    )
                    if journal.enabled:
                        self.tracer.event(
                            "journal.commit",
                            "journal",
                            task=f"reduce:{partition:03d}",
                            records=len(res.output),
                        )
                    outputs[partition] = list(res.output)
                for partition in order:
                    output = outputs[partition]
                    output_records += len(output)
                    if output:
                        hdfs.append_block(
                            job.output_path,
                            output,
                            writer_node=reducer_nodes[partition],
                        )
            else:
                for partition in sorted(reduce_tasks):
                    if partition in committed:
                        output = list(committed[partition])
                        output_records += len(output)
                        if output:
                            hdfs.append_block(
                                job.output_path,
                                output,
                                writer_node=reducer_nodes[partition],
                            )
                        continue

                    def attempt(
                        attempt_idx: int, partition: int = partition
                    ) -> list[Any]:
                        nonlocal network_bytes
                        if attempt_idx > 0:
                            # The previous attempt died mid-reduce: its fetched
                            # segments, merge runs and partial output are gone.  A
                            # fresh task on the next live node re-pulls the whole
                            # partition from the mapper disks.
                            dead = reduce_tasks[partition]
                            counters.merge(dead.counters)  # its work still happened
                            counters.inc(C.TASKS_RERUN)
                            new_node = live[(partition + attempt_idx) % len(live)]
                            reducer_nodes[partition] = new_node
                            rtask = SortMergeReduceTask(
                                job,
                                partition,
                                new_node,
                                cluster.nodes[new_node].intermediate_disk,
                                tracer=self.tracer,
                            )
                            reduce_tasks[partition] = rtask
                            shuffle.reset_partition(partition)
                            network_bytes += self._pull_partition(
                                partition,
                                rtask,
                                job,
                                recovery,
                                session,
                                shuffle,
                                lineage,
                                live,
                                splits_by_task,
                                counters,
                            )
                        output, _groups = reduce_tasks[partition].run()
                        return output

                    output = recovery.run_reduce_task(partition, attempt)
                    counters.merge(reduce_tasks[partition].counters)
                    journal.append(
                        K_REDUCE_COMMIT, partition=partition, records=tuple(output)
                    )
                    if journal.enabled:
                        self.tracer.event(
                            "journal.commit",
                            "journal",
                            task=f"reduce:{partition:03d}",
                            records=len(output),
                        )
                    output_records += len(output)
                    if output:
                        hdfs.append_block(
                            job.output_path, output, writer_node=reducer_nodes[partition]
                        )
            t_reduce = time.perf_counter() - t_reduce_start
            self.tracer.add_span(
                "reduce-phase", "phase", c_reduce0, self.tracer.clock, wall_s=t_reduce
            )
            get_logger("hadoop").info(
                "reduce.phase.done",
                partitions=len(reduce_tasks),
                records=output_records,
                wall_ms=t_reduce * 1e3,
            )

        shuffle.cleanup()
        shuffle.merge_stats(counters)
        network_bytes += shuffle.network_bytes
        counters.inc(C.OUTPUT_BYTES, hdfs.file_bytes(job.output_path))
        if journal.enabled:
            journal.append(
                K_OUTPUT_COMMIT,
                path=job.output_path,
                records=output_records,
                digest=output_digest(hdfs, job.output_path),
            )
            journal.finalize()
            counters.inc(C.JOURNAL_APPENDS, journal.appends - appends0)
            counters.inc(C.JOURNAL_BYTES, journal.bytes_written - jbytes0)
        wall = time.perf_counter() - t_start
        return JobResult(
            job_name=job.name,
            engine=self.name,
            output_path=job.output_path,
            counters=counters,
            wall_time=wall,
            phase_times={"map": t_map, "reduce": t_reduce},
            schedule=sched_stats,
            network_bytes=network_bytes,
            output_records=output_records,
            trace=self.tracer if self.tracer.enabled else None,
        )

"""The in-process cluster and the Hadoop-baseline job runner.

:class:`LocalCluster` assembles N simulated nodes — each with one or two
accounted local disks and a DataNode — plus an HDFS namespace over them.
:class:`HadoopEngine` executes a :class:`~repro.mapreduce.api.MapReduceJob`
on that cluster exactly the way the paper describes Hadoop doing it:
block-level map tasks with locality-aware scheduling, sort-spill map
output, pull shuffle after each map completion, multi-pass merge, blocking
reduce.

Everything runs in one Python process (task "parallelism" is logical), but
all data movement is real: records are really mapped, sorted, spilled,
merged and reduced, and every byte is accounted on the node disks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.hdfs.datanode import DataNode
from repro.hdfs.filesystem import HDFS, InputSplit
from repro.io.device import HDD_7200RPM, SSD_SATA, DeviceProfile
from repro.io.disk import DiskStats, LocalDisk
from repro.mapreduce.api import MapReduceJob
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.faults import FaultPlan, TaskFailure
from repro.mapreduce.scheduler import ScheduleStats, WaveScheduler
from repro.mapreduce.shuffle import ShuffleService
from repro.mapreduce.sortmerge import SortMergeMapTask, SortMergeReduceTask

__all__ = ["ClusterNode", "LocalCluster", "JobResult", "HadoopEngine"]


@dataclass(slots=True)
class ClusterNode:
    """One simulated machine: a name and its storage devices.

    ``intermediate`` names the disk that receives map output, spills and
    merge traffic.  In the default architecture it is the same device as
    HDFS data (``"hdd"``) — the contention the paper measures; in the
    HDD+SSD architecture it is the SSD.
    """

    name: str
    disks: dict[str, LocalDisk]
    intermediate: str = "hdd"

    @property
    def hdfs_disk(self) -> LocalDisk:
        return self.disks["hdd"]

    @property
    def intermediate_disk(self) -> LocalDisk:
        return self.disks[self.intermediate]


class LocalCluster:
    """A set of nodes plus the HDFS namespace spanning them.

    Parameters
    ----------
    num_nodes:
        Total machines.  With ``storage_nodes`` set, the first
        ``storage_nodes`` machines host HDFS only and the rest compute only
        (the paper's "separate distributed storage" architecture);
        otherwise every node does both (colocated, the default).
    with_ssd:
        Give each compute node an SSD and direct intermediate data to it
        (the paper's "separate storage devices" architecture).
    block_size:
        HDFS block size in bytes.
    """

    def __init__(
        self,
        num_nodes: int = 4,
        *,
        with_ssd: bool = False,
        storage_nodes: int = 0,
        block_size: int = 1 * 1024 * 1024,
        replication: int = 1,
        hdd_profile: DeviceProfile = HDD_7200RPM,
        ssd_profile: DeviceProfile = SSD_SATA,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if storage_nodes >= num_nodes:
            raise ValueError("storage_nodes must leave at least one compute node")
        self.nodes: dict[str, ClusterNode] = {}
        names = [f"node{i:02d}" for i in range(num_nodes)]
        for name in names:
            disks = {"hdd": LocalDisk(hdd_profile, name=f"{name}.hdd")}
            intermediate = "hdd"
            if with_ssd:
                disks["ssd"] = LocalDisk(ssd_profile, name=f"{name}.ssd")
                intermediate = "ssd"
            self.nodes[name] = ClusterNode(name=name, disks=disks, intermediate=intermediate)

        if storage_nodes > 0:
            self.storage_node_names = names[:storage_nodes]
            self.compute_node_names = names[storage_nodes:]
        else:
            self.storage_node_names = names
            self.compute_node_names = names

        datanodes = {
            name: DataNode(name, self.nodes[name].hdfs_disk)
            for name in self.storage_node_names
        }
        self.hdfs = HDFS(datanodes, replication=replication, block_size=block_size)

    @property
    def separate_storage(self) -> bool:
        return self.storage_node_names != self.compute_node_names

    def node(self, name: str) -> ClusterNode:
        return self.nodes[name]

    def intermediate_disks(self) -> dict[str, LocalDisk]:
        """Map from compute-node name to its intermediate-data disk."""
        return {
            name: self.nodes[name].intermediate_disk
            for name in self.compute_node_names
        }

    def disk_stats(self) -> dict[str, DiskStats]:
        """Snapshot of every disk's counters, keyed ``node.device``."""
        out: dict[str, DiskStats] = {}
        for node in self.nodes.values():
            for dev, disk in node.disks.items():
                out[f"{node.name}.{dev}"] = disk.stats.snapshot()
        return out

    def total_disk_stats(self) -> DiskStats:
        total = DiskStats()
        for node in self.nodes.values():
            for disk in node.disks.values():
                s = disk.stats
                total.bytes_read += s.bytes_read
                total.bytes_written += s.bytes_written
                total.read_ops += s.read_ops
                total.write_ops += s.write_ops
                total.random_ops += s.random_ops
                total.sequential_ops += s.sequential_ops
                total.deletes += s.deletes
                total.busy_time += s.busy_time
        return total


@dataclass(slots=True)
class JobResult:
    """Outcome of one engine run: counters, timings and output location."""

    job_name: str
    engine: str
    output_path: str
    counters: Counters
    wall_time: float
    phase_times: dict[str, float] = field(default_factory=dict)
    schedule: ScheduleStats | None = None
    network_bytes: int = 0
    output_records: int = 0
    snapshots: list[Any] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> dict[str, float]:
        """The headline numbers for reports."""
        c = self.counters
        return {
            "wall_time": self.wall_time,
            "map_input_bytes": c[C.MAP_INPUT_BYTES],
            "map_output_bytes": c[C.MAP_OUTPUT_BYTES],
            "reduce_spill_bytes": c[C.REDUCE_SPILL_BYTES],
            "merge_read_bytes": c[C.MERGE_READ_BYTES],
            "output_records": self.output_records,
            "network_bytes": self.network_bytes,
        }


class HadoopEngine:
    """The sort-merge baseline: stock Hadoop's execution model.

    ``fault_plan`` injects deterministic map-task failures: a killed
    attempt runs (its work is charged to the job's counters — re-execution
    is not free), its output files are discarded, and the task is retried
    on the next candidate node, as Hadoop's JobTracker does.  The
    synchronous map-output write is what makes this recovery possible —
    the fault-tolerance rationale the paper cites for that write.
    """

    name = "hadoop"

    def __init__(
        self,
        cluster: LocalCluster,
        *,
        map_slots: int = 2,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.cluster = cluster
        self.scheduler = WaveScheduler(
            cluster.compute_node_names, map_slots=map_slots
        )
        self.fault_plan = fault_plan

    # -- input ------------------------------------------------------------

    def _read_split(
        self, split: InputSplit, node: str, counters: Counters
    ) -> tuple[Iterator[Any], int, bool]:
        """Read a split's records, preferring the local replica."""
        hdfs = self.cluster.hdfs
        local = node in split.preferred_nodes
        data = hdfs.read_block_bytes(split.block_id, from_node=node if local else None)
        info = hdfs.namenode.file_info(split.block_id.path)
        codec = hdfs.codec(info.codec_name)

        def timed_decode() -> Iterator[Any]:
            perf = time.perf_counter
            it = codec.decode(data)
            while True:
                t0 = perf()
                try:
                    record = next(it)
                except StopIteration:
                    counters.inc(C.T_PARSE, perf() - t0)
                    return
                counters.inc(C.T_PARSE, perf() - t0)
                yield record

        return timed_decode(), len(data), local

    # -- execution -----------------------------------------------------------

    def _run_map_with_retries(self, job, assignment, counters):
        """Execute one map task, re-running killed attempts.

        Returns ``(MapOutput, network_bytes)``.  A killed attempt's work
        (read, map, sort, spill writes) is charged to the job before its
        files are discarded — recovery costs real resources.
        """
        cluster = self.cluster
        task_id = assignment.task_id
        candidates = [assignment.node] + [
            n for n in cluster.compute_node_names if n != assignment.node
        ]
        network_bytes = 0
        for attempt_idx in range(
            self.fault_plan.max_attempts if self.fault_plan else 1
        ):
            node = candidates[attempt_idx % len(candidates)]
            dies = False
            if self.fault_plan is not None:
                try:
                    self.fault_plan.start_map_attempt(task_id)
                except TaskFailure:
                    dies = True
            task = SortMergeMapTask(
                job, task_id, node, cluster.nodes[node].intermediate_disk
            )
            records, nbytes, local = self._read_split(
                assignment.split, node, task.counters
            )
            if not local:
                network_bytes += nbytes
            output = task.run(records, input_bytes=nbytes)
            counters.merge(task.counters)
            if not dies:
                return output, network_bytes
            # The node died before the completion report: its output files
            # are gone; the JobTracker reschedules elsewhere.
            disk = cluster.nodes[node].intermediate_disk
            disk.delete_prefix(f"mapout/{task_id:05d}")
            disk.delete_prefix(f"mapspill/{task_id:05d}")
            counters.inc(C.MAP_TASK_RETRIES)
        raise RuntimeError(
            f"map task {task_id} exhausted "
            f"{self.fault_plan.max_attempts if self.fault_plan else 1} attempts"
        )

    def run(self, job: MapReduceJob) -> JobResult:
        """Execute ``job``; returns the merged counters and output path."""
        if not job.input_path or not job.output_path:
            raise ValueError("job must set input_path and output_path")
        cluster = self.cluster
        hdfs = cluster.hdfs
        counters = Counters()
        t_start = time.perf_counter()

        splits = hdfs.input_splits(job.input_path)
        assignments, sched_stats = self.scheduler.schedule(splits)
        reducer_nodes = self.scheduler.assign_reducers(job.config.num_reducers)

        shuffle = ShuffleService(cluster.intermediate_disks())
        reduce_tasks = {
            p: SortMergeReduceTask(
                job, p, node, cluster.nodes[node].intermediate_disk
            )
            for p, node in reducer_nodes.items()
        }
        network_bytes = 0

        # ---- map phase (with eager shuffle after each completion) ----
        t_map_start = time.perf_counter()
        for assignment in assignments:
            output, extra_net = self._run_map_with_retries(job, assignment, counters)
            network_bytes += extra_net
            shuffle.register(output)
            # Reducers poll and pull freshly completed output.
            for partition, rtask in reduce_tasks.items():
                for seg in shuffle.fetch_all(partition):
                    rtask.accept_segment(list(seg.pairs), seg.nbytes)
        t_map = time.perf_counter() - t_map_start

        # ---- reduce phase (blocking merge + reduce + output write) ----
        t_reduce_start = time.perf_counter()
        hdfs.namenode.create_file(job.output_path, codec_name="binary")
        output_records = 0
        for partition, rtask in sorted(reduce_tasks.items()):
            output, _groups = rtask.run()
            output_records += len(output)
            if output:
                hdfs.append_block(
                    job.output_path, output, writer_node=reducer_nodes[partition]
                )
            counters.merge(rtask.counters)
        t_reduce = time.perf_counter() - t_reduce_start

        shuffle.cleanup()
        network_bytes += shuffle.network_bytes
        counters.inc(C.OUTPUT_BYTES, hdfs.file_bytes(job.output_path))
        wall = time.perf_counter() - t_start
        return JobResult(
            job_name=job.name,
            engine=self.name,
            output_path=job.output_path,
            counters=counters,
            wall_time=wall,
            phase_times={"map": t_map, "reduce": t_reduce},
            schedule=sched_stats,
            network_bytes=network_bytes,
            output_records=output_records,
        )

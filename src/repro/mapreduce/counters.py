"""Job counters and CPU-time attribution.

The paper's Table II splits map-phase CPU between the user map function and
the framework's sorting; its Table I reports intermediate-data volumes.
:class:`Counters` is the single accounting object every engine in this
repository fills in: integer/float counters (records, bytes, spills) plus
named wall-clock timers attributed with :meth:`Counters.timer`.

Counters merge associatively, so per-task counter sets roll up into job
totals regardless of scheduling order.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator

__all__ = ["Counters", "C"]


class C:
    """Canonical counter names shared by all engines.

    Keeping the names in one place lets the analysis layer compare the
    sort-merge baseline against the hash engine field by field.
    """

    # record flow
    MAP_INPUT_RECORDS = "map.input.records"
    MAP_OUTPUT_RECORDS = "map.output.records"
    COMBINE_INPUT_RECORDS = "combine.input.records"
    COMBINE_OUTPUT_RECORDS = "combine.output.records"
    REDUCE_INPUT_RECORDS = "reduce.input.records"
    REDUCE_INPUT_GROUPS = "reduce.input.groups"
    REDUCE_OUTPUT_RECORDS = "reduce.output.records"

    # byte flow
    MAP_INPUT_BYTES = "map.input.bytes"
    MAP_OUTPUT_BYTES = "map.output.bytes"
    MAP_SPILL_BYTES = "map.spill.bytes"
    SHUFFLE_BYTES = "shuffle.bytes"
    REDUCE_SPILL_BYTES = "reduce.spill.bytes"
    MERGE_READ_BYTES = "merge.read.bytes"
    MERGE_WRITE_BYTES = "merge.write.bytes"
    OUTPUT_BYTES = "output.bytes"

    # structure
    MAP_TASKS = "map.tasks"
    REDUCE_TASKS = "reduce.tasks"
    MAP_SPILLS = "map.spills"
    REDUCE_SPILLS = "reduce.spills"
    MERGE_PASSES = "merge.passes"
    SNAPSHOTS = "snapshots"
    MAP_TASK_RETRIES = "map.task.retries"
    REDUCE_TASK_RETRIES = "reduce.task.retries"
    STAGED_OUTPUT_BYTES = "fault.staged.bytes"

    # recovery subsystem
    TASKS_RERUN = "recovery.tasks.rerun"
    BYTES_RESHUFFLED = "recovery.bytes.reshuffled"
    REPLAYED_RECORDS = "recovery.replayed.records"
    NODE_CRASHES = "recovery.node.crashes"
    LOG_BYTES = "recovery.log.bytes"
    BLOCKS_REREPLICATED = "hdfs.blocks.rereplicated"
    BYTES_REREPLICATED = "hdfs.bytes.rereplicated"
    SHUFFLE_FETCH_FAILURES = "shuffle.fetch.failures"
    SHUFFLE_BACKOFF_MS = "shuffle.backoff.ms"
    SPECULATIVE_LAUNCHED = "speculative.launched"
    SPECULATIVE_WINS = "speculative.wins"
    SPECULATIVE_WASTED_MS = "speculative.wasted.ms"
    CHECKPOINTS = "checkpoint.count"
    CHECKPOINT_BYTES = "checkpoint.bytes"
    CHECKPOINT_RESTORES = "checkpoint.restores"
    CHECKPOINT_REJECTED = "checkpoint.rejected"
    LOG_REPLICAS_REJECTED = "recovery.log.replicas.rejected"

    # coordinator journal (durability subsystem)
    JOURNAL_APPENDS = "journal.appends"
    JOURNAL_BYTES = "journal.bytes"
    JOURNAL_REPLAYED_COMMITS = "journal.commits.replayed"

    # CPU attribution (seconds)
    T_MAP_FN = "time.map_fn"
    T_SORT = "time.sort"
    T_COMBINE = "time.combine"
    T_MERGE = "time.merge"
    T_REDUCE_FN = "time.reduce_fn"
    T_HASH = "time.hash"
    T_PARSE = "time.parse"
    T_SHUFFLE = "time.shuffle"
    T_RECOVERY = "time.recovery"

    # hash-engine specifics
    HASH_PROBES = "hash.probes"
    HASH_STATE_BYTES_PEAK = "hash.state.bytes.peak"
    HOT_HITS = "hotset.hits"
    HOT_MISSES = "hotset.misses"
    HOT_EVICTIONS = "hotset.evictions"
    EARLY_EMITS = "incremental.early_emits"

    # sort detail
    SORT_RECORDS = "sort.records"

    # chained-job partition cache (coordinator-level; repro.mapreduce.chain)
    CACHE_HITS = "cache.hits"
    CACHE_MISSES = "cache.misses"
    CACHE_SPILLS = "cache.spills"
    CACHE_SPILL_BYTES = "cache.spill.bytes"
    CACHE_DEDUP_HITS = "cache.dedup.hits"


class Counters:
    """A mergeable bag of named numeric counters and timers."""

    def __init__(self) -> None:
        self._values: dict[str, float] = defaultdict(float)

    # -- basic operations ---------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        self._values[name] += amount

    def set_max(self, name: str, value: float) -> None:
        """Record ``value`` if it exceeds the current counter (peaks)."""
        if value > self._values[name]:
            self._values[name] = value

    def get(self, name: str) -> float:
        return self._values.get(name, 0)

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def as_dict(self) -> dict[str, float]:
        return dict(self._values)

    def names(self) -> list[str]:
        return sorted(self._values)

    # -- timers -----------------------------------------------------------

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock duration of the block into ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._values[name] += time.perf_counter() - start

    # -- composition ---------------------------------------------------------

    def merge(self, other: "Counters") -> "Counters":
        """Fold ``other``'s counters into this one (peaks take the max)."""
        for name, value in other._values.items():
            if name.endswith(".peak"):
                self.set_max(name, value)
            else:
                self._values[name] += value
        return self

    def copy(self) -> "Counters":
        c = Counters()
        c._values = defaultdict(float, self._values)
        return c

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        interesting = {k: round(v, 4) for k, v in sorted(self._values.items())}
        return f"Counters({interesting})"

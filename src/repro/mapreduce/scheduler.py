"""Block-level task scheduling with locality preference.

Hadoop schedules one map task per HDFS block and prefers to place a task on
a node holding a replica of its block.  :class:`WaveScheduler` reproduces
that behaviour for the in-process engines: tasks are assigned in *waves*
(one wave = every node's map slots filled once), greedily matching local
splits to nodes before falling back to remote assignments.

The assignment also records locality statistics — the separate-storage
architecture experiment (Fig. 2(f)) derives its extra network traffic from
the non-local assignments this scheduler reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.hdfs.filesystem import InputSplit

__all__ = ["TaskAssignment", "ScheduleStats", "WaveScheduler"]


@dataclass(frozen=True, slots=True)
class TaskAssignment:
    """One map task bound to a node in a given wave."""

    task_id: int
    split: InputSplit
    node: str
    wave: int
    data_local: bool


@dataclass(slots=True)
class ScheduleStats:
    total_tasks: int = 0
    local_tasks: int = 0
    waves: int = 0

    @property
    def locality_rate(self) -> float:
        return self.local_tasks / self.total_tasks if self.total_tasks else 1.0


class WaveScheduler:
    """Assigns splits to compute nodes, locality first, wave by wave."""

    def __init__(self, compute_nodes: list[str], *, map_slots: int = 2) -> None:
        if not compute_nodes:
            raise ValueError("need at least one compute node")
        if map_slots < 1:
            raise ValueError("map_slots must be >= 1")
        self.compute_nodes = list(compute_nodes)
        self.map_slots = map_slots

    def schedule(self, splits: list[InputSplit]) -> tuple[list[TaskAssignment], ScheduleStats]:
        """Return assignments in execution order plus locality stats."""
        compute = set(self.compute_nodes)
        pending: deque[tuple[int, InputSplit]] = deque(enumerate(splits))
        by_node: dict[str, deque[tuple[int, InputSplit]]] = {
            n: deque() for n in self.compute_nodes
        }
        remote: deque[tuple[int, InputSplit]] = deque()
        for task_id, split in pending:
            local_candidates = [n for n in split.preferred_nodes if n in compute]
            if local_candidates:
                # Queue on the least-loaded replica holder.
                target = min(local_candidates, key=lambda n: len(by_node[n]))
                by_node[target].append((task_id, split))
            else:
                remote.append((task_id, split))

        assignments: list[TaskAssignment] = []
        stats = ScheduleStats(total_tasks=len(splits))
        wave = 0
        remaining = len(splits)
        while remaining > 0:
            scheduled_this_wave = 0
            for node in self.compute_nodes:
                for _ in range(self.map_slots):
                    if by_node[node]:
                        task_id, split = by_node[node].popleft()
                        local = True
                    elif remote:
                        task_id, split = remote.popleft()
                        local = False
                    else:
                        # Work stealing: help a loaded peer with a remote read.
                        donor = max(by_node.values(), key=len, default=None)
                        if donor is None or not donor:
                            break
                        # Only steal when the donor has a deep backlog;
                        # otherwise leave the task for its local node.
                        if len(donor) <= 1:
                            break
                        task_id, split = donor.pop()
                        local = node in split.preferred_nodes
                    assignments.append(
                        TaskAssignment(
                            task_id=task_id,
                            split=split,
                            node=node,
                            wave=wave,
                            data_local=local,
                        )
                    )
                    stats.local_tasks += int(local)
                    remaining -= 1
                    scheduled_this_wave += 1
            if scheduled_this_wave == 0 and remaining > 0:
                # Drain stragglers: assign leftovers round-robin regardless
                # of backlog depth.
                node_cycle = iter(self.compute_nodes * (remaining // len(self.compute_nodes) + 1))
                for queue in by_node.values():
                    while queue:
                        task_id, split = queue.popleft()
                        node = next(node_cycle)
                        local = node in split.preferred_nodes
                        assignments.append(
                            TaskAssignment(task_id, split, node, wave, local)
                        )
                        stats.local_tasks += int(local)
                        remaining -= 1
            wave += 1
        stats.waves = wave
        return assignments, stats

    def assign_reducers(self, num_reducers: int) -> dict[int, str]:
        """Round-robin reduce-partition placement over compute nodes."""
        return {
            p: self.compute_nodes[p % len(self.compute_nodes)]
            for p in range(num_reducers)
        }

"""Pull-based shuffle: reducers fetch completed map outputs.

Hadoop's reducers periodically poll a central service for completed map
tasks and then pull their partition's segment directly from each mapper's
local disk.  :class:`ShuffleService` is that central registry; fetching a
segment reads the mapper's disk (accounted there) and charges the network
transfer to the fetching task's counters.

The paper notes that under normal circumstances a segment is fetched "soon
after a mapper completes and so this data is often available in the
mapper's memory"; the ``serve_from_page_cache`` flag models that by
skipping the mapper-side disk read for fresh segments.  Re-fetches during
recovery are never that lucky: they always pay the disk read.

Fault tolerance: with a fault plan attached, fetches can fail transiently
(the fetcher backs off exponentially, capped, per
:class:`~repro.mapreduce.recovery.FetchRetryPolicy`); a segment that stays
unfetchable past the retry budget raises :class:`FetchFailedError` — the
"too many fetch failures" signal on which the engine re-executes the map
task.  ``invalidate`` / ``reset_partition`` support node-crash recovery:
losing a mapper's disk withdraws its outputs, losing a reducer clears its
partition's fetch marks so a fresh task can re-pull everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.io.disk import LocalDisk
from repro.io.runio import read_run
from repro.io.serialization import iter_frames
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.recovery import FetchRetryPolicy
from repro.mapreduce.sortmerge import MapOutput, MapOutputSegment

__all__ = ["FetchedSegment", "FetchFailedError", "ShuffleService"]


class FetchFailedError(RuntimeError):
    """A segment stayed unfetchable past the retry budget (output lost)."""

    def __init__(self, map_task: int, partition: int) -> None:
        super().__init__(
            f"segment (map {map_task}, partition {partition}) failed too many fetches"
        )
        self.map_task = map_task
        self.partition = partition


@dataclass(frozen=True, slots=True)
class FetchedSegment:
    """One segment delivered to a reducer."""

    map_task: int
    partition: int
    pairs: tuple[tuple[Any, Any], ...]
    nbytes: int


class ShuffleService:
    """Registry of completed map outputs, keyed by map task id."""

    def __init__(
        self,
        mapper_disks: dict[str, LocalDisk],
        *,
        serve_from_page_cache: bool = True,
        fault_plan: FaultPlan | None = None,
        retry_policy: FetchRetryPolicy | None = None,
    ) -> None:
        self.mapper_disks = mapper_disks
        self.serve_from_page_cache = serve_from_page_cache
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy or FetchRetryPolicy()
        self._completed: dict[int, MapOutput] = {}
        self._fetched: set[tuple[int, int]] = set()
        self._fetch_counts: dict[tuple[int, int], int] = {}
        self.network_bytes = 0
        self.fetch_failures = 0
        self.backoff_ms = 0.0
        self.refetched_bytes = 0

    # -- mapper side ------------------------------------------------------

    def register(self, output: MapOutput) -> None:
        """A map task announces completion (the 'completed mappers' poll)."""
        if output.task_id in self._completed:
            raise ValueError(f"map task {output.task_id} already registered")
        self._completed[output.task_id] = output

    def invalidate(self, map_task: int) -> None:
        """Withdraw a map task's output (its node died / files are gone).

        Fetch marks are kept: segments a reducer already pulled are safe at
        that reducer, so a re-registered re-execution only serves what is
        still missing — re-delivery is deduplicated at this layer.
        """
        self._completed.pop(map_task, None)

    @property
    def completed_maps(self) -> list[int]:
        return sorted(self._completed)

    def outputs_on(self, node: str) -> list[int]:
        """Completed map tasks whose output files live on ``node``."""
        return sorted(
            task_id
            for task_id, out in self._completed.items()
            if out.node == node
        )

    # -- reducer side -------------------------------------------------------

    def pending_fetches(self, partition: int) -> list[int]:
        """Map tasks with an unfetched segment for ``partition``."""
        return [
            task_id
            for task_id, out in sorted(self._completed.items())
            if partition in out.segments and (task_id, partition) not in self._fetched
        ]

    def reset_partition(self, partition: int) -> None:
        """Forget that ``partition``'s segments were fetched.

        Used when the reduce task holding them is lost: a fresh attempt
        must re-pull every segment from the mapper disks.
        """
        self._fetched = {key for key in self._fetched if key[1] != partition}

    def fetch(
        self,
        map_task: int,
        partition: int,
        counters: Counters | None = None,
        *,
        from_cache: bool | None = None,
    ) -> FetchedSegment:
        """Pull one segment from the mapper that produced it.

        Transient failures injected by the fault plan are retried with
        capped exponential backoff (simulated time, accumulated in
        :attr:`backoff_ms`); exceeding the retry budget raises
        :class:`FetchFailedError`.
        """
        key = (map_task, partition)
        if key in self._fetched:
            raise ValueError(f"segment {key} already fetched")
        output = self._completed[map_task]
        segment: MapOutputSegment = output.segments[partition]

        failures = 0
        while self.fault_plan is not None and self.fault_plan.take_fetch_fault(
            map_task, partition
        ):
            failures += 1
            self.fetch_failures += 1
            self.backoff_ms += self.retry_policy.backoff_ms(failures)
            if failures >= self.retry_policy.max_retries:
                raise FetchFailedError(map_task, partition)

        disk = self.mapper_disks[output.node]
        refetch = self._fetch_counts.get(key, 0) > 0
        use_cache = self.serve_from_page_cache if from_cache is None else from_cache
        if refetch:
            # A repeat pull during recovery: long past any page-cache
            # residency, and its bytes are rework, not first-time shuffle.
            use_cache = False
            self.refetched_bytes += segment.nbytes
        if use_cache:
            # Fresh output is still in the mapper's page cache; no disk read,
            # but the bytes still cross the network.
            pairs = tuple(iter_frames(disk.peek(segment.path)))
        else:
            pairs = tuple(read_run(disk, segment.path))
        self._fetched.add(key)
        self._fetch_counts[key] = self._fetch_counts.get(key, 0) + 1
        self.network_bytes += segment.nbytes
        if counters is not None:
            counters.inc(C.SHUFFLE_BYTES, 0)  # reducer adds on accept
        return FetchedSegment(
            map_task=map_task,
            partition=partition,
            pairs=pairs,
            nbytes=segment.nbytes,
        )

    def fetch_all(
        self,
        partition: int,
        counters: Counters | None = None,
        *,
        from_cache: bool | None = None,
    ) -> list[FetchedSegment]:
        """Pull every currently pending segment for ``partition``."""
        return [
            self.fetch(task_id, partition, counters, from_cache=from_cache)
            for task_id in self.pending_fetches(partition)
        ]

    def merge_stats(self, counters: Counters) -> None:
        """Fold fetch-retry and refetch accounting into the job counters."""
        if self.fetch_failures:
            counters.inc(C.SHUFFLE_FETCH_FAILURES, self.fetch_failures)
        if self.backoff_ms:
            counters.inc(C.SHUFFLE_BACKOFF_MS, self.backoff_ms)
        if self.refetched_bytes:
            counters.inc(C.BYTES_RESHUFFLED, self.refetched_bytes)

    def cleanup(self) -> None:
        """Delete served map-output files from the mapper disks."""
        for output in self._completed.values():
            disk = self.mapper_disks[output.node]
            for segment in output.segments.values():
                if disk.exists(segment.path):
                    disk.delete(segment.path)

"""Pull-based shuffle: reducers fetch completed map outputs.

Hadoop's reducers periodically poll a central service for completed map
tasks and then pull their partition's segment directly from each mapper's
local disk.  :class:`ShuffleService` is that central registry; fetching a
segment reads the mapper's disk (accounted there) and charges the network
transfer to the fetching task's counters.

The paper notes that under normal circumstances a segment is fetched "soon
after a mapper completes and so this data is often available in the
mapper's memory"; the ``serve_from_page_cache`` flag models that by
skipping the mapper-side disk read for fresh segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.io.disk import LocalDisk
from repro.io.runio import read_run
from repro.io.serialization import iter_frames
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.sortmerge import MapOutput, MapOutputSegment

__all__ = ["FetchedSegment", "ShuffleService"]


@dataclass(frozen=True, slots=True)
class FetchedSegment:
    """One segment delivered to a reducer."""

    map_task: int
    partition: int
    pairs: tuple[tuple[Any, Any], ...]
    nbytes: int


class ShuffleService:
    """Registry of completed map outputs, keyed by map task id."""

    def __init__(
        self,
        mapper_disks: dict[str, LocalDisk],
        *,
        serve_from_page_cache: bool = True,
    ) -> None:
        self.mapper_disks = mapper_disks
        self.serve_from_page_cache = serve_from_page_cache
        self._completed: dict[int, MapOutput] = {}
        self._fetched: set[tuple[int, int]] = set()
        self.network_bytes = 0

    # -- mapper side ------------------------------------------------------

    def register(self, output: MapOutput) -> None:
        """A map task announces completion (the 'completed mappers' poll)."""
        if output.task_id in self._completed:
            raise ValueError(f"map task {output.task_id} already registered")
        self._completed[output.task_id] = output

    @property
    def completed_maps(self) -> list[int]:
        return sorted(self._completed)

    # -- reducer side -------------------------------------------------------

    def pending_fetches(self, partition: int) -> list[int]:
        """Map tasks with an unfetched segment for ``partition``."""
        return [
            task_id
            for task_id, out in sorted(self._completed.items())
            if partition in out.segments and (task_id, partition) not in self._fetched
        ]

    def fetch(
        self, map_task: int, partition: int, counters: Counters | None = None
    ) -> FetchedSegment:
        """Pull one segment from the mapper that produced it."""
        key = (map_task, partition)
        if key in self._fetched:
            raise ValueError(f"segment {key} already fetched")
        output = self._completed[map_task]
        segment: MapOutputSegment = output.segments[partition]
        disk = self.mapper_disks[output.node]
        if self.serve_from_page_cache:
            # Fresh output is still in the mapper's page cache; no disk read,
            # but the bytes still cross the network.
            pairs = tuple(iter_frames(disk.peek(segment.path)))
        else:
            pairs = tuple(read_run(disk, segment.path))
        self._fetched.add(key)
        self.network_bytes += segment.nbytes
        if counters is not None:
            counters.inc(C.SHUFFLE_BYTES, 0)  # reducer adds on accept
        return FetchedSegment(
            map_task=map_task,
            partition=partition,
            pairs=pairs,
            nbytes=segment.nbytes,
        )

    def fetch_all(self, partition: int, counters: Counters | None = None) -> list[FetchedSegment]:
        """Pull every currently pending segment for ``partition``."""
        return [
            self.fetch(task_id, partition, counters)
            for task_id in self.pending_fetches(partition)
        ]

    def cleanup(self) -> None:
        """Delete served map-output files from the mapper disks."""
        for output in self._completed.values():
            disk = self.mapper_disks[output.node]
            for segment in output.segments.values():
                if disk.exists(segment.path):
                    disk.delete(segment.path)

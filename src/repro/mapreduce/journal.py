"""Crash-consistent coordinator journal: a write-ahead log of decisions.

Every engine in this repository keeps its entire world — HDFS blocks,
node disks, shuffle state — in process memory, so killing the
coordinator loses the run.  :class:`JobJournal` is the one durable
artefact: an append-only log on the *real* filesystem recording every
coordinator decision (job-spec fingerprint, task grants, map/reduce
commits, shuffle completions, checkpoint sequence numbers, the final
output commit).  A resumed session rebuilds the deterministic in-memory
world from the original inputs, then uses the journal to skip committed
work: committed reduce partitions emit their journaled records without
recomputation, and one-pass checkpoint records restore reduce state so
only the post-checkpoint suffix of deliveries is re-absorbed.

Record wire format (one segment file)::

    <u32 payload length> <u32 crc32(payload)> <payload = pickle((kind, fields))>

Segments are written as ``seg-NNNNN.open`` and atomically renamed to
``seg-NNNNN.wal`` on :meth:`JobJournal.finalize` (flush + fsync +
``os.replace``).  Opening a journal truncates any torn tail of a
crashed session's ``.open`` segment at the last whole, checksum-valid
record, then seals it — so a journal directory always converges to
immutable ``.wal`` history plus at most one live segment.

The :mod:`repro.testing.chaos` harness drives the ``crash_at`` hook:
append site ``k`` raises :class:`CoordinatorCrash` either after the
record is durable (``crash_mode="after"``) or mid-write with only a
record prefix on disk (``crash_mode="torn"``), which is how the
crashpoint sweep explores every commit boundary.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.mapreduce.counters import C, Counters

__all__ = [
    "CoordinatorCrash",
    "JournalCorruptError",
    "JournalMismatchError",
    "JournalRecord",
    "JournalState",
    "JobJournal",
    "NullJournal",
    "NULL_JOURNAL",
    "job_fingerprint",
    "output_digest",
    "emit_committed_output",
    "K_RUN_CONFIG",
    "K_JOB_SPEC",
    "K_TASK_GRANT",
    "K_MAP_COMMIT",
    "K_SHUFFLE_COMMIT",
    "K_CHECKPOINT",
    "K_REDUCE_COMMIT",
    "K_OUTPUT_COMMIT",
]

_HEADER = struct.Struct("<II")  # (payload length, crc32 of payload)

# Record kinds, in rough commit order within one run.
K_RUN_CONFIG = "run-config"
K_JOB_SPEC = "job-spec"
K_TASK_GRANT = "task-grant"
K_MAP_COMMIT = "map-commit"
K_SHUFFLE_COMMIT = "shuffle-commit"
K_CHECKPOINT = "checkpoint"
K_REDUCE_COMMIT = "reduce-commit"
K_OUTPUT_COMMIT = "output-commit"

#: Commit kinds that must appear at most once per key across the whole
#: journal (the chaos harness's exactly-once invariant).
EXACTLY_ONCE_KINDS = (K_REDUCE_COMMIT, K_OUTPUT_COMMIT)


class CoordinatorCrash(RuntimeError):
    """Injected coordinator death at a journal crashpoint."""

    def __init__(self, site: int, kind: str) -> None:
        super().__init__(f"injected coordinator crash at append site {site} ({kind})")
        self.site = site
        self.kind = kind


class JournalCorruptError(RuntimeError):
    """A finalized (immutable) segment failed its checksum or framing."""


class JournalMismatchError(RuntimeError):
    """The journal belongs to a different job/engine than the one resuming."""


@dataclass(frozen=True, slots=True)
class JournalRecord:
    """One durable coordinator decision: global ordinal, kind, payload."""

    seq: int
    kind: str
    fields: dict[str, Any]


@dataclass(slots=True)
class JournalState:
    """The replayable view of a journal: everything a resume must skip."""

    run_config: dict[str, Any] | None = None
    spec: str | None = None
    engine: str | None = None
    task_grants: dict[int, str] = field(default_factory=dict)
    map_commits: dict[int, str] = field(default_factory=dict)
    shuffle_commits: set[int] = field(default_factory=set)
    #: partition -> (delivery-log seq covered, serialized reduce state)
    checkpoints: dict[int, tuple[int, bytes]] = field(default_factory=dict)
    #: partition -> committed output records (exactly-once)
    reduce_commits: dict[int, tuple[Any, ...]] = field(default_factory=dict)
    output_commits: int = 0
    output_digest: str | None = None
    counts: dict[str, int] = field(default_factory=dict)
    truncated_bytes: int = 0

    def complete(self, num_partitions: int) -> bool:
        """True when every reduce partition has a committed output."""
        return all(p in self.reduce_commits for p in range(num_partitions))

    def check_spec(self, fingerprint: str) -> None:
        """Refuse to resume a journal recorded for a different job."""
        if self.spec is not None and self.spec != fingerprint:
            raise JournalMismatchError(
                f"journal was recorded for job spec {self.spec}, "
                f"resuming job has spec {fingerprint}"
            )


def _parse_frames(data: bytes) -> tuple[list[tuple[str, dict[str, Any]]], int]:
    """Decode whole, checksum-valid records; return them + the valid length."""
    out: list[tuple[str, dict[str, Any]]] = []
    offset = 0
    n = len(data)
    while True:
        if offset + _HEADER.size > n:
            break
        length, crc = _HEADER.unpack_from(data, offset)
        end = offset + _HEADER.size + length
        if end > n:
            break
        payload = data[offset + _HEADER.size : end]
        if zlib.crc32(payload) != crc:
            break
        kind, fields = pickle.loads(payload)
        out.append((kind, fields))
        offset = end
    return out, offset


class JobJournal:
    """Append-only, CRC-checksummed journal over a real directory.

    ``crash_at``/``crash_mode`` inject a deterministic coordinator death
    at the Nth append of this session (see :class:`CoordinatorCrash`);
    ``sync=True`` additionally fsyncs every append (finalize always
    fsyncs before the atomic rename).
    """

    enabled = True

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        sync: bool = False,
        crash_at: int | None = None,
        crash_mode: str = "after",
    ) -> None:
        if crash_at is not None and crash_at < 1:
            raise ValueError("crash_at is 1-based")
        if crash_mode not in ("after", "torn"):
            raise ValueError("crash_mode must be 'after' or 'torn'")
        self.path = os.fspath(path)
        self.sync = sync
        self.crash_at = crash_at
        self.crash_mode = crash_mode
        self._records: list[JournalRecord] = []
        self._fh: Any = None
        self.appends = 0  # append sites visited by *this* session
        self.bytes_written = 0
        self.truncated_bytes = 0
        os.makedirs(self.path, exist_ok=True)
        self._segment_index = self._load_segments()

    # -- recovery (open path) ---------------------------------------------

    def _load_segments(self) -> int:
        """Replay existing segments; seal torn ``.open`` tails; next index."""
        max_index = -1
        for fname in sorted(os.listdir(self.path)):
            stem, dot, ext = fname.rpartition(".")
            if ext not in ("wal", "open") or not stem.startswith("seg-"):
                continue
            index = int(stem[len("seg-") :])
            max_index = max(max_index, index)
            full = os.path.join(self.path, fname)
            with open(full, "rb") as fh:
                data = fh.read()
            parsed, valid = _parse_frames(data)
            if valid != len(data):
                if ext == "wal":
                    raise JournalCorruptError(
                        f"finalized segment {fname} corrupt at byte {valid}"
                    )
                # Torn tail from a crashed session: drop the partial record.
                self.truncated_bytes += len(data) - valid
                os.truncate(full, valid)
            for kind, fields in parsed:
                self._records.append(
                    JournalRecord(len(self._records) + 1, kind, fields)
                )
            if ext == "open":
                # Seal the crashed session's segment: history is immutable.
                os.replace(full, os.path.join(self.path, f"seg-{index:05d}.wal"))
        return max_index + 1

    # -- introspection ------------------------------------------------------

    @property
    def records(self) -> tuple[JournalRecord, ...]:
        return tuple(self._records)

    def resume_state(self) -> JournalState:
        state = JournalState(truncated_bytes=self.truncated_bytes)
        for rec in self._records:
            f = rec.fields
            if rec.kind == K_RUN_CONFIG:
                state.run_config = dict(f)
            elif rec.kind == K_JOB_SPEC:
                state.spec = f["spec"]
                state.engine = f.get("engine")
            elif rec.kind == K_TASK_GRANT:
                state.task_grants[f["task"]] = f["node"]
            elif rec.kind == K_MAP_COMMIT:
                state.map_commits[f["task"]] = f["node"]
            elif rec.kind == K_SHUFFLE_COMMIT:
                state.shuffle_commits.add(f["partition"])
            elif rec.kind == K_CHECKPOINT:
                state.checkpoints[f["partition"]] = (f["seq"], f["payload"])
            elif rec.kind == K_REDUCE_COMMIT:
                state.reduce_commits[f["partition"]] = tuple(f["records"])
            elif rec.kind == K_OUTPUT_COMMIT:
                state.output_commits += 1
                state.output_digest = f.get("digest")
            state.counts[rec.kind] = state.counts.get(rec.kind, 0) + 1
        return state

    # -- writing --------------------------------------------------------------

    def _open_segment_path(self) -> str:
        return os.path.join(self.path, f"seg-{self._segment_index:05d}.open")

    def _ensure_segment(self) -> Any:
        if self._fh is None:
            # Lazy: a session that appends nothing leaves the journal
            # byte-identical, which is what makes double-replay idempotent.
            self._fh = open(self._open_segment_path(), "ab")
        return self._fh

    def _drop_handle(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def append(self, kind: str, **fields: Any) -> int:
        """Durably record one decision; returns its global sequence number.

        This is the crashpoint: when ``crash_at`` names this append, the
        session dies here — after the record is durable (``"after"``) or
        with only a torn prefix on disk (``"torn"``).
        """
        payload = pickle.dumps((kind, dict(fields)), protocol=pickle.HIGHEST_PROTOCOL)
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self.appends += 1
        crash = self.crash_at is not None and self.appends == self.crash_at
        fh = self._ensure_segment()
        if crash and self.crash_mode == "torn":
            fh.write(frame[: max(1, len(frame) // 2)])
            fh.flush()
            self._drop_handle()
            raise CoordinatorCrash(self.appends, kind)
        fh.write(frame)
        fh.flush()
        if self.sync:
            os.fsync(fh.fileno())
        self.bytes_written += len(frame)
        rec = JournalRecord(len(self._records) + 1, kind, dict(fields))
        self._records.append(rec)
        if crash:
            self._drop_handle()
            raise CoordinatorCrash(self.appends, kind)
        return rec.seq

    def finalize(self) -> None:
        """Seal this session's segment: flush, fsync, atomic rename to .wal."""
        if self._fh is None:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._drop_handle()
        final = os.path.join(self.path, f"seg-{self._segment_index:05d}.wal")
        os.replace(self._open_segment_path(), final)
        self._segment_index += 1

    def close(self) -> None:
        """Drop the handle without sealing (the crash-without-exception path)."""
        self._drop_handle()


class NullJournal:
    """The journal-off path: every hook is a no-op with zero overhead."""

    enabled = False
    appends = 0
    bytes_written = 0
    truncated_bytes = 0

    def append(self, kind: str, **fields: Any) -> int:
        return 0

    def resume_state(self) -> JournalState:
        return JournalState()

    def finalize(self) -> None:
        return None

    def close(self) -> None:
        return None


NULL_JOURNAL = NullJournal()


def job_fingerprint(job: Any, engine: str) -> str:
    """Stable identity of (engine, job shape, config) for resume safety.

    Functions (map/reduce closures) cannot be hashed portably, so the
    fingerprint covers the declarative surface: engine, job type and
    name, input/output paths, and every config dataclass field.  Good
    enough to refuse resuming a sessionization journal with an
    inverted-index job, which is the failure mode that matters.
    """
    bits = [
        engine,
        type(job).__name__,
        str(getattr(job, "name", "")),
        str(getattr(job, "input_path", "")),
        str(getattr(job, "output_path", "")),
    ]
    cfg = getattr(job, "config", None)
    if cfg is not None and dataclasses.is_dataclass(cfg):
        for f in dataclasses.fields(cfg):
            bits.append(f"{f.name}={getattr(cfg, f.name)!r}")
    return hashlib.sha256("|".join(bits).encode("utf-8")).hexdigest()[:16]


def output_digest(hdfs: Any, path: str) -> str:
    """SHA-256 over the output file's raw block bytes, in block order."""
    h = hashlib.sha256()
    for block in hdfs.namenode.blocks_of(path):
        h.update(hdfs.read_block_bytes(block.block_id))
    return h.hexdigest()


def emit_committed_output(
    hdfs: Any,
    job: Any,
    reducer_nodes: dict[int, str],
    state: JournalState,
    counters: Counters,
    tracer: Any,
) -> int:
    """Rebuild the output file purely from journaled reduce commits.

    Partitions are emitted in sorted order and empty outputs skipped —
    the exact append pattern of a live run — so the rebuilt file is
    byte-identical to the one the crashed run would have written.
    """
    hdfs.namenode.create_file(job.output_path, codec_name="binary")
    output_records = 0
    with tracer.span(
        "journal-replay", "journal", task="output", partitions=len(state.reduce_commits)
    ) as replay_span:
        for partition in sorted(state.reduce_commits):
            records = list(state.reduce_commits[partition])
            output_records += len(records)
            if records:
                hdfs.append_block(
                    job.output_path, records, writer_node=reducer_nodes[partition]
                )
        replay_span.set_cost(max(1, output_records))
        replay_span.set(records=output_records)
    counters.inc(C.JOURNAL_REPLAYED_COMMITS, len(state.reduce_commits))
    counters.inc(C.OUTPUT_BYTES, hdfs.file_bytes(job.output_path))
    return output_records

"""Recovery coordination shared by all three engines.

The JobTracker-side half of fault tolerance: attempt bookkeeping (which
task attempt is allowed to fail, where retries land), output lineage
(which node holds which completed task's output — the metadata that decides
what a node crash destroys), straggler detection for speculative
execution, and the replicated logs that make push-based engines
recoverable at all.

Two persistence primitives back the push engines (HOP and one-pass),
whose reducers receive map output that is never kept at the mappers:

* :class:`PartitionLog` — a replicated, disk-accounted append log of
  every chunk delivered to a reduce partition.  Reduce recovery replays
  it; this is the "map output persisted for fault tolerance" of §II,
  relocated to where a push architecture can actually use it.
* :class:`CheckpointStore` — replicated snapshots of the incremental-hash
  reduce state, so one-pass recovery replays only the post-checkpoint
  suffix of the log instead of the whole input (the overhead the paper's
  §I weighs against infinite streams).

All durations used by speculation are *simulated* (bytes / rate x
slow-node multiplier), so recovery decisions — and therefore results and
counters — are deterministic for a given fault plan.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.io.disk import LocalDisk
from repro.io.runio import stream_run, write_run
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.faults import FaultPlan, TaskFailure
from repro.obs.log import get_logger
from repro.obs.tracer import NULL_TRACER

_log = get_logger("recovery")

__all__ = [
    "FetchRetryPolicy",
    "SpeculationPolicy",
    "StragglerDetector",
    "TaskLineage",
    "RecoveryManager",
    "PartitionLog",
    "CheckpointStore",
]


@dataclass(frozen=True, slots=True)
class FetchRetryPolicy:
    """Capped exponential backoff for transient shuffle fetch failures.

    Mirrors Hadoop's fetch retry: back off ``base * 2^(attempt-1)`` up to
    ``max_backoff_ms``; after ``max_retries`` consecutive failures the
    segment's map output is declared lost and the map task re-executes.
    Backoff time is simulated (accumulated in a counter, never slept).
    """

    max_retries: int = 4
    base_backoff_ms: float = 100.0
    max_backoff_ms: float = 3200.0

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.base_backoff_ms <= 0 or self.max_backoff_ms < self.base_backoff_ms:
            raise ValueError("backoff bounds must satisfy 0 < base <= max")

    def backoff_ms(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.base_backoff_ms * 2 ** (attempt - 1), self.max_backoff_ms)


@dataclass(frozen=True, slots=True)
class SpeculationPolicy:
    """When to launch a backup attempt for a suspected straggler."""

    #: Launch a backup when a task's estimated duration exceeds this
    #: multiple of the mean completed-task duration.
    slowdown_threshold: float = 1.5
    #: Progress estimates need a baseline; don't speculate before this
    #: many tasks have completed.
    min_completed: int = 2
    #: Simulated processing rate used to turn input bytes into durations.
    base_rate_bytes_per_ms: float = 64 * 1024.0

    def __post_init__(self) -> None:
        if self.slowdown_threshold <= 1.0:
            raise ValueError("slowdown_threshold must be > 1.0")
        if self.min_completed < 1:
            raise ValueError("min_completed must be >= 1")
        if self.base_rate_bytes_per_ms <= 0:
            raise ValueError("base_rate_bytes_per_ms must be positive")


class StragglerDetector:
    """Rolling mean of completed-task durations; flags outliers."""

    def __init__(self, policy: SpeculationPolicy) -> None:
        self.policy = policy
        self._total_ms = 0.0
        self._completed = 0

    def record(self, duration_ms: float) -> None:
        self._total_ms += duration_ms
        self._completed += 1

    @property
    def completed(self) -> int:
        return self._completed

    @property
    def mean_ms(self) -> float:
        return self._total_ms / self._completed if self._completed else 0.0

    def is_straggler(self, estimate_ms: float) -> bool:
        """Would this task run long enough to justify a backup attempt?"""
        if self._completed < self.policy.min_completed:
            return False
        return estimate_ms > self.policy.slowdown_threshold * self.mean_ms


class TaskLineage:
    """Which node holds which completed map task's output, and how much.

    This is the JobTracker's view: when a node is lost, ``tasks_on`` names
    exactly the completed work that died with it.
    """

    def __init__(self) -> None:
        self._node: dict[int, str] = {}
        self._bytes: dict[int, int] = {}

    def record(self, task_id: int, node: str, nbytes: int) -> None:
        self._node[task_id] = node
        self._bytes[task_id] = nbytes

    def node_of(self, task_id: int) -> str | None:
        return self._node.get(task_id)

    def bytes_of(self, task_id: int) -> int:
        return self._bytes.get(task_id, 0)

    def tasks_on(self, node: str) -> list[int]:
        return sorted(t for t, n in self._node.items() if n == node)

    def forget(self, task_id: int) -> None:
        self._node.pop(task_id, None)
        self._bytes.pop(task_id, None)

    def __len__(self) -> int:
        return len(self._node)


AttemptFn = Callable[[str], Any]
DiscardFn = Callable[[str, Any], None]


class RecoveryManager:
    """Shared attempt loops: map retries + speculation, reduce retries.

    Both the Hadoop and one-pass engines route every task execution
    through this one loop, so attempt semantics (who is charged, where
    retries land, when the job aborts) cannot drift between engines.
    ``attempt_fn(node)`` runs one attempt and returns its result with the
    work already charged to the job — recovery costs real resources;
    ``discard_fn(node, result)`` cleans up a dead or losing attempt.
    """

    def __init__(
        self,
        fault_plan: FaultPlan | None,
        counters: Counters,
        *,
        speculation: SpeculationPolicy | None = None,
        tracer: Any = NULL_TRACER,
    ) -> None:
        self.fault_plan = fault_plan
        self.counters = counters
        self.speculation = speculation or SpeculationPolicy()
        self._detector = StragglerDetector(self.speculation)
        self.tracer = tracer

    # -- map side ------------------------------------------------------------

    def simulated_task_ms(self, input_bytes: int, node: str) -> float:
        """Deterministic duration model: bytes / rate x node slowdown."""
        base = input_bytes / self.speculation.base_rate_bytes_per_ms
        slowdown = self.fault_plan.slowdown(node) if self.fault_plan else 1.0
        return base * slowdown

    def run_map_task(
        self,
        task_id: int,
        preferred_node: str,
        live_nodes: list[str],
        input_bytes: int,
        attempt_fn: AttemptFn,
        discard_fn: DiscardFn,
    ) -> tuple[str, Any]:
        """Run one map task to success; returns ``(winning node, result)``.

        A killed attempt's work is charged before its output is discarded
        and the task is retried on the next live candidate, as Hadoop's
        JobTracker does.  With slow nodes in the plan, a successful but
        straggling attempt races a speculative backup (first finisher
        wins, the loser's work is counted as waste).
        """
        plan = self.fault_plan
        candidates = [n for n in (preferred_node,) if n in live_nodes]
        candidates += [n for n in live_nodes if n != preferred_node]
        if not candidates:
            raise RuntimeError(f"map task {task_id}: no live nodes to run on")
        attempts = plan.max_attempts if plan is not None else 1
        for attempt_idx in range(attempts):
            node = candidates[attempt_idx % len(candidates)]
            dies = False
            if plan is not None:
                try:
                    plan.start_map_attempt(task_id)
                except TaskFailure:
                    dies = True
            result = attempt_fn(node)
            if dies:
                # The attempt died before its completion report: its output
                # is gone, but the work it burned stays on the books.
                discard_fn(node, result)
                self.counters.inc(C.MAP_TASK_RETRIES)
                self.tracer.event(
                    "task.killed",
                    "recovery",
                    node=node,
                    task=f"map:{task_id:05d}",
                    attempt=attempt_idx,
                )
                _log.warn("map.task.killed", task=task_id, node=node, attempt=attempt_idx)
                continue
            return self._maybe_speculate(
                task_id, node, live_nodes, input_bytes, attempt_fn, discard_fn, result
            )
        raise RuntimeError(f"map task {task_id} exhausted {attempts} attempts")

    def _maybe_speculate(
        self,
        task_id: int,
        node: str,
        live_nodes: list[str],
        input_bytes: int,
        attempt_fn: AttemptFn,
        discard_fn: DiscardFn,
        result: Any,
    ) -> tuple[str, Any]:
        plan = self.fault_plan
        if plan is None or not plan.slow_nodes:
            return node, result
        task = f"map:{task_id:05d}"
        duration = self.simulated_task_ms(input_bytes, node)
        backup_node = self._fastest_backup(node, live_nodes)
        if (
            backup_node is not None
            and self._detector.is_straggler(duration)
            and plan.slowdown(backup_node) < plan.slowdown(node)
        ):
            self.counters.inc(C.SPECULATIVE_LAUNCHED)
            self.tracer.event(
                "speculative.launched",
                "recovery",
                node=backup_node,
                task=task,
                straggler=node,
            )
            _log.info(
                "speculative.launched", task=task_id, backup=backup_node, straggler=node
            )
            backup_result = attempt_fn(backup_node)
            backup_ms = self.simulated_task_ms(input_bytes, backup_node)
            # The backup cannot start until the straggler is *detected*,
            # which takes roughly one mean task duration — so it races the
            # original's remaining time, not its full duration.  A mild
            # straggler (slowdown just past the threshold) therefore loses.
            if self._detector.mean_ms + backup_ms < duration:
                # Backup finishes first: kill the original (the loser).
                discard_fn(node, result)
                self.counters.inc(C.SPECULATIVE_WINS)
                self.counters.inc(C.SPECULATIVE_WASTED_MS, duration)
                self.tracer.event(
                    "speculative.win", "recovery", node=backup_node, task=task
                )
                node, result, duration = backup_node, backup_result, backup_ms
            else:
                discard_fn(backup_node, backup_result)
                self.counters.inc(C.SPECULATIVE_WASTED_MS, backup_ms)
                self.tracer.event(
                    "speculative.lost", "recovery", node=backup_node, task=task
                )
        self._detector.record(duration)
        return node, result

    def _fastest_backup(self, node: str, live_nodes: list[str]) -> str | None:
        assert self.fault_plan is not None
        others = [n for n in live_nodes if n != node]
        if not others:
            return None
        return min(others, key=lambda n: (self.fault_plan.slowdown(n), n))

    # -- reduce side -------------------------------------------------------------

    def run_reduce_task(
        self, partition: int, attempt_fn: Callable[[int], Any]
    ) -> Any:
        """Run one reduce task to success.

        ``attempt_fn(attempt_idx)`` executes one attempt — for retries
        (``attempt_idx > 0``) the engine rebuilds the task's input by
        re-fetching map output or replaying its delivery log.
        """
        plan = self.fault_plan
        attempts = plan.max_attempts if plan is not None else 1
        for attempt_idx in range(attempts):
            dies = False
            if plan is not None:
                try:
                    plan.start_reduce_attempt(partition)
                except TaskFailure:
                    dies = True
            result = attempt_fn(attempt_idx)
            if dies:
                self.counters.inc(C.REDUCE_TASK_RETRIES)
                self.tracer.event(
                    "task.killed",
                    "recovery",
                    task=f"reduce:{partition:03d}",
                    attempt=attempt_idx,
                )
                _log.warn("reduce.task.killed", partition=partition, attempt=attempt_idx)
                continue
            return result
        raise RuntimeError(f"reduce task {partition} exhausted {attempts} attempts")


@dataclass(frozen=True, slots=True)
class _LogEntry:
    seq: int
    path: str
    nbytes: int
    records: int


class PartitionLog:
    """Replicated append log of chunks delivered to one reduce partition.

    Every chunk a mapper pushes is also written (via real, accounted disk
    I/O) to ``replication`` node disks before delivery counts as durable —
    the push-engine analogue of Hadoop's synchronous map-output write.
    ``replay`` streams entries back from the first surviving replica, so
    recovery tolerates losing ``replication - 1`` of the log's nodes.
    """

    def __init__(
        self,
        partition: int,
        replicas: list[tuple[str, LocalDisk]],
        counters: Counters,
    ) -> None:
        if not replicas:
            raise ValueError("PartitionLog needs at least one replica disk")
        self.partition = partition
        self.replicas = list(replicas)
        self.counters = counters
        self._entries: list[_LogEntry] = []

    def append(self, pairs: list[tuple[Any, Any]], nbytes: int) -> int:
        """Durably log one delivered chunk; returns its sequence number."""
        seq = len(self._entries) + 1
        path = f"faultlog/p{self.partition:03d}/c{seq:06d}"
        written = 0
        for _node, disk in self.replicas:
            written = write_run(disk, path, pairs)
            self.counters.inc(C.LOG_BYTES, written)
        self._entries.append(_LogEntry(seq, path, written, len(pairs)))
        return seq

    @property
    def last_seq(self) -> int:
        return len(self._entries)

    @property
    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self._entries)

    def replay(
        self, after_seq: int = 0
    ) -> Iterator[tuple[int, list[tuple[Any, Any]], int]]:
        """Stream logged chunks with ``seq > after_seq`` from a survivor."""
        for entry in self._entries:
            if entry.seq <= after_seq:
                continue
            yield entry.seq, self._read_entry(entry), entry.nbytes

    def _read_entry(self, entry: _LogEntry) -> list[tuple[Any, Any]]:
        """Read one logged chunk, skipping lost *and corrupt* replicas.

        A torn write leaves a truncated trailing frame; ``stream_run``
        raises for it, and a replica whose record count disagrees with
        the log's own bookkeeping is equally untrustworthy.  Either way
        the next replica is tried; only when none is intact does the
        entry count as lost.
        """
        for _node, disk in self.replicas:
            if not disk.exists(entry.path):
                continue
            try:
                pairs = list(stream_run(disk, entry.path))
            except ValueError:
                self.counters.inc(C.LOG_REPLICAS_REJECTED)
                continue
            if len(pairs) != entry.records:
                self.counters.inc(C.LOG_REPLICAS_REJECTED)
                continue
            return pairs
        raise FileNotFoundError(
            f"all {len(self.replicas)} replicas of log entry {entry.path} "
            f"are gone or corrupt"
        )

    def replace_replica(self, node: str, new_node: str, new_disk: LocalDisk) -> None:
        """Swap a dead replica holder for a live one.

        Only future appends land on the new disk; history is served by the
        surviving replica — so the log tolerates one crash per entry, like
        2-way replicated HDFS.
        """
        self.replicas = [
            (new_node, new_disk) if n == node else (n, d) for n, d in self.replicas
        ]

    def cleanup(self) -> None:
        for _node, disk in self.replicas:
            disk.delete_prefix(f"faultlog/p{self.partition:03d}/")


class CheckpointStore:
    """Replicated snapshots of one partition's incremental reduce state.

    Each checkpoint is tagged with the delivery-log sequence number it
    covers; recovery restores the newest surviving checkpoint and replays
    only the log suffix past it.
    """

    def __init__(
        self,
        partition: int,
        replicas: list[tuple[str, LocalDisk]],
        counters: Counters,
    ) -> None:
        if not replicas:
            raise ValueError("CheckpointStore needs at least one replica disk")
        self.partition = partition
        self.replicas = list(replicas)
        self.counters = counters
        self._saved: list[tuple[int, str]] = []

    #: 4-byte CRC32 header guarding each checkpoint payload against torn
    #: writes and bit rot; a replica that fails the check is rejected and
    #: recovery falls back to another replica or an older checkpoint.
    _CRC = struct.Struct("<I")

    def save(self, seq: int, payload: bytes) -> None:
        """Persist a state snapshot covering log entries ``<= seq``."""
        path = f"faultchk/p{self.partition:03d}/s{seq:06d}"
        framed = self._CRC.pack(zlib.crc32(payload)) + payload
        for _node, disk in self.replicas:
            disk.write(path, framed, overwrite=True)
            self.counters.inc(C.CHECKPOINT_BYTES, len(payload))
        self._saved.append((seq, path))
        self.counters.inc(C.CHECKPOINTS)

    def latest(self) -> tuple[int, bytes] | None:
        """Newest surviving *intact* checkpoint as ``(seq, payload)``.

        Replicas failing the CRC check are rejected; if every replica of
        the newest checkpoint is corrupt, the next-older one is tried.
        """
        for seq, path in reversed(self._saved):
            for _node, disk in self.replicas:
                if not disk.exists(path):
                    continue
                framed = disk.read(path)
                if len(framed) < self._CRC.size:
                    self.counters.inc(C.CHECKPOINT_REJECTED)
                    continue
                (crc,) = self._CRC.unpack_from(framed)
                payload = framed[self._CRC.size :]
                if zlib.crc32(payload) != crc:
                    self.counters.inc(C.CHECKPOINT_REJECTED)
                    continue
                return seq, payload
        return None

    def replace_replica(self, node: str, new_node: str, new_disk: LocalDisk) -> None:
        """Swap a dead replica holder for a live one (future saves only)."""
        self.replicas = [
            (new_node, new_disk) if n == node else (n, d) for n, d in self.replicas
        ]

    def cleanup(self) -> None:
        for _node, disk in self.replicas:
            disk.delete_prefix(f"faultchk/p{self.partition:03d}/")

"""Fault injection: the schedule of everything that goes wrong.

The paper leans on MapReduce's fault-tolerance story twice: map output is
written synchronously *because* "a mapper completes after its output has
been persisted for fault tolerance", and the one-pass design explicitly
excludes infinite streams "due to the overhead of fault tolerance".  This
module makes that story executable: a :class:`FaultPlan` schedules task
attempts to fail, whole nodes to crash, shuffle fetches to time out and
nodes to run slow; the engines recover (via
:mod:`repro.mapreduce.recovery`) and the rework shows up in the counters.

Failures are deterministic — tests inject exact attempt counts (or derive
them from a seed) and verify both that answers are unaffected and that the
recovery work is visible in the counters.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["TaskFailure", "FaultPlan"]


class TaskFailure(RuntimeError):
    """Raised inside a task attempt that the fault plan kills."""

    def __init__(self, kind: str, task_id: int, attempt: int) -> None:
        super().__init__(f"{kind} task {task_id} failed (attempt {attempt})")
        self.kind = kind
        self.task_id = task_id
        self.attempt = attempt


@dataclass(slots=True)
class FaultPlan:
    """Which task attempts die, which nodes crash, which fetches fail.

    ``map_failures[task_id] = n`` kills the first ``n`` attempts of that
    map task; the (n+1)-th attempt succeeds.  ``reduce_failures`` does the
    same for reduce partitions.  ``max_attempts`` bounds re-execution
    (Hadoop's ``mapred.map.max.attempts``, default 4): a task that would
    exceed it aborts the job.

    ``node_crashes[node] = k`` kills the whole node once ``k`` map tasks
    have completed cluster-wide: its disks are wiped, its HDFS replicas
    are lost, and every completed map task that ran there is re-executed
    on the survivors (Hadoop's TaskTracker-loss semantics).

    ``shuffle_failures[(map_task, partition)] = n`` makes the first ``n``
    fetches of that shuffle segment fail transiently; the fetcher backs
    off exponentially and, past its retry budget, declares the map output
    lost (Hadoop's "too many fetch failures"), triggering map
    re-execution.

    ``slow_nodes[node] = m`` multiplies the node's simulated task duration
    by ``m``; the engines' straggler detector launches speculative backup
    attempts against it (kill-the-loser semantics).

    ``torn_writes[prefix] = n`` truncates the next ``n`` disk writes to
    paths under ``prefix`` (a torn page: only the leading half of the
    bytes lands); ``short_reads[prefix] = n`` cuts the next ``n`` reads
    short the same way.  The engines attach the plan to the node disks
    (:attr:`~repro.io.disk.LocalDisk.fault_injector`), so checkpoint and
    partition-log corruption recovery runs under the same seeded-fault
    contract as every other failure mode.
    """

    map_failures: dict[int, int] = field(default_factory=dict)
    reduce_failures: dict[int, int] = field(default_factory=dict)
    node_crashes: dict[str, int] = field(default_factory=dict)
    shuffle_failures: dict[tuple[int, int], int] = field(default_factory=dict)
    slow_nodes: dict[str, float] = field(default_factory=dict)
    torn_writes: dict[str, int] = field(default_factory=dict)
    short_reads: dict[str, int] = field(default_factory=dict)
    max_attempts: int = 4
    _attempts: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    _reduce_attempts: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    _fetch_faults_left: dict[tuple[int, int], int] = field(default_factory=dict)
    _crashed: set[str] = field(default_factory=set)
    _torn_left: dict[str, int] = field(default_factory=dict)
    _short_left: dict[str, int] = field(default_factory=dict)
    torn_writes_injected: int = 0
    short_reads_injected: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        for task_id, n in self.map_failures.items():
            if n < 0:
                raise ValueError(f"negative failure count for map task {task_id}")
        for partition, n in self.reduce_failures.items():
            if n < 0:
                raise ValueError(
                    f"negative failure count for reduce partition {partition}"
                )
        for node, k in self.node_crashes.items():
            if k < 1:
                raise ValueError(f"node {node!r} must crash after >= 1 map tasks")
        for key, n in self.shuffle_failures.items():
            if n < 0:
                raise ValueError(f"negative fetch-failure count for segment {key}")
        for node, m in self.slow_nodes.items():
            if m < 1.0:
                raise ValueError(f"slowdown for {node!r} must be >= 1.0")
        for faults in (self.torn_writes, self.short_reads):
            for prefix, n in faults.items():
                if n < 0:
                    raise ValueError(f"negative disk-fault count for {prefix!r}")
        self._fetch_faults_left = dict(self.shuffle_failures)
        self._torn_left = dict(self.torn_writes)
        self._short_left = dict(self.short_reads)

    # -- map / reduce attempts --------------------------------------------

    def start_map_attempt(self, task_id: int) -> int:
        """Register an attempt; raise :class:`TaskFailure` if it must die.

        Returns the attempt number (1-based) on success.
        """
        self._attempts[task_id] += 1
        attempt = self._attempts[task_id]
        if attempt > self.max_attempts:
            raise RuntimeError(
                f"map task {task_id} exceeded max_attempts={self.max_attempts}"
            )
        if attempt <= self.map_failures.get(task_id, 0):
            raise TaskFailure("map", task_id, attempt)
        return attempt

    def start_reduce_attempt(self, partition: int) -> int:
        """Register a reduce attempt; raise :class:`TaskFailure` if it dies."""
        self._reduce_attempts[partition] += 1
        attempt = self._reduce_attempts[partition]
        if attempt > self.max_attempts:
            raise RuntimeError(
                f"reduce task {partition} exceeded max_attempts={self.max_attempts}"
            )
        if attempt <= self.reduce_failures.get(partition, 0):
            raise TaskFailure("reduce", partition, attempt)
        return attempt

    def attempts_of(self, task_id: int) -> int:
        # .get, not indexing: reading an unknown task through the
        # defaultdict would insert a spurious zero entry.
        return self._attempts.get(task_id, 0)

    def reduce_attempts_of(self, partition: int) -> int:
        return self._reduce_attempts.get(partition, 0)

    # -- node crashes ---------------------------------------------------------

    def crashes_due(self, completed_maps: int) -> list[str]:
        """Nodes whose crash trigger has been reached (each fires once)."""
        due = [
            node
            for node, after in sorted(self.node_crashes.items())
            if after <= completed_maps and node not in self._crashed
        ]
        self._crashed.update(due)
        return due

    def is_crashed(self, node: str) -> bool:
        return node in self._crashed

    # -- shuffle fetch faults ---------------------------------------------------

    def take_fetch_fault(self, map_task: int, partition: int) -> bool:
        """Consume one injected transient failure for this segment, if any."""
        key = (map_task, partition)
        left = self._fetch_faults_left.get(key, 0)
        if left <= 0:
            return False
        self._fetch_faults_left[key] = left - 1
        return True

    # -- disk faults (LocalDisk injection hooks) ----------------------------

    @property
    def has_disk_faults(self) -> bool:
        return bool(self.torn_writes or self.short_reads)

    def _take(self, budget: dict[str, int], path: str) -> bool:
        for prefix in sorted(budget):
            if path.startswith(prefix) and budget[prefix] > 0:
                budget[prefix] -= 1
                return True
        return False

    def filter_write(self, path: str, data: bytes) -> bytes:
        """Tear the write if a fault is scheduled: only a prefix lands."""
        if len(data) > 1 and self._take(self._torn_left, path):
            self.torn_writes_injected += 1
            return data[: len(data) // 2]
        return data

    def filter_read(self, path: str, data: bytes) -> bytes:
        """Cut the read short if a fault is scheduled."""
        if len(data) > 1 and self._take(self._short_left, path):
            self.short_reads_injected += 1
            return data[: len(data) // 2]
        return data

    # -- speculation ---------------------------------------------------------

    def slowdown(self, node: str) -> float:
        """Simulated-duration multiplier for ``node`` (1.0 = full speed)."""
        return self.slow_nodes.get(node, 1.0)

    # -- summaries ------------------------------------------------------------

    @property
    def total_failures_injected(self) -> int:
        return sum(self.map_failures.values())

    @property
    def total_reduce_failures_injected(self) -> int:
        return sum(self.reduce_failures.values())

    # -- construction ----------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        num_map_tasks: int,
        num_reducers: int = 0,
        nodes: Iterable[str] = (),
        map_failure_rate: float = 0.25,
        reduce_failure_rate: float = 0.25,
        shuffle_failure_rate: float = 0.0,
        torn_write_rate: float = 0.0,
        short_read_rate: float = 0.0,
        crash_after: int | None = None,
        max_attempts: int = 6,
    ) -> "FaultPlan":
        """A deterministic, seed-derived plan for randomized testing.

        The same seed and shape always yield the same plan, so each engine
        under test can be handed its own (stateful) instance.  At most one
        node crash is scheduled (``crash_after`` map completions, on a
        seed-chosen node) so that small test clusters keep a quorum.

        ``torn_write_rate`` / ``short_read_rate`` schedule one or two disk
        faults against the recovery layers' replicated files (checkpoint
        and partition-log paths), which is where corrupted bytes must be
        detected and survived rather than silently returned.
        """
        rng = random.Random(seed)
        map_failures = {
            t: rng.randint(1, 2)
            for t in range(num_map_tasks)
            if rng.random() < map_failure_rate
        }
        reduce_failures = {
            p: rng.randint(1, 2)
            for p in range(num_reducers)
            if rng.random() < reduce_failure_rate
        }
        shuffle_failures = {
            (t, p): rng.randint(1, 2)
            for t in range(num_map_tasks)
            for p in range(num_reducers)
            if rng.random() < shuffle_failure_rate
        }
        node_crashes: dict[str, int] = {}
        node_list = sorted(nodes)
        if crash_after is not None and node_list:
            node_crashes[rng.choice(node_list)] = crash_after
        torn_writes: dict[str, int] = {}
        if rng.random() < torn_write_rate:
            torn_writes["faultchk/"] = rng.randint(1, 2)
        short_reads: dict[str, int] = {}
        if rng.random() < short_read_rate:
            short_reads["faultlog/"] = rng.randint(1, 2)
        return cls(
            map_failures=map_failures,
            reduce_failures=reduce_failures,
            node_crashes=node_crashes,
            shuffle_failures=shuffle_failures,
            torn_writes=torn_writes,
            short_reads=short_reads,
            max_attempts=max_attempts,
        )

"""Fault injection and task re-execution.

The paper leans on MapReduce's fault-tolerance story twice: map output is
written synchronously *because* "a mapper completes after its output has
been persisted for fault tolerance", and the one-pass design explicitly
excludes infinite streams "due to the overhead of fault tolerance".  This
module makes that story executable: a :class:`FaultPlan` schedules task
attempts to fail, and the engines re-execute failed map tasks (on the next
candidate node, as Hadoop's JobTracker does), cleaning up the partial
output of the failed attempt.

Failures are deterministic — tests inject exact attempt counts and verify
both that answers are unaffected and that the rework is visible in the
counters.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["TaskFailure", "FaultPlan"]


class TaskFailure(RuntimeError):
    """Raised inside a task attempt that the fault plan kills."""

    def __init__(self, kind: str, task_id: int, attempt: int) -> None:
        super().__init__(f"{kind} task {task_id} failed (attempt {attempt})")
        self.kind = kind
        self.task_id = task_id
        self.attempt = attempt


@dataclass(slots=True)
class FaultPlan:
    """Which task attempts die.

    ``map_failures[task_id] = n`` kills the first ``n`` attempts of that
    map task; the (n+1)-th attempt succeeds.  ``max_attempts`` bounds
    re-execution (Hadoop's ``mapred.map.max.attempts``, default 4): a task
    that would exceed it aborts the job.
    """

    map_failures: dict[int, int] = field(default_factory=dict)
    max_attempts: int = 4
    _attempts: dict[int, int] = field(default_factory=lambda: defaultdict(int))

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        for task_id, n in self.map_failures.items():
            if n < 0:
                raise ValueError(f"negative failure count for task {task_id}")

    def start_map_attempt(self, task_id: int) -> int:
        """Register an attempt; raise :class:`TaskFailure` if it must die.

        Returns the attempt number (1-based) on success.
        """
        self._attempts[task_id] += 1
        attempt = self._attempts[task_id]
        if attempt > self.max_attempts:
            raise RuntimeError(
                f"map task {task_id} exceeded max_attempts={self.max_attempts}"
            )
        if attempt <= self.map_failures.get(task_id, 0):
            raise TaskFailure("map", task_id, attempt)
        return attempt

    def attempts_of(self, task_id: int) -> int:
        return self._attempts[task_id]

    @property
    def total_failures_injected(self) -> int:
        return sum(self.map_failures.values())

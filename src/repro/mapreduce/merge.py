"""Sorted-run merging: the heart of Hadoop's group-by (and its bottleneck).

Three pieces:

* :func:`merge_sorted` — streaming k-way merge of sorted ``(key, value)``
  iterators via a heap;
* :func:`group_sorted` — turn a key-sorted pair stream into
  ``(key, values-iterator)`` groups for the reduce function;
* :class:`MultiPassMerger` — the paper's *multi-pass merge*: whenever the
  number of on-disk runs reaches the merge factor ``F``, merge them into
  one larger run and write it back to disk.  Every pass re-reads and
  re-writes data, which is how the sessionization workload ends up with
  370 GB of reduce-side spill for 256 GB of input (Table I).

The multi-pass merge is *blocking*: :meth:`MultiPassMerger.final_merge`
cannot produce a single sorted stream until every run has arrived.
"""

from __future__ import annotations

import heapq
from operator import itemgetter
from typing import Any, Callable, Iterable, Iterator

from repro.io.disk import LocalDisk
from repro.io.runio import stream_run, write_run
from repro.mapreduce.counters import C, Counters
from repro.obs.tracer import NULL_TRACER, byte_cost

__all__ = ["merge_sorted", "group_sorted", "MultiPassMerger"]


_FIRST = itemgetter(0)


def merge_sorted(
    streams: list[Iterator[tuple[Any, Any]]],
    *,
    key: Callable[[tuple[Any, Any]], Any] | None = None,
) -> Iterator[tuple[Any, Any]]:
    """K-way merge of pair streams, each already sorted by pair key.

    Ties are broken by stream index, making the merge stable with respect
    to stream order (Hadoop gives the same guarantee via segment order).
    Implemented on :func:`heapq.merge`, whose C-accelerated heap carries a
    stream-order tiebreaker internally — the same ordering guarantee as
    the hand-rolled heap it replaces, without a Python-level comparison
    per record (values are never compared).
    """
    return heapq.merge(*streams, key=key or _FIRST)


_SENTINEL = object()


def group_sorted(pairs: Iterable[tuple[Any, Any]]) -> Iterator[tuple[Any, Iterator[Any]]]:
    """Group a key-sorted pair stream into ``(key, values)`` lazily.

    The values iterator for a group must be consumed before advancing to
    the next group (as with Hadoop's reduce iterator).  Unconsumed values
    are drained automatically on advance.
    """
    it = iter(pairs)
    first = next(it, _SENTINEL)
    if first is _SENTINEL:
        return

    current_key = first[0]
    pushback: list[tuple[Any, Any]] = [first]
    exhausted = False

    def values_for(key: Any) -> Iterator[Any]:
        nonlocal exhausted
        while True:
            if pushback:
                k, v = pushback.pop()
            else:
                nxt = next(it, _SENTINEL)
                if nxt is _SENTINEL:
                    exhausted = True
                    return
                k, v = nxt
            if k != key:
                pushback.append((k, v))
                return
            yield v

    while True:
        group = values_for(current_key)
        yield current_key, group
        # Drain whatever the consumer left behind.
        for _ in group:
            pass
        if exhausted:
            return
        if pushback:
            current_key = pushback[-1][0]
        else:
            nxt = next(it, _SENTINEL)
            if nxt is _SENTINEL:
                return
            pushback.append(nxt)
            current_key = nxt[0]


class MultiPassMerger:
    """On-disk run pool with Hadoop's factor-``F`` background merge policy.

    Runs are added as they arrive from the shuffle (:meth:`add_run`); when
    the pool reaches ``F`` runs, the merger combines them into one larger
    run on disk (one *pass*), charging the read and write traffic to the
    supplied counters.  After the last run arrives, :meth:`final_merge`
    reduces the pool below ``F`` if needed and returns the single merged,
    sorted stream.
    """

    def __init__(
        self,
        disk: LocalDisk,
        namespace: str,
        *,
        factor: int,
        counters: Counters | None = None,
        tracer: Any = NULL_TRACER,
        node: str = "",
        task: str = "",
    ) -> None:
        if factor < 2:
            raise ValueError("merge factor must be >= 2")
        self.disk = disk
        self.namespace = namespace.rstrip("/")
        self.factor = factor
        self.counters = counters if counters is not None else Counters()
        self.tracer = tracer
        self.node = node
        self.task = task
        self._runs: list[tuple[str, int]] = []  # (path, nbytes), insertion order
        self._seq = 0
        self.finished = False

    @property
    def run_count(self) -> int:
        return len(self._runs)

    @property
    def on_disk_bytes(self) -> int:
        return sum(nbytes for _, nbytes in self._runs)

    @property
    def run_paths(self) -> list[tuple[str, int]]:
        """Current on-disk runs as ``(path, nbytes)`` (non-destructive view).

        MapReduce Online's snapshot mechanism re-reads these runs to build a
        periodic early answer without finalising the merge.
        """
        return list(self._runs)

    def export_state(self) -> tuple[list[tuple[str, int]], int]:
        """Snapshot ``(runs, next sequence number)`` for a worker-side task."""
        return list(self._runs), self._seq

    def adopt_state(self, state: tuple[list[tuple[str, int]], int]) -> None:
        """Install state exported by :meth:`export_state` (fresh merger only)."""
        if self.finished or self._runs:
            raise RuntimeError("can only adopt state into a fresh merger")
        runs, seq = state
        self._runs = list(runs)
        self._seq = seq

    def _new_path(self, tag: str) -> str:
        path = f"{self.namespace}/run-{self._seq:05d}.{tag}"
        self._seq += 1
        return path

    def add_run(self, pairs: Iterable[tuple[Any, Any]]) -> None:
        """Write one sorted run to disk and trigger background merges.

        Merging the F smallest runs whenever the pool reaches ``2F - 1``
        (Hadoop's actual policy) leaves F - 1 runs behind and, crucially,
        avoids re-merging already-merged large runs on every trigger —
        the rewrite volume stays roughly linear in the data instead of
        quadratic.
        """
        if self.finished:
            raise RuntimeError("merger already finalised")
        path = self._new_path("in")
        nbytes = write_run(self.disk, path, pairs)
        self.counters.inc(C.REDUCE_SPILL_BYTES, nbytes)
        self.counters.inc(C.REDUCE_SPILLS)
        self._runs.append((path, nbytes))
        while len(self._runs) >= 2 * self.factor - 1:
            self._merge_pass(self.factor)

    def _merge_pass(self, fan_in: int) -> None:
        """Merge the ``fan_in`` smallest runs into one (one pass)."""
        fan_in = min(fan_in, len(self._runs))
        if fan_in < 2:
            return
        # Hadoop merges the smallest runs first to bound rewrite volume.
        self._runs.sort(key=itemgetter(1))
        victims, self._runs = self._runs[:fan_in], self._runs[fan_in:]
        read_bytes = sum(nbytes for _, nbytes in victims)
        with self.tracer.span(
            "merge", "merge", node=self.node, task=self.task, fan_in=fan_in
        ) as merge_span:
            merged = merge_sorted(
                [stream_run(self.disk, path) for path, _ in victims]
            )
            out_path = self._new_path("merged")
            out_bytes = write_run(self.disk, out_path, merged)
            merge_span.set(bytes_in=read_bytes, bytes_out=out_bytes)
            merge_span.set_cost(byte_cost(read_bytes + out_bytes))
        for path, _ in victims:
            self.disk.delete(path)
        self._runs.append((out_path, out_bytes))
        self.counters.inc(C.MERGE_PASSES)
        self.counters.inc(C.MERGE_READ_BYTES, read_bytes)
        self.counters.inc(C.MERGE_WRITE_BYTES, out_bytes)

    def final_merge(self) -> Iterator[tuple[Any, Any]]:
        """Blocking step: bring the pool under F, then stream the result.

        The returned iterator performs the last merge on the fly (Hadoop
        feeds this stream directly into the reduce function).
        """
        if self.finished:
            raise RuntimeError("merger already finalised")
        self.finished = True
        while len(self._runs) > self.factor:
            self._merge_pass(self.factor)
        read_bytes = sum(nbytes for _, nbytes in self._runs)
        self.counters.inc(C.MERGE_READ_BYTES, read_bytes)
        streams = [stream_run(self.disk, path) for path, _ in self._runs]
        return merge_sorted(streams)

    def cleanup(self) -> None:
        """Delete any remaining run files."""
        for path, _ in self._runs:
            if self.disk.exists(path):
                self.disk.delete(path)
        self._runs.clear()

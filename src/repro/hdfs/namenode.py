"""NameNode: file namespace, block placement and locality lookup.

Placement follows HDFS's spirit without its rack-awareness: the first
replica goes to a preferred (writer-local) node when given, the rest
round-robin across the remaining nodes.  The paper's setup runs with
``replication = 1``, which the default mirrors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdfs.blocks import BlockId, BlockInfo

__all__ = ["FileInfo", "NameNode"]


@dataclass(slots=True)
class FileInfo:
    """Namespace entry for one file: ordered block metadata plus codec tag."""

    path: str
    blocks: list[BlockInfo] = field(default_factory=list)
    codec_name: str = "binary"

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self.blocks)

    @property
    def records(self) -> int:
        return sum(b.records for b in self.blocks)


class NameNode:
    """Tracks files, their blocks and replica placement."""

    def __init__(self, node_names: list[str], *, replication: int = 1) -> None:
        if not node_names:
            raise ValueError("NameNode needs at least one DataNode")
        if not 1 <= replication <= len(node_names):
            raise ValueError(
                f"replication {replication} invalid for {len(node_names)} nodes"
            )
        self.node_names = list(node_names)
        self.replication = replication
        self._files: dict[str, FileInfo] = {}
        self._placement_cursor = 0

    # -- namespace ---------------------------------------------------------

    def create_file(self, path: str, *, codec_name: str = "binary") -> FileInfo:
        if path in self._files:
            raise FileExistsError(path)
        info = FileInfo(path=path, codec_name=codec_name)
        self._files[path] = info
        return info

    def file_info(self, path: str) -> FileInfo:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete_file(self, path: str) -> FileInfo:
        """Drop the namespace entry; the caller deletes replicas."""
        return self._files.pop(path)

    def list_files(self, prefix: str = "") -> list[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    # -- placement -----------------------------------------------------------

    def place_block(
        self,
        path: str,
        nbytes: int,
        records: int,
        *,
        preferred: str | None = None,
    ) -> BlockInfo:
        """Choose replica nodes for the next block of ``path``.

        The first replica lands on ``preferred`` when given (writer
        locality); remaining replicas round-robin over the other nodes.
        A preferred node outside the storage set is ignored — that is a
        client writing from a compute-only node (the separate-storage
        architecture), which gets no write locality, as in HDFS.
        """
        info = self.file_info(path)
        block_id = BlockId(path=path, index=len(info.blocks))
        replicas: list[str] = []
        if preferred is not None and preferred in self.node_names:
            replicas.append(preferred)
        while len(replicas) < self.replication:
            candidate = self.node_names[self._placement_cursor % len(self.node_names)]
            self._placement_cursor += 1
            if candidate not in replicas:
                replicas.append(candidate)
        block = BlockInfo(
            block_id=block_id, nbytes=nbytes, records=records, replicas=replicas
        )
        info.blocks.append(block)
        return block

    # -- node loss -----------------------------------------------------------

    def decommission(self, node: str) -> None:
        """Remove a dead node from the placement set.

        Future blocks will not be placed there; existing replica metadata
        is cleaned up by :meth:`drop_node_replicas`.  The replication
        factor is clamped to the surviving node count so writes keep
        working on a shrunken cluster.
        """
        if node not in self.node_names:
            return
        if len(self.node_names) == 1:
            raise ValueError("cannot decommission the last DataNode")
        self.node_names.remove(node)
        if self.replication > len(self.node_names):
            self.replication = len(self.node_names)

    def drop_node_replicas(
        self, node: str
    ) -> tuple[list[BlockInfo], list[BlockId]]:
        """Forget every replica held by ``node``.

        Returns ``(under_replicated, lost)``: blocks that survive on other
        nodes but now sit below the replication factor, and blocks whose
        last replica just vanished (unrecoverable — the job will fail if
        it ever needs them).
        """
        under: list[BlockInfo] = []
        lost: list[BlockId] = []
        for info in self._files.values():
            for block in info.blocks:
                if node not in block.replicas:
                    continue
                block.replicas.remove(node)
                if not block.replicas:
                    lost.append(block.block_id)
                elif len(block.replicas) < self.replication:
                    under.append(block)
        return under, lost

    def choose_replacement(self, block: BlockInfo) -> str | None:
        """Pick a live node for a new replica of an under-replicated block."""
        for _ in range(len(self.node_names)):
            candidate = self.node_names[self._placement_cursor % len(self.node_names)]
            self._placement_cursor += 1
            if candidate not in block.replicas:
                return candidate
        return None

    # -- locality ------------------------------------------------------------

    def locate(self, block_id: BlockId) -> list[str]:
        """Nodes holding replicas of ``block_id``."""
        info = self.file_info(block_id.path)
        try:
            return list(info.blocks[block_id.index].replicas)
        except IndexError:
            raise KeyError(f"no such block: {block_id}") from None

    def blocks_of(self, path: str) -> list[BlockInfo]:
        return list(self.file_info(path).blocks)

    def total_bytes(self) -> int:
        return sum(f.nbytes for f in self._files.values())

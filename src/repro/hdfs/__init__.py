"""HDFS-like block storage substrate.

Files are split into fixed-size blocks, replicated across per-node
DataNodes, and exposed to engines as locality-annotated input splits —
the same structure Hadoop's task scheduling is built on.
"""

from repro.hdfs.blocks import DEFAULT_BLOCK_SIZE, BlockId, BlockInfo
from repro.hdfs.datanode import DataNode
from repro.hdfs.filesystem import HDFS, InputSplit, NodeLossReport
from repro.hdfs.namenode import FileInfo, NameNode

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "BlockId",
    "BlockInfo",
    "DataNode",
    "NameNode",
    "FileInfo",
    "HDFS",
    "InputSplit",
    "NodeLossReport",
]

"""DataNode: per-node block storage on the node's local disk.

A DataNode shares its :class:`~repro.io.disk.LocalDisk` with the node's
intermediate data (map output, spills).  That sharing is deliberate — it is
the disk-contention effect the paper measures: "the disk on each node not
only serves the input data from HDFS and writes the final output to HDFS,
but also handles intermediate data".  Experiments that give intermediate
data its own device simply hand the MapReduce runtime a second disk.
"""

from __future__ import annotations

from typing import Iterator

from repro.hdfs.blocks import BlockId
from repro.io.disk import LocalDisk

__all__ = ["DataNode"]


class DataNode:
    """Stores HDFS block replicas for one cluster node."""

    def __init__(self, node_name: str, disk: LocalDisk) -> None:
        self.node_name = node_name
        self.disk = disk

    def store_block(self, block_id: BlockId, data: bytes) -> None:
        """Persist one block replica (synchronous write, as in HDFS)."""
        self.disk.write(block_id.storage_name(), data, overwrite=True)

    def read_block(self, block_id: BlockId) -> bytes:
        """Read one full block replica."""
        return self.disk.read(block_id.storage_name())

    def stream_block(self, block_id: BlockId, chunk_size: int = 1 << 20) -> Iterator[bytes]:
        return self.disk.stream(block_id.storage_name(), chunk_size)

    def has_block(self, block_id: BlockId) -> bool:
        return self.disk.exists(block_id.storage_name())

    def delete_block(self, block_id: BlockId) -> None:
        self.disk.delete(block_id.storage_name())

    def block_names(self) -> list[str]:
        return self.disk.list_files("hdfs/")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DataNode({self.node_name!r}, blocks={len(self.block_names())})"

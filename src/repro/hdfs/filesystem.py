"""HDFS facade: record-oriented file writes, reads and input splits.

The facade ties the NameNode and DataNodes together and provides the two
operations the engines need:

* :meth:`HDFS.write_records` — encode a record stream with a codec and
  chunk it into blocks of the configured size, each replicated per policy;
* :meth:`HDFS.input_splits` — one split per block with its preferred
  (replica-holding) nodes, which the scheduler uses for locality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.hdfs.blocks import DEFAULT_BLOCK_SIZE, BlockId, BlockInfo
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import FileInfo, NameNode
from repro.io.serialization import BinaryCodec, RecordCodec

__all__ = ["InputSplit", "NodeLossReport", "HDFS"]


@dataclass(frozen=True, slots=True)
class InputSplit:
    """One unit of map-task input: a block plus its locality hints."""

    block_id: BlockId
    nbytes: int
    records: int
    preferred_nodes: tuple[str, ...]


@dataclass(slots=True)
class NodeLossReport:
    """What losing one DataNode cost the filesystem."""

    node: str
    blocks_rereplicated: int = 0
    bytes_rereplicated: int = 0
    lost_blocks: list[BlockId] = field(default_factory=list)


class HDFS:
    """The distributed filesystem facade used by every engine."""

    def __init__(
        self,
        datanodes: dict[str, DataNode],
        *,
        replication: int = 1,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if not datanodes:
            raise ValueError("HDFS needs at least one DataNode")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.datanodes = dict(datanodes)
        self.namenode = NameNode(list(datanodes), replication=replication)
        self.block_size = block_size
        self._codecs: dict[str, RecordCodec] = {"binary": BinaryCodec()}
        #: Optional chained-job block cache (duck-typed; see
        #: :class:`repro.mapreduce.chain.PartitionCache`).  When set,
        #: registered paths' block bytes bypass the DataNodes entirely:
        #: placement metadata is still allocated (same cursor positions,
        #: same locality hints), but the data lives in the cache.
        self.block_cache: Any = None

    # -- codec registry -----------------------------------------------------

    def register_codec(self, codec: RecordCodec) -> None:
        self._codecs[codec.name] = codec

    def codec(self, name: str) -> RecordCodec:
        try:
            return self._codecs[name]
        except KeyError:
            raise KeyError(f"unknown codec {name!r}; register it first") from None

    # -- writes ---------------------------------------------------------------

    def write_records(
        self,
        path: str,
        records: Iterable[Any],
        *,
        codec: RecordCodec | None = None,
        writer_node: str | None = None,
        records_per_chunk: int = 256,
    ) -> FileInfo:
        """Write a record stream as a new HDFS file.

        Records are encoded with ``codec`` (binary by default) in chunks of
        ``records_per_chunk`` and packed into blocks of roughly
        :attr:`block_size` bytes.  Chunk encodings are concatenated, which
        every codec in :mod:`repro.io.serialization` supports (framed
        streams and line-oriented text are both concatenable); this keeps
        the write linear in the data instead of re-encoding the pending
        buffer on every probe.
        """
        codec = codec or self._codecs["binary"]
        if codec.name not in self._codecs:
            self.register_codec(codec)
        info = self.namenode.create_file(path, codec_name=codec.name)

        chunks: list[bytes] = []
        chunk_records = 0
        nbytes = 0
        pending: list[Any] = []
        for record in records:
            pending.append(record)
            if len(pending) >= records_per_chunk:
                data = codec.encode(pending)
                chunks.append(data)
                nbytes += len(data)
                chunk_records += len(pending)
                pending = []
                if nbytes >= self.block_size:
                    self._store_block(
                        path, b"".join(chunks), chunk_records, writer_node
                    )
                    chunks, chunk_records, nbytes = [], 0, 0
        if pending:
            data = codec.encode(pending)
            chunks.append(data)
            chunk_records += len(pending)
        if chunks:
            self._store_block(path, b"".join(chunks), chunk_records, writer_node)
        return info

    def _store_block(
        self,
        path: str,
        data: bytes,
        records: int,
        writer_node: str | None,
    ) -> BlockInfo:
        block = self.namenode.place_block(
            path, len(data), records, preferred=writer_node
        )
        cache = self.block_cache
        if cache is not None and cache.captures(path):
            cache.store(block.block_id, data)
            return block
        for node in block.replicas:
            self.datanodes[node].store_block(block.block_id, data)
        return block

    def _flush_block(
        self,
        path: str,
        records: list[Any],
        codec: RecordCodec,
        writer_node: str | None,
    ) -> BlockInfo:
        return self._store_block(
            path, codec.encode(records), len(records), writer_node
        )

    def append_block(
        self,
        path: str,
        records: list[Any],
        *,
        writer_node: str | None = None,
    ) -> BlockInfo:
        """Append one pre-grouped block to an existing file.

        Used by reduce tasks, which each write their own output region.
        """
        info = self.namenode.file_info(path)
        codec = self.codec(info.codec_name)
        return self._flush_block(path, records, codec, writer_node)

    # -- reads ---------------------------------------------------------------

    def read_block_bytes(self, block_id: BlockId, *, from_node: str | None = None) -> bytes:
        """Read one block replica's raw bytes.

        ``from_node`` selects the replica (for locality accounting); by
        default the first replica serves the read.  A missing replica (its
        DataNode lost the data) fails over to the remaining replicas, as
        HDFS clients do; only when every replica is gone does the read
        raise :class:`FileNotFoundError`.
        """
        cache = self.block_cache
        if cache is not None and cache.captures(block_id.path):
            data = cache.get(block_id)
            if data is not None:
                return data
        replicas = self.namenode.locate(block_id)
        order = list(replicas)
        if from_node in replicas:
            order.remove(from_node)
            order.insert(0, from_node)
        last_error: FileNotFoundError | None = None
        for node in order:
            try:
                return self.datanodes[node].read_block(block_id)
            except FileNotFoundError as exc:
                last_error = exc
        raise FileNotFoundError(
            f"all {len(order)} replica(s) of {block_id} are gone"
        ) from last_error

    def read_block_records(
        self, block_id: BlockId, *, from_node: str | None = None
    ) -> Iterator[Any]:
        info = self.namenode.file_info(block_id.path)
        codec = self.codec(info.codec_name)
        return codec.decode(self.read_block_bytes(block_id, from_node=from_node))

    def read_records(self, path: str) -> Iterator[Any]:
        """Stream every record of a file, block by block."""
        for block in self.namenode.blocks_of(path):
            yield from self.read_block_records(block.block_id)

    # -- splits ---------------------------------------------------------------

    def input_splits(self, path: str) -> list[InputSplit]:
        """One split per block, carrying replica locality."""
        return [
            InputSplit(
                block_id=b.block_id,
                nbytes=b.nbytes,
                records=b.records,
                preferred_nodes=tuple(b.replicas),
            )
            for b in self.namenode.blocks_of(path)
        ]

    # -- node loss -----------------------------------------------------------

    def handle_node_loss(self, node: str) -> NodeLossReport:
        """React to a dead DataNode the way HDFS does.

        The node leaves the placement set, its replicas are struck from
        the block metadata, and every block that survives elsewhere but
        now sits under the replication factor is re-replicated onto a
        live node (a real, accounted read from a survivor plus a write to
        the new holder).  Blocks whose only replica was on the dead node
        are reported lost; with ``replication=1`` that is the price the
        paper's setup pays for skipping redundancy.
        """
        report = NodeLossReport(node=node)
        if node not in self.namenode.node_names:
            return report
        self.namenode.decommission(node)
        under, lost = self.namenode.drop_node_replicas(node)
        cache = self.block_cache
        if cache is not None:
            # Cache-resident blocks never lived on the DataNodes: they are
            # neither lost with the node nor in need of re-replication.
            lost = [b for b in lost if not cache.holds(b)]
            under = [b for b in under if not cache.holds(b.block_id)]
        report.lost_blocks = lost
        for block in under:
            target = self.namenode.choose_replacement(block)
            if target is None:
                continue
            data = self.datanodes[block.replicas[0]].read_block(block.block_id)
            self.datanodes[target].store_block(block.block_id, data)
            block.replicas.append(target)
            report.blocks_rereplicated += 1
            report.bytes_rereplicated += len(data)
        return report

    # -- maintenance -----------------------------------------------------------

    def delete_file(self, path: str) -> None:
        info = self.namenode.delete_file(path)
        cache = self.block_cache
        if cache is not None and cache.captures(path):
            cache.release(path)
            return
        for block in info.blocks:
            for node in block.replicas:
                self.datanodes[node].delete_block(block.block_id)

    def file_bytes(self, path: str) -> int:
        return self.namenode.file_info(path).nbytes

    def file_records(self, path: str) -> int:
        return self.namenode.file_info(path).records

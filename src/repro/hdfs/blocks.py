"""Block identifiers and metadata for the HDFS-like store.

HDFS stores files as fixed-size blocks (64 MB by default in the paper's
setup); blocks are both the unit of replication and the unit of map-task
scheduling.  These types are pure metadata — block payloads live on the
:class:`~repro.hdfs.datanode.DataNode` disks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BlockId", "BlockInfo", "DEFAULT_BLOCK_SIZE"]

#: The paper's HDFS block size: 64 MB.  Laptop-scale experiments pass a
#: much smaller value; the engine treats it purely as a parameter.
DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024


@dataclass(frozen=True, slots=True, order=True)
class BlockId:
    """Identity of one block: the owning file path and block index."""

    path: str
    index: int

    def storage_name(self) -> str:
        """The file name under which DataNodes store this block."""
        return f"hdfs/{self.path}/blk-{self.index:06d}"


@dataclass(slots=True)
class BlockInfo:
    """Metadata the NameNode keeps for one block."""

    block_id: BlockId
    nbytes: int
    records: int
    replicas: list[str] = field(default_factory=list)

    def is_replicated_on(self, node: str) -> bool:
        return node in self.replicas

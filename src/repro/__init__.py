"""repro — reproduction of *Towards Scalable One-Pass Analytics Using
MapReduce* (Mazur, Li, Diao, Shenoy; IPDPS Workshops 2011).

The package contains three executable engines sharing one cluster
substrate, plus a calibrated discrete-event simulator for paper-scale
experiments:

* :mod:`repro.mapreduce` — stock-Hadoop sort-merge baseline and the
  MapReduce Online (HOP) pipelined variant;
* :mod:`repro.core` — the paper's hash-based one-pass analytics engine
  (hybrid hash, incremental hash, hot-key cache, online aggregation);
* :mod:`repro.hdfs`, :mod:`repro.io` — block storage and accounted disks;
* :mod:`repro.simulator` — event-driven cluster model reproducing the
  paper's timelines and utilisation figures at 256 GB scale;
* :mod:`repro.workloads` — click-stream and web-document generators and
  the four benchmark jobs;
* :mod:`repro.analysis` — table/series rendering for the benchmark
  harness.

Quickstart::

    from repro.mapreduce import LocalCluster, HadoopEngine
    from repro.core import OnePassEngine
    from repro.workloads import (
        ClickStreamConfig, generate_clicks, page_frequency_job,
        page_frequency_onepass_job,
    )

    cluster = LocalCluster(num_nodes=4, block_size=256 * 1024)
    cluster.hdfs.write_records("clicks", generate_clicks(ClickStreamConfig()))
    result = HadoopEngine(cluster).run(
        page_frequency_job("clicks", "out-sortmerge"))
    onepass = OnePassEngine(cluster).run(
        page_frequency_onepass_job("clicks", "out-onepass"))
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""A local disk with full I/O accounting.

The real (executable) engine in this repository does all of its "disk" I/O
through :class:`LocalDisk`.  Data lives in process memory — running the
256 GB experiments byte-for-byte is the simulator's job — but every read,
write and delete is accounted exactly: byte counts, operation counts,
sequential/random classification, and simulated device busy-time derived
from a :class:`~repro.io.device.DeviceProfile`.

These counters are what the benchmark harness reports for Table I
(map-output and reduce-spill volumes) and for the §V claim that the
frequent-key cache cuts reduce-side spill I/O by orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.io.device import RAMDISK, DeviceProfile

__all__ = ["DiskStats", "DiskExport", "LocalDisk", "DiskFullError"]


class DiskFullError(OSError):
    """Raised when a write would exceed the device capacity."""


@dataclass(slots=True)
class DiskStats:
    """Cumulative I/O counters for one :class:`LocalDisk`.

    ``busy_time`` is the simulated seconds the device spent servicing
    requests, derived from the device profile; it is the basis for the
    utilisation numbers in the paper's Fig. 2.
    """

    bytes_read: int = 0
    bytes_written: int = 0
    read_ops: int = 0
    write_ops: int = 0
    random_ops: int = 0
    sequential_ops: int = 0
    deletes: int = 0
    busy_time: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def total_ops(self) -> int:
        return self.read_ops + self.write_ops

    def snapshot(self) -> "DiskStats":
        """Return an independent copy of the current counters."""
        return DiskStats(
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            read_ops=self.read_ops,
            write_ops=self.write_ops,
            random_ops=self.random_ops,
            sequential_ops=self.sequential_ops,
            deletes=self.deletes,
            busy_time=self.busy_time,
        )

    def delta(self, earlier: "DiskStats") -> "DiskStats":
        """Return counters accumulated since ``earlier`` (a prior snapshot)."""
        return DiskStats(
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            read_ops=self.read_ops - earlier.read_ops,
            write_ops=self.write_ops - earlier.write_ops,
            random_ops=self.random_ops - earlier.random_ops,
            sequential_ops=self.sequential_ops - earlier.sequential_ops,
            deletes=self.deletes - earlier.deletes,
            busy_time=self.busy_time - earlier.busy_time,
        )


@dataclass(slots=True)
class _FileEntry:
    data: bytearray = field(default_factory=bytearray)


@dataclass(slots=True)
class DiskExport:
    """The after-state of a task that ran against a *shadow* disk.

    Parallel task execution runs each task's I/O against a fresh
    :class:`LocalDisk` with the same device profile (so per-op accounting
    is identical to running in place); the worker ships this export back
    and the coordinator :meth:`LocalDisk.absorb`-s it into the real node
    disk.  ``removed`` lists preloaded files the task deleted (their
    delete ops are already in ``stats``).
    """

    files: dict[str, bytes]
    stats: DiskStats
    last_file: str | None
    removed: tuple[str, ...] = ()


class LocalDisk:
    """An accounted, memory-backed file store for one simulated node.

    Files are flat names (the engine namespaces them, e.g.
    ``"spill/map-0003.part2"``).  Appending to the file that was most
    recently touched counts as sequential I/O; switching files counts as a
    random operation — a deliberately simple model of the head-contention
    effect the paper measures when map output, shuffle and merge traffic
    share one spindle.
    """

    def __init__(self, profile: DeviceProfile = RAMDISK, *, name: str = "disk0") -> None:
        self.profile = profile
        self.name = name
        self.stats = DiskStats()
        self._files: dict[str, _FileEntry] = {}
        self._last_file: str | None = None
        # Optional fault injector (a FaultPlan with torn_writes/short_reads);
        # when attached, writes and reads pass through its filters so seeded
        # disk corruption exercises the recovery layers' checksum paths.
        self.fault_injector = None

    # -- introspection ----------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self._files

    def size(self, path: str) -> int:
        return len(self._entry(path).data)

    def used(self) -> int:
        """Total bytes currently stored on the device."""
        return sum(len(e.data) for e in self._files.values())

    def list_files(self, prefix: str = "") -> list[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    def _entry(self, path: str) -> _FileEntry:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    # -- accounting helpers ------------------------------------------------

    def _account(self, path: str, nbytes: int, *, write: bool) -> None:
        sequential = path == self._last_file
        self._last_file = path
        if sequential:
            self.stats.sequential_ops += 1
        else:
            self.stats.random_ops += 1
        self.stats.busy_time += self.profile.io_time(nbytes, sequential=sequential)
        if write:
            self.stats.bytes_written += nbytes
            self.stats.write_ops += 1
        else:
            self.stats.bytes_read += nbytes
            self.stats.read_ops += 1

    # -- operations ---------------------------------------------------------

    def create(self, path: str, *, overwrite: bool = False) -> None:
        """Create an empty file at ``path``."""
        if path in self._files and not overwrite:
            raise FileExistsError(path)
        self._files[path] = _FileEntry()

    def append(self, path: str, data: bytes) -> None:
        """Append ``data`` to ``path``, creating the file if needed."""
        if self.fault_injector is not None:
            data = self.fault_injector.filter_write(path, data)
        entry = self._files.setdefault(path, _FileEntry())
        if self.used() + len(data) > self.profile.capacity:
            raise DiskFullError(
                f"{self.name}: write of {len(data)} bytes exceeds capacity "
                f"{self.profile.capacity}"
            )
        entry.data.extend(data)
        self._account(path, len(data), write=True)

    def write(self, path: str, data: bytes, *, overwrite: bool = True) -> None:
        """Write ``data`` as the full contents of ``path``."""
        if path in self._files and not overwrite:
            raise FileExistsError(path)
        self._files[path] = _FileEntry()
        self.append(path, data)

    def read(self, path: str) -> bytes:
        """Read the full contents of ``path``."""
        data = bytes(self._entry(path).data)
        self._account(path, len(data), write=False)
        if self.fault_injector is not None:
            data = self.fault_injector.filter_read(path, data)
        return data

    def peek(self, path: str) -> bytes:
        """Read ``path`` without charging device I/O.

        Models a page-cache hit: the bytes were written moments ago and are
        still resident in the writer's memory.  Used by the shuffle when a
        reducer fetches a just-completed map output.
        """
        return bytes(self._entry(path).data)

    def read_range(self, path: str, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``offset``."""
        data = self._entry(path).data
        if offset < 0 or offset > len(data):
            raise ValueError(f"offset {offset} out of range for {path}")
        chunk = bytes(data[offset : offset + length])
        self._account(path, len(chunk), write=False)
        if self.fault_injector is not None:
            chunk = self.fault_injector.filter_read(path, chunk)
        return chunk

    def stream(self, path: str, chunk_size: int = 1 << 20) -> Iterator[bytes]:
        """Yield the contents of ``path`` in ``chunk_size`` pieces.

        Each chunk is accounted individually, so a streaming scan interleaved
        with writes to other files shows up as alternating random ops — the
        same effect that makes multi-pass merge so expensive on one spindle.
        """
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        offset = 0
        size = self.size(path)
        while offset < size:
            yield self.read_range(path, offset, chunk_size)
            offset += chunk_size

    def delete(self, path: str) -> None:
        """Remove ``path``; missing files raise :class:`FileNotFoundError`."""
        self._entry(path)
        del self._files[path]
        self.stats.deletes += 1
        if self._last_file == path:
            self._last_file = None

    def delete_prefix(self, prefix: str) -> int:
        """Delete every file whose name starts with ``prefix``; return count."""
        victims = self.list_files(prefix)
        for path in victims:
            self.delete(path)
        return len(victims)

    # -- shadow-disk transfer ------------------------------------------------

    def preload(self, files: dict[str, bytes]) -> None:
        """Install files without accounting (shadow-disk task input).

        The bytes already exist on the real disk; copying them into the
        worker's shadow disk models shared storage, not new I/O.
        """
        for path, data in files.items():
            self._files[path] = _FileEntry(bytearray(data))

    def export_state(self, *, preloaded: Iterable[str] = ()) -> DiskExport:
        """Capture files, accounting and head position for :meth:`absorb`."""
        removed = tuple(sorted(p for p in preloaded if p not in self._files))
        return DiskExport(
            files={path: bytes(e.data) for path, e in self._files.items()},
            stats=self.stats.snapshot(),
            last_file=self._last_file,
            removed=removed,
        )

    def absorb(self, export: DiskExport, *, install: bool = True) -> None:
        """Merge a shadow disk's after-state into this disk.

        Accounting merges unconditionally (the I/O really happened, on
        behalf of this device).  With ``install`` the exported files
        appear here, files the task deleted disappear, and the head
        position (``_last_file``) moves to where the task left it — i.e.
        the disk ends up exactly as if the task had run in place.
        """
        s, e = self.stats, export.stats
        s.bytes_read += e.bytes_read
        s.bytes_written += e.bytes_written
        s.read_ops += e.read_ops
        s.write_ops += e.write_ops
        s.random_ops += e.random_ops
        s.sequential_ops += e.sequential_ops
        s.deletes += e.deletes
        s.busy_time += e.busy_time
        if install:
            for path, data in export.files.items():
                self._files[path] = _FileEntry(bytearray(data))
            for path in export.removed:
                self._files.pop(path, None)
            self._last_file = export.last_file

    def rename(self, src: str, dst: str) -> None:
        if dst in self._files:
            raise FileExistsError(dst)
        self._files[dst] = self._entry(src)
        del self._files[src]
        if self._last_file == src:
            self._last_file = dst

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LocalDisk({self.name!r}, profile={self.profile.name!r}, "
            f"files={len(self._files)}, used={self.used()})"
        )

"""Record and key-value serialization.

Two record codecs mirror the paper's parsing-cost experiment (§III.B.1):

* :class:`TextLineCodec` — line-oriented flat text, the format of the
  WorldCup click logs.  Decoding splits each line and converts fields,
  paying a per-record parsing cost in the map task.
* :class:`BinaryCodec` — a SequenceFile-like binary format (length-prefixed
  pickled records) that skips text parsing entirely.

Intermediate data (map output, spill files, shuffle segments) is framed with
:func:`encode_frames` / :func:`iter_frames`: a stream of length-prefixed
pickled objects that can be read incrementally without materialising the
whole file.
"""

from __future__ import annotations

import pickle
import struct
import sys
from typing import Any, Callable, Iterable, Iterator, Protocol, Sequence

__all__ = [
    "encode_frames",
    "iter_frames",
    "frame_count",
    "RecordCodec",
    "TextLineCodec",
    "RawLineCodec",
    "BinaryCodec",
    "estimate_size",
]

_LEN = struct.Struct("<I")


def encode_frames(items: Iterable[Any]) -> bytes:
    """Serialize ``items`` as a stream of length-prefixed pickle frames.

    Frames accumulate into one growing :class:`bytearray` (amortised
    doubling) instead of a list of 2-element fragments joined at the end —
    this is the framing hot path for every spill, run and shuffle segment.
    """
    buf = bytearray()
    pack = _LEN.pack
    dumps = pickle.dumps
    proto = pickle.HIGHEST_PROTOCOL
    for item in items:
        payload = dumps(item, protocol=proto)
        buf += pack(len(payload))
        buf += payload
    return bytes(buf)


def iter_frames(data: bytes) -> Iterator[Any]:
    """Yield the objects previously encoded by :func:`encode_frames`.

    Payloads are handed to pickle as :class:`memoryview` slices — no
    per-frame ``bytes`` copy of the payload is made on decode.
    """
    view = memoryview(data)
    loads = pickle.loads
    unpack_from = _LEN.unpack_from
    header = _LEN.size
    offset = 0
    end = len(view)
    while offset < end:
        if offset + header > end:
            raise ValueError("truncated frame header")
        (length,) = unpack_from(view, offset)
        offset += header
        if offset + length > end:
            raise ValueError("truncated frame payload")
        yield loads(view[offset : offset + length])
        offset += length


def frame_count(data: bytes) -> int:
    """Count frames without deserialising payloads."""
    offset = 0
    end = len(data)
    n = 0
    while offset < end:
        (length,) = _LEN.unpack_from(data, offset)
        offset += _LEN.size + length
        n += 1
    if offset != end:
        raise ValueError("trailing bytes after last frame")
    return n


class RecordCodec(Protocol):
    """Encodes a sequence of records to bytes and decodes them back.

    ``decode`` must be an iterator so map tasks can stream a block without
    materialising every record at once.
    """

    name: str

    def encode(self, records: Iterable[Any]) -> bytes: ...

    def decode(self, data: bytes) -> Iterator[Any]: ...


class TextLineCodec:
    """Line-oriented text records with per-field conversion on decode.

    Parameters
    ----------
    field_parsers:
        One callable per field, applied to the split string fields.  A click
        log with schema ``(timestamp, user, url)`` uses
        ``(float, int, str)``.
    delimiter:
        Field separator within a line.
    """

    __slots__ = ("field_parsers", "delimiter", "name")

    def __init__(
        self,
        field_parsers: Sequence[Callable[[str], Any]],
        *,
        delimiter: str = "\t",
        name: str = "text",
    ) -> None:
        if not field_parsers:
            raise ValueError("field_parsers must not be empty")
        self.field_parsers = tuple(field_parsers)
        self.delimiter = delimiter
        self.name = name

    def encode(self, records: Iterable[Sequence[Any]]) -> bytes:
        lines = []
        nfields = len(self.field_parsers)
        for rec in records:
            if len(rec) != nfields:
                raise ValueError(
                    f"record has {len(rec)} fields, codec expects {nfields}"
                )
            lines.append(self.delimiter.join(str(f) for f in rec))
        if not lines:
            return b""
        return ("\n".join(lines) + "\n").encode("utf-8")

    def decode(self, data: bytes) -> Iterator[tuple[Any, ...]]:
        parsers = self.field_parsers
        delim = self.delimiter
        for line in data.decode("utf-8").splitlines():
            if not line:
                continue
            fields = line.split(delim)
            if len(fields) != len(parsers):
                raise ValueError(f"malformed line: {line!r}")
            yield tuple(p(f) for p, f in zip(parsers, fields))


class RawLineCodec:
    """Text lines delivered *unparsed* — each record is the raw line string.

    This is how Hadoop's TextInputFormat presents data: field extraction is
    the map function's job, which is exactly the regime the paper's Table II
    measures (its sessionization map "parses each click log into user id,
    timestamp, url").
    """

    __slots__ = ("name",)

    def __init__(self, *, name: str = "rawline") -> None:
        self.name = name

    def encode(self, records: Iterable[str]) -> bytes:
        lines = list(records)
        if not lines:
            return b""
        for line in lines:
            if "\n" in line:
                raise ValueError("raw lines must not contain newlines")
        return ("\n".join(lines) + "\n").encode("utf-8")

    def decode(self, data: bytes) -> Iterator[str]:
        for line in data.decode("utf-8").splitlines():
            if line:
                yield line


class BinaryCodec:
    """SequenceFile-like binary records: no text parsing on decode."""

    __slots__ = ("name",)

    def __init__(self, *, name: str = "binary") -> None:
        self.name = name

    def encode(self, records: Iterable[Any]) -> bytes:
        return encode_frames(records)

    def decode(self, data: bytes) -> Iterator[Any]:
        return iter_frames(data)


_BASE_SIZES: dict[type, int] = {
    int: 28,
    float: 24,
    bool: 28,
    type(None): 16,
}


def estimate_size(obj: Any, _depth: int = 0) -> int:
    """Estimate the in-memory footprint of ``obj`` in bytes.

    Used for buffer and state-size accounting (map output buffers, the
    incremental hash table's memory budget).  Deliberately cheap and
    approximate: containers are traversed to depth 3, beyond which elements
    are charged a flat pointer cost.
    """
    t = type(obj)
    base = _BASE_SIZES.get(t)
    if base is not None:
        return base
    if t is str:
        return 49 + len(obj)
    if t is bytes or t is bytearray:
        return 33 + len(obj)
    if t in (tuple, list):
        size = sys.getsizeof(obj)
        if _depth >= 3:
            return size
        return size + sum(estimate_size(x, _depth + 1) for x in obj)
    if t is dict:
        size = sys.getsizeof(obj)
        if _depth >= 3:
            return size
        return size + sum(
            estimate_size(k, _depth + 1) + estimate_size(v, _depth + 1)
            for k, v in obj.items()
        )
    if t is set or t is frozenset:
        size = sys.getsizeof(obj)
        if _depth >= 3:
            return size
        return size + sum(estimate_size(x, _depth + 1) for x in obj)
    return sys.getsizeof(obj)

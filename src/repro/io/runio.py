"""Reading and writing runs of key-value pairs on a :class:`LocalDisk`.

A *run* is a file of framed ``(key, value)`` pairs.  Sort-merge writes runs
in key order; hash techniques write unordered partitions.  The same framing
is used for both, so readers can stream either.

Writers buffer frames and flush in large chunks to keep the accounted
operation counts realistic (one disk op per flush, not per record).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.io.disk import LocalDisk
from repro.io.serialization import encode_frames, iter_frames

__all__ = ["RunWriter", "read_run", "stream_run", "write_run"]

_DEFAULT_FLUSH = 4 * 1024 * 1024


class RunWriter:
    """Buffered writer of framed pairs to one file on a :class:`LocalDisk`."""

    def __init__(
        self,
        disk: LocalDisk,
        path: str,
        *,
        flush_bytes: int = _DEFAULT_FLUSH,
    ) -> None:
        self.disk = disk
        self.path = path
        self.flush_bytes = flush_bytes
        self._pending: list[Any] = []
        self._pending_bytes = 0
        self.records_written = 0
        self.bytes_written = 0
        self._closed = False
        disk.create(path, overwrite=True)

    def write(self, item: Any) -> None:
        if self._closed:
            raise ValueError(f"writer for {self.path} is closed")
        self._pending.append(item)
        # A cheap length proxy; exact framing happens at flush time.
        self._pending_bytes += 64
        self.records_written += 1
        if self._pending_bytes >= self.flush_bytes:
            self._flush()

    def write_all(self, items: Iterable[Any]) -> None:
        for item in items:
            self.write(item)

    def _flush(self) -> None:
        if not self._pending:
            return
        chunk = encode_frames(self._pending)
        self.disk.append(self.path, chunk)
        self.bytes_written += len(chunk)
        self._pending.clear()
        self._pending_bytes = 0

    def close(self) -> None:
        if not self._closed:
            self._flush()
            self._closed = True

    def __enter__(self) -> "RunWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def write_run(disk: LocalDisk, path: str, items: Iterable[Any]) -> int:
    """Write ``items`` as a run at ``path``; return the byte size written."""
    with RunWriter(disk, path) as w:
        w.write_all(items)
    return w.bytes_written


def read_run(disk: LocalDisk, path: str) -> list[Any]:
    """Read a whole run into memory (test/debug helper)."""
    return list(iter_frames(disk.read(path)))


def stream_run(disk: LocalDisk, path: str, chunk_size: int = 1 << 20) -> Iterator[Any]:
    """Stream a run's items, reading the file in ``chunk_size`` pieces.

    Frames may straddle chunk boundaries; the reader carries the remainder
    between chunks, so disk accounting still reflects large sequential reads.
    """
    import struct

    header = struct.Struct("<I")
    buf = b""
    import pickle

    for chunk in disk.stream(path, chunk_size):
        buf += chunk
        offset = 0
        while True:
            if offset + header.size > len(buf):
                break
            (length,) = header.unpack_from(buf, offset)
            end = offset + header.size + length
            if end > len(buf):
                break
            yield pickle.loads(buf[offset + header.size : end])
            offset = end
        buf = buf[offset:]
    if buf:
        raise ValueError(f"truncated trailing frame in {path}")

"""Spill-file lifecycle management.

Map tasks, shuffle buffers and hash tables all spill data to local disk
under memory pressure.  :class:`SpillManager` centralises naming, tracking
and cleanup of those files for one task, and accumulates the spill-volume
counters that Table I and the §V comparison report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.io.disk import LocalDisk
from repro.io.runio import stream_run, write_run

__all__ = ["SpillFile", "SpillManager"]


@dataclass(frozen=True, slots=True)
class SpillFile:
    """One spill on disk: its path, byte size and record count."""

    path: str
    nbytes: int
    records: int
    tag: str = ""


class SpillManager:
    """Creates, tracks and deletes spill files for one logical owner.

    Parameters
    ----------
    disk:
        The local disk that receives the spills.
    namespace:
        Prefix for every file this manager creates, e.g. ``"map-0042"``.
    """

    def __init__(self, disk: LocalDisk, namespace: str) -> None:
        self.disk = disk
        self.namespace = namespace.rstrip("/")
        self._seq = 0
        self.spills: list[SpillFile] = []
        self.total_spilled_bytes = 0
        self.total_spilled_records = 0

    def _next_path(self, tag: str) -> str:
        path = f"{self.namespace}/spill-{self._seq:05d}{('.' + tag) if tag else ''}"
        self._seq += 1
        return path

    def spill(self, items: Iterable[Any], *, tag: str = "", count: int | None = None) -> SpillFile:
        """Write ``items`` as a new spill file and record its size.

        ``count`` may be supplied when the caller already knows the record
        count (avoids forcing a second pass over a generator).
        """
        path = self._next_path(tag)
        if count is None:
            items = list(items)
            count = len(items)
        nbytes = write_run(self.disk, path, items)
        sf = SpillFile(path=path, nbytes=nbytes, records=count, tag=tag)
        self.spills.append(sf)
        self.total_spilled_bytes += nbytes
        self.total_spilled_records += count
        return sf

    def stream(self, spill: SpillFile) -> Iterable[Any]:
        """Stream back the contents of one spill file."""
        return stream_run(self.disk, spill.path)

    def remove(self, spill: SpillFile) -> None:
        """Delete one spill file (it stays in the historical totals)."""
        self.disk.delete(spill.path)
        self.spills.remove(spill)

    def clear(self) -> None:
        """Delete every live spill file."""
        for spill in list(self.spills):
            self.remove(spill)

    @property
    def live_bytes(self) -> int:
        return sum(s.nbytes for s in self.spills)

    def __len__(self) -> int:
        return len(self.spills)

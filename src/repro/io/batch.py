"""Columnar record batches for the batch kernel path.

The tuple path moves map output through Python as one ``(key, value)``
tuple per record; every sort, fanout and merge pays per-tuple dispatch.
This module provides the columnar alternative:

* :class:`RecordBatch` stores *n* pairs column-wise — keys as a decoded
  list (they drive partitioning, sorting and grouping), values as
  length-prefixed pickle frames packed into one shared buffer.  Row
  selection (:meth:`RecordBatch.select`), stable key sorting and
  partition fanout reorder the offset column only; value payloads are
  handed out as zero-copy :class:`memoryview` slices and are never
  unpickled or copied until someone actually looks at them.
* The batch wire format extends the PR 2 framing
  (:func:`repro.io.serialization.encode_frames` /
  :func:`~repro.io.serialization.iter_frames`): a batch is a ``<I``
  key-section length, the key column as standard frames, then the value
  column as standard frames.  :meth:`RecordBatch.decode` reads the key
  column and only *scans* the value frame headers — the payload bytes
  stay in the encoded buffer, sliced lazily.
* Plain-list helpers (:func:`fanout_pairs`, :func:`sort_bucket`,
  :func:`merge_segments`) implement the per-batch partition fanout and
  the concat-and-stable-sort merge the batch engine paths use on decoded
  pairs.  Their orderings are proven equivalent to the tuple path's
  global ``(partition, key)`` sort and ``heapq.merge`` (see the
  docstrings), which is what keeps batch output byte-identical.

The module lives in ``repro.io`` beside the framing it extends
(``serialization.py``); it stays import-light so the kernel-transitive
modules (sortmerge, hop, the one-pass map/reduce substrates) can use it
without pulling coordinator machinery into kernel scope.

Everything here is kernel-pure (REP002): no globals, no filesystem, no
coordinator state.  All classes carry ``__slots__`` (REP007 — this module
is listed in the hot-path registry in ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import pickle
import struct
from array import array
from operator import itemgetter
from typing import Any, Callable, Iterable, Iterator

__all__ = [
    "RecordBatch",
    "fanout_pairs",
    "sort_bucket",
    "merge_segments",
]

_LEN = struct.Struct("<I")
_FIRST = itemgetter(0)


class RecordBatch:
    """A columnar batch of ``(key, value)`` pairs.

    ``keys`` is an ordinary list.  Values live as pickle payloads inside
    ``_values`` (a :class:`memoryview` over the frame section of the
    encoded buffer); ``_offsets[i]``/``_lengths[i]`` locate row *i*'s
    payload.  Row-reordering operations share the buffer between the
    source and result batches — a fanout of a 64 KB batch into 8
    partitions allocates 8 small offset arrays and zero value bytes.
    """

    # __weakref__ lets the reprosan lifetime tracker observe batch
    # liveness without strong references (and without a __dict__).
    __slots__ = ("keys", "_values", "_offsets", "_lengths", "__weakref__")

    def __init__(
        self,
        keys: list[Any],
        values: memoryview,
        offsets: array,
        lengths: array,
    ) -> None:
        self.keys = keys
        self._values = values
        self._offsets = offsets
        self._lengths = lengths

    # -- construction -------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Any, Any]]) -> "RecordBatch":
        """Build a batch from decoded pairs, encoding the value column."""
        keys: list[Any] = []
        buf = bytearray()
        offsets = array("Q")
        lengths = array("I")
        pack = _LEN.pack
        dumps = pickle.dumps
        proto = pickle.HIGHEST_PROTOCOL
        for key, value in pairs:
            keys.append(key)
            payload = dumps(value, protocol=proto)
            buf += pack(len(payload))
            offsets.append(len(buf))
            lengths.append(len(payload))
            buf += payload
        # bytes() freezes the buffer: exported memoryviews can never hit a
        # BufferError from a later resize, even after the batch is spilled
        # and released.
        return cls(keys, memoryview(bytes(buf)), offsets, lengths)

    @classmethod
    def decode(cls, data: bytes | bytearray | memoryview) -> "RecordBatch":
        """Decode the batch wire format; value payloads stay zero-copy.

        The key column is unpickled (keys are compared, hashed and
        partitioned); the value column is only header-scanned — payload
        bytes remain in ``data``, referenced by the returned batch.
        """
        view = memoryview(data)
        if len(view) < _LEN.size:
            raise ValueError("truncated batch header")
        (key_len,) = _LEN.unpack_from(view, 0)
        body = view[_LEN.size :]
        if key_len > len(body):
            raise ValueError("truncated batch key section")
        keys = list(_iter_frames_view(body[:key_len]))
        values = body[key_len:]
        offsets = array("Q")
        lengths = array("I")
        unpack_from = _LEN.unpack_from
        header = _LEN.size
        offset = 0
        end = len(values)
        while offset < end:
            if offset + header > end:
                raise ValueError("truncated value frame header")
            (length,) = unpack_from(values, offset)
            offset += header
            if offset + length > end:
                raise ValueError("truncated value frame payload")
            offsets.append(offset)
            lengths.append(length)
            offset += length
        if len(offsets) != len(keys):
            raise ValueError(
                f"batch has {len(keys)} keys but {len(offsets)} values"
            )
        return cls(keys, values, offsets, lengths)

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def value_bytes(self) -> int:
        """Total value payload bytes (excluding frame headers)."""
        return sum(self._lengths)

    def key_at(self, i: int) -> Any:
        return self.keys[i]

    def value_view(self, i: int) -> memoryview:
        """Zero-copy view of row *i*'s pickled value payload."""
        offset = self._offsets[i]
        return self._values[offset : offset + self._lengths[i]]

    def value_at(self, i: int) -> Any:
        return pickle.loads(self.value_view(i))

    def pair_at(self, i: int) -> tuple[Any, Any]:
        return self.keys[i], self.value_at(i)

    def iter_pairs(self) -> Iterator[tuple[Any, Any]]:
        loads = pickle.loads
        values = self._values
        lengths = self._lengths
        for key, offset, length in zip(self.keys, self._offsets, lengths):
            yield key, loads(values[offset : offset + length])

    def to_pairs(self) -> list[tuple[Any, Any]]:
        return list(self.iter_pairs())

    # -- row reordering (shared-buffer, zero value copies) ------------------

    def select(self, indices: Iterable[int]) -> "RecordBatch":
        """A new batch of the given rows, sharing this batch's buffer."""
        keys = self.keys
        src_off = self._offsets
        src_len = self._lengths
        out_keys: list[Any] = []
        offsets = array("Q")
        lengths = array("I")
        for i in indices:
            out_keys.append(keys[i])
            offsets.append(src_off[i])
            lengths.append(src_len[i])
        return RecordBatch(out_keys, self._values, offsets, lengths)

    def sorted_by_key(self) -> "RecordBatch":
        """Rows stably sorted by key; equal keys keep batch order."""
        keys = self.keys
        order = sorted(range(len(keys)), key=keys.__getitem__)
        return self.select(order)

    def fanout(
        self, partitioner: Callable[[Any, int], int], num_partitions: int
    ) -> list["RecordBatch"]:
        """Split rows by partition, preserving batch order within each.

        All returned batches share this batch's value buffer.
        """
        index_buckets: list[array] = [array("Q") for _ in range(num_partitions)]
        appends = [b.append for b in index_buckets]
        for i, key in enumerate(self.keys):
            appends[partitioner(key, num_partitions)](i)
        return [self.select(bucket) for bucket in index_buckets]

    # -- encoding -----------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize in the columnar batch wire format.

        Layout: ``<I`` key-section byte length, the key column as
        standard length-prefixed pickle frames, then the value column as
        standard frames.  ``decode(encode())`` round-trips exactly.
        """
        buf = bytearray()
        pack = _LEN.pack
        dumps = pickle.dumps
        proto = pickle.HIGHEST_PROTOCOL
        for key in self.keys:
            payload = dumps(key, protocol=proto)
            buf += pack(len(payload))
            buf += payload
        out = bytearray(pack(len(buf)))
        out += buf
        values = self._values
        for offset, length in zip(self._offsets, self._lengths):
            out += pack(length)
            out += values[offset : offset + length]
        return bytes(out)

    def encode_pairs(self) -> bytes:
        """Serialize as the PR 2 *pair* framing (one frame per pair).

        Byte-identical to ``encode_frames(self.to_pairs())`` — the format
        spill files, runs and shuffle segments use — so a batch can feed
        :func:`repro.io.runio.write_run` paths without disturbing the
        determinism contract.
        """
        from repro.io.serialization import encode_frames

        return encode_frames(self.iter_pairs())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RecordBatch(n={len(self.keys)}, value_bytes={self.value_bytes})"


def _iter_frames_view(view: memoryview) -> Iterator[Any]:
    """``iter_frames`` over a memoryview slice (same framing, no copy)."""
    loads = pickle.loads
    unpack_from = _LEN.unpack_from
    header = _LEN.size
    offset = 0
    end = len(view)
    while offset < end:
        if offset + header > end:
            raise ValueError("truncated frame header")
        (length,) = unpack_from(view, offset)
        offset += header
        if offset + length > end:
            raise ValueError("truncated frame payload")
        yield loads(view[offset : offset + length])
        offset += length


# -- plain-list batch helpers (the engine batch paths) -------------------------


def fanout_pairs(
    pairs: Iterable[tuple[Any, Any]],
    partitioner: Callable[[Any, int], int],
    num_partitions: int,
) -> list[list[tuple[Any, Any]]]:
    """Fan pairs out into one bucket per partition, preserving order.

    Bucket *p* holds exactly the pairs the tuple path would tag with
    partition *p*, in arrival order — so a stable per-bucket key sort
    reproduces the tuple path's global stable ``(partition, key)`` sort
    partition by partition.
    """
    buckets: list[list[tuple[Any, Any]]] = [[] for _ in range(num_partitions)]
    appends = [b.append for b in buckets]
    for pair in pairs:
        appends[partitioner(pair[0], num_partitions)](pair)
    return buckets


def sort_bucket(bucket: list[tuple[Any, Any]]) -> list[tuple[Any, Any]]:
    """Stable in-place key sort of one fanout bucket; returns the bucket.

    Equal keys keep arrival order, matching the stable global sort of the
    tuple path (``list.sort`` is stable), so the concatenation of sorted
    buckets in ascending partition order is byte-identical to the tuple
    path's sorted ``(partition, key, value)`` run.
    """
    bucket.sort(key=_FIRST)
    return bucket


def merge_segments(
    segments: Iterable[Iterable[tuple[Any, Any]]]
) -> list[tuple[Any, Any]]:
    """Merge key-sorted segments: concatenate in stream order, stable sort.

    Equivalent to ``heapq.merge`` with its stream-index tie-break: both
    are stable with respect to stream order for equal keys — ``heapq``
    yields the earlier stream's records first, and here the earlier
    stream's records precede the later's in the concatenation, which a
    stable sort preserves.  Unlike the heap this is a single Timsort over
    already-sorted runs (galloping), which is what the batch path buys.
    """
    out: list[tuple[Any, Any]] = []
    for seg in segments:
        out.extend(seg)
    out.sort(key=_FIRST)
    return out

"""Storage device profiles.

The paper's measurement study ties its conclusions to the behaviour of the
storage devices on each node: a single HDD serving HDFS input/output *and*
intermediate data is "often maxed out and subject to random I/Os", while
adding an SSD for intermediate data relieves contention but does not remove
the blocking merge.  A :class:`DeviceProfile` captures the small set of
parameters both the real engine's accounting layer and the discrete-event
simulator need to model a device:

* sequential bandwidth (bytes/second),
* random-access penalty, expressed as an average positioning time per
  non-sequential operation (seconds), and
* a human-readable name for reports.

Profiles are plain frozen dataclasses so they can be shared freely between
threads and hashed into experiment configuration keys.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DeviceProfile",
    "HDD_7200RPM",
    "SSD_SATA",
    "RAMDISK",
    "transfer_time",
]


@dataclass(frozen=True, slots=True)
class DeviceProfile:
    """Performance parameters of a storage device.

    Parameters
    ----------
    name:
        Identifier used in reports (``"hdd"``, ``"ssd"``, ...).
    seq_bandwidth:
        Sustained sequential throughput in bytes per second.
    seek_time:
        Average positioning cost, in seconds, charged once per random
        (non-sequential) operation.  Sequential continuation reads/writes
        are charged bandwidth only.
    capacity:
        Usable capacity in bytes.  The paper's SSD experiment uses a 64 GB
        SSD that is much smaller than the HDD; capacity lets callers model
        placement constraints.
    """

    name: str
    seq_bandwidth: float
    seek_time: float
    capacity: int

    def __post_init__(self) -> None:
        if self.seq_bandwidth <= 0:
            raise ValueError("seq_bandwidth must be positive")
        if self.seek_time < 0:
            raise ValueError("seek_time must be non-negative")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")

    def io_time(self, nbytes: int, *, sequential: bool = True) -> float:
        """Return the service time in seconds for one request of ``nbytes``."""
        return transfer_time(self, nbytes, sequential=sequential)


def transfer_time(profile: DeviceProfile, nbytes: int, *, sequential: bool = True) -> float:
    """Service time for a single request of ``nbytes`` on ``profile``.

    A random request pays one positioning penalty plus the bandwidth-limited
    transfer; a sequential request pays bandwidth only.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    t = nbytes / profile.seq_bandwidth
    if not sequential:
        t += profile.seek_time
    return t


#: A 7200 RPM SATA disk of the 2010/2011 era, matching the class of hardware
#: in the paper's 10-node cluster: ~90 MB/s sequential, ~8.5 ms average
#: positioning time, 1 TB.
HDD_7200RPM = DeviceProfile(
    name="hdd",
    seq_bandwidth=90 * 1024 * 1024,
    seek_time=8.5e-3,
    capacity=1024**4,
)

#: The 64 GB Intel SATA SSD used in the paper's storage experiment:
#: ~250 MB/s sequential, effectively negligible positioning time.
SSD_SATA = DeviceProfile(
    name="ssd",
    seq_bandwidth=250 * 1024 * 1024,
    seek_time=0.1e-3,
    capacity=64 * 1024**3,
)

#: An idealised memory-backed device, useful in tests to isolate logic from
#: timing and to model "ample memory" configurations.
RAMDISK = DeviceProfile(
    name="ram",
    seq_bandwidth=8 * 1024**3,
    seek_time=0.0,
    capacity=256 * 1024**3,
)

"""I/O substrate: accounted local disks, device profiles, serialization.

Everything the executable engines persist goes through
:class:`~repro.io.disk.LocalDisk`, which counts bytes, operations and
simulated device busy-time.  Those counters feed the Table I / §V
reproductions directly.
"""

from repro.io.batch import RecordBatch, fanout_pairs, merge_segments, sort_bucket
from repro.io.device import HDD_7200RPM, RAMDISK, SSD_SATA, DeviceProfile, transfer_time
from repro.io.disk import DiskFullError, DiskStats, LocalDisk
from repro.io.runio import RunWriter, read_run, stream_run, write_run
from repro.io.serialization import (
    BinaryCodec,
    RawLineCodec,
    RecordCodec,
    TextLineCodec,
    encode_frames,
    estimate_size,
    frame_count,
    iter_frames,
)
from repro.io.spill import SpillFile, SpillManager

__all__ = [
    "DeviceProfile",
    "HDD_7200RPM",
    "SSD_SATA",
    "RAMDISK",
    "transfer_time",
    "LocalDisk",
    "DiskStats",
    "DiskFullError",
    "RunWriter",
    "write_run",
    "read_run",
    "stream_run",
    "SpillFile",
    "SpillManager",
    "BinaryCodec",
    "TextLineCodec",
    "RawLineCodec",
    "RecordCodec",
    "encode_frames",
    "iter_frames",
    "frame_count",
    "estimate_size",
    "RecordBatch",
    "fanout_pairs",
    "sort_bucket",
    "merge_segments",
]

"""Command-line interface: ``python -m repro <command> ...``.

Three commands cover the repository's everyday uses without writing code:

* ``run``      — execute one of the paper's workloads on a real engine at
  laptop scale and print its counters;
* ``simulate`` — replay a workload at paper scale in the cluster simulator,
  print the figure sparklines, optionally export the series for plotting;
* ``compare``  — run the same workload on the sort-merge baseline and the
  one-pass engine and print the §V-style comparison.

A fourth command, ``trace``, runs a workload with the tracing subsystem
on and prints (or writes) the span timeline; ``run`` and ``compare`` take
the same ``--trace``/``--trace-format`` flags to capture traces alongside
their normal output.  A fifth, ``lint``, runs the repo-specific static
analysis (``docs/STATIC_ANALYSIS.md``) over the source tree.  A sixth,
``analyze``, derives the performance report (critical path, barrier
stalls, skew, metrics) from a saved trace file or journal directory;
``run`` and ``compare`` take ``--analyze`` to print it inline.

Examples::

    python -m repro run --workload page-frequency --engine onepass --records 50000
    python -m repro simulate --workload sessionization --engine hadoop --ssd
    python -m repro compare --workload per-user-count --records 100000
    python -m repro simulate --workload inverted-index --engine onepass \
        --export-dir out/
    python -m repro trace --workload sessionization --engine hadoop
    python -m repro run --workload sessionization --engine hadoop \
        --trace out.json --trace-format chrome
    python -m repro analyze out.json --format terminal
    python -m repro run --workload per-user-count --engine onepass --analyze
    python -m repro lint src/ --format json
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from repro.analysis.series import sparkline
from repro.analysis.tables import format_table, human_bytes, human_time

WORKLOADS = ("sessionization", "page-frequency", "per-user-count", "inverted-index")
ENGINES = ("hadoop", "hop", "onepass")


def _click_records(n: int):
    from repro.workloads.clickstream import ClickStreamConfig, generate_clicks

    return list(
        generate_clicks(
            ClickStreamConfig(num_clicks=n, num_users=max(10, n // 20), num_urls=max(10, n // 50))
        )
    )


def _document_records(n: int):
    from repro.workloads.documents import DocumentConfig, generate_documents

    return list(
        generate_documents(
            DocumentConfig(num_docs=max(1, n // 60), vocab_size=5_000, markup_per_word=2.0)
        )
    )


def _build_jobs(workload: str):
    """Return (records_fn, sortmerge_job_fn, onepass_job_fn)."""
    from repro.workloads import (
        inverted_index_job,
        inverted_index_onepass_job,
        page_frequency_job,
        page_frequency_onepass_job,
        per_user_count_job,
        per_user_count_onepass_job,
        sessionization_job,
        sessionization_onepass_job,
    )

    if workload == "sessionization":
        return (
            _click_records,
            lambda i, o: sessionization_job(i, o, gap=5.0),
            lambda i, o: sessionization_onepass_job(i, o, gap=5.0),
        )
    if workload == "page-frequency":
        return _click_records, page_frequency_job, page_frequency_onepass_job
    if workload == "per-user-count":
        return _click_records, per_user_count_job, per_user_count_onepass_job
    if workload == "inverted-index":
        return _document_records, inverted_index_job, inverted_index_onepass_job
    raise SystemExit(f"unknown workload {workload!r}")


def _run_real(
    workload: str,
    engine: str,
    records: int,
    nodes: int,
    executor: str | None = None,
    tracer: Any = None,
    journal: Any = None,
    batch: bool = False,
) -> Any:
    import dataclasses

    from repro.core.engine import OnePassEngine
    from repro.mapreduce.hop import HOPEngine
    from repro.mapreduce.runtime import HadoopEngine, LocalCluster

    records_fn, sm_job, op_job = _build_jobs(workload)
    cluster = LocalCluster(num_nodes=nodes, block_size=256 * 1024)
    cluster.hdfs.write_records("in", records_fn(records))
    if engine in ("hadoop", "hop"):
        job = sm_job("in", "out")
        if batch:
            job = job.with_config(batch=True)
        engine_cls = HadoopEngine if engine == "hadoop" else HOPEngine
        return engine_cls(
            cluster, executor=executor, tracer=tracer, journal=journal
        ).run(job)
    op = op_job("in", "out")
    if batch:
        op = dataclasses.replace(
            op, config=dataclasses.replace(op.config, batch=True)
        )
    return OnePassEngine(
        cluster, executor=executor, tracer=tracer, journal=journal
    ).run(op)


def _apply_log_level(args: argparse.Namespace) -> None:
    if getattr(args, "log_level", None):
        from repro.obs.log import set_level

        set_level(args.log_level)


def _maybe_write_trace(args: argparse.Namespace, result: Any) -> None:
    """Write ``result``'s trace if ``--trace`` was given (run/compare/trace)."""
    if not getattr(args, "trace", None):
        return
    from repro.obs.export import write_trace

    tracer = result.trace
    write_trace(
        args.trace,
        args.trace_format,
        tracer.spans,
        tracer.events,
        job_name=result.job_name,
        metrics=tracer.metrics.as_report() if tracer.enabled else None,
    )
    print(f"wrote {args.trace_format} trace to {args.trace}")


def _print_counters(result: Any, title: str) -> None:
    c = result.counters
    print(
        format_table(
            ("counter", "value"),
            [
                ("wall time", human_time(result.wall_time)),
                ("map input records", int(c["map.input.records"])),
                ("map output records", int(c["map.output.records"])),
                ("sorted records", int(c["sort.records"])),
                ("hash probes", int(c["hash.probes"])),
                ("shuffle", human_bytes(c["shuffle.bytes"])),
                ("reduce spill", human_bytes(c["reduce.spill.bytes"])),
                ("merge reads", human_bytes(c["merge.read.bytes"])),
                ("output records", result.output_records),
            ],
            title=title,
        )
    )


def _print_analysis(tracer: Any, job_name: str) -> None:
    """Print the analyzer's terminal report for a live traced run."""
    from repro.obs.analyze import analyze_tracer, render_text

    print()
    print(render_text(analyze_tracer(tracer, job_name=job_name)), end="")


def cmd_run(args: argparse.Namespace) -> int:
    _apply_log_level(args)
    tracer = None
    if args.trace or args.analyze:
        from repro.obs.tracer import Tracer

        tracer = Tracer()
    journal = None
    if args.journal:
        from repro.mapreduce.journal import K_RUN_CONFIG, JobJournal

        journal = JobJournal(args.journal)
        if journal.resume_state().run_config is None:
            journal.append(
                K_RUN_CONFIG,
                workload=args.workload,
                engine=args.engine,
                records=args.records,
                nodes=args.nodes,
            )
    result = _run_real(
        args.workload,
        args.engine,
        args.records,
        args.nodes,
        args.executor,
        tracer,
        journal,
        batch=args.batch,
    )
    _print_counters(
        result, f"{args.workload} on {args.engine} ({args.records} records)"
    )
    _maybe_write_trace(args, result)
    if args.analyze:
        _print_analysis(tracer, result.job_name)
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    """Re-run a journalled job, skipping everything already committed."""
    from repro.mapreduce.journal import JobJournal

    _apply_log_level(args)
    journal = JobJournal(args.journal)
    cfg = journal.resume_state().run_config
    if cfg is None:
        raise SystemExit(
            f"{args.journal}: no run-config record; create the journal with "
            f"'repro run --journal {args.journal} ...'"
        )
    result = _run_real(
        cfg["workload"], cfg["engine"], cfg["records"], cfg["nodes"], journal=journal
    )
    _print_counters(
        result,
        f"resumed {cfg['workload']} on {cfg['engine']} ({cfg['records']} records)",
    )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Crashpoint sweep: crash at journal-append sites, resume, verify."""
    import os
    import shutil
    import tempfile

    from repro.core.engine import OnePassEngine
    from repro.mapreduce.hop import HOPEngine
    from repro.mapreduce.runtime import HadoopEngine, LocalCluster
    from repro.testing import ChaosTarget, CrashpointInvariantError, run_crashpoint_sweep

    records_fn, sm_job, op_job = _build_jobs(args.workload)
    data = records_fn(args.records)
    job_fn = op_job if args.engine == "onepass" else sm_job
    engine_cls = {"hadoop": HadoopEngine, "hop": HOPEngine, "onepass": OnePassEngine}[
        args.engine
    ]

    def make_cluster() -> Any:
        cluster = LocalCluster(num_nodes=args.nodes, block_size=256 * 1024)
        cluster.hdfs.write_records("in", data)
        return cluster

    target = ChaosTarget(
        name=f"{args.workload}/{args.engine}",
        make_cluster=make_cluster,
        make_engine=lambda cluster, journal: engine_cls(
            cluster, executor=args.executor, journal=journal
        ),
        make_job=lambda: job_fn("in", "out"),
    )
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    crash_modes = ("after", "torn") if args.crash_mode == "both" else (args.crash_mode,)
    try:
        report = run_crashpoint_sweep(
            target,
            workdir,
            mode=args.mode,
            samples=args.samples,
            seed=args.seed,
            crash_modes=crash_modes,
        )
    except CrashpointInvariantError as err:
        if args.artifacts:
            os.makedirs(args.artifacts, exist_ok=True)
            shutil.copytree(
                err.journal_dir,
                os.path.join(args.artifacts, os.path.basename(err.journal_dir)),
                dirs_exist_ok=True,
            )
            repro_path = os.path.join(args.artifacts, "repro.txt")
            with open(repro_path, "w", encoding="utf-8") as fh:
                fh.write(
                    f"python -m repro chaos --workload {args.workload} "
                    f"--engine {args.engine} --records {args.records} "
                    f"--nodes {args.nodes} --mode {args.mode} "
                    f"--samples {args.samples} --seed {args.seed} "
                    f"--crash-mode {err.crash_mode}\n\n{err}\n"
                )
            print(f"saved failing journal and repro to {args.artifacts}", file=sys.stderr)
        print(f"FAIL: {err}", file=sys.stderr)
        return 1
    else:
        print(report.summary())
        if not args.workdir:
            shutil.rmtree(workdir, ignore_errors=True)
        return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one workload with tracing on; print or write the timeline."""
    from repro.obs.export import summary_text, write_trace
    from repro.obs.tracer import Tracer

    _apply_log_level(args)
    tracer = Tracer()
    result = _run_real(
        args.workload, args.engine, args.records, args.nodes, args.executor, tracer
    )
    if args.out:
        write_trace(
            args.out,
            args.format,
            tracer.spans,
            tracer.events,
            job_name=result.job_name,
        )
        print(f"wrote {args.format} trace to {args.out}")
    else:
        print(summary_text(tracer.spans, tracer.events, job_name=result.job_name), end="")
    return 0


def _spec_from_args(args: argparse.Namespace):
    from repro.simulator.calibration import ClusterSpec

    return ClusterSpec(
        with_ssd=args.ssd,
        storage_nodes=5 if args.separate_storage else 0,
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.simulator.calibration import GB, PAPER_WORKLOADS
    from repro.simulator.pipelines import HadoopPipeline, HOPPipeline, OnePassPipeline

    profile = PAPER_WORKLOADS[args.workload]
    if args.input_gb:
        profile = profile.scaled(int(args.input_gb * GB))
    spec = _spec_from_args(args)
    pipeline_cls = {
        "hadoop": HadoopPipeline,
        "hop": HOPPipeline,
        "onepass": OnePassPipeline,
    }[args.engine]
    result = pipeline_cls(spec, profile, metric_bucket=args.bucket).run()

    print(
        f"{args.workload} on {args.engine}: "
        f"{human_time(result.makespan)} over {spec.nodes} nodes "
        f"({profile.input_bytes / GB:.0f} GB input)"
    )
    _times, series = result.task_log.counts_series(args.bucket)
    for phase in ("map", "shuffle", "merge", "reduce"):
        if series[phase].max() > 0:
            print(f"  {phase:7s} tasks {sparkline(series[phase], width=60)}")
    s = result.series
    print(f"  cpu util      {sparkline(s.cpu_utilization, width=60)}")
    print(f"  cpu iowait    {sparkline(s.cpu_iowait, width=60)}")
    print(f"  disk reads    {sparkline(s.disk_read_bytes_per_s, width=60)}")
    t = result.totals
    print(
        f"  reduce-side writes {human_bytes(t.reduce_spill_bytes + t.merge_write_bytes)}, "
        f"merge passes {t.merge_passes}, shuffle {human_bytes(t.shuffle_bytes)}"
    )
    if args.export_dir:
        from repro.analysis.export import write_run_bundle

        for path in write_run_bundle(result, args.export_dir):
            print(f"  wrote {path}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    import time

    records_fn, sm_job, op_job = _build_jobs(args.workload)
    from repro.core.engine import OnePassEngine
    from repro.mapreduce.runtime import HadoopEngine, LocalCluster

    _apply_log_level(args)
    data = records_fn(args.records)
    rows = []
    results = {}
    tracers: dict[str, Any] = {}
    for engine in ("sort-merge", "one-pass"):
        tracer = None
        if args.trace or args.analyze:
            from repro.obs.tracer import Tracer

            tracer = Tracer()
        tracers[engine] = tracer
        cluster = LocalCluster(num_nodes=args.nodes, block_size=256 * 1024)
        cluster.hdfs.write_records("in", data)
        t0 = time.process_time()
        if engine == "sort-merge":
            result = HadoopEngine(cluster, tracer=tracer).run(sm_job("in", "out"))
        else:
            result = OnePassEngine(cluster, tracer=tracer).run(op_job("in", "out"))
        cpu = time.process_time() - t0
        results[engine] = (result, cpu)
        if args.trace:
            from repro.obs.export import write_trace

            stem, dot, ext = args.trace.rpartition(".")
            path = f"{stem}-{engine}{dot}{ext}" if dot else f"{args.trace}-{engine}"
            write_trace(
                path,
                args.trace_format,
                tracer.spans,
                tracer.events,
                job_name=result.job_name,
            )
            print(f"wrote {args.trace_format} trace to {path}")
        c = result.counters
        rows.append(
            (
                engine,
                f"{cpu:.2f}s",
                human_time(result.wall_time),
                int(c["sort.records"]),
                human_bytes(c["reduce.spill.bytes"] + c["merge.write.bytes"]),
            )
        )
    print(
        format_table(
            ("engine", "process CPU", "wall", "sorted recs", "reduce-side writes"),
            rows,
            title=f"{args.workload}, {args.records} records",
        )
    )
    (sm, sm_cpu), (op, op_cpu) = results["sort-merge"], results["one-pass"]
    if sm_cpu > 0:
        print(
            f"\none-pass saves {1 - op_cpu / sm_cpu:.0%} CPU and "
            f"{1 - op.wall_time / sm.wall_time:.0%} wall time"
        )
    if args.analyze:
        from repro.obs.analyze import (
            analyze_tracer,
            diff_reports,
            render_delta_table,
            render_text,
        )

        reports = {
            engine: analyze_tracer(tracers[engine], job_name=engine)
            for engine in ("sort-merge", "one-pass")
        }
        for engine in ("sort-merge", "one-pass"):
            print()
            print(render_text(reports[engine]), end="")
        diff = diff_reports(reports["sort-merge"], reports["one-pass"])
        print()
        print(
            render_delta_table(
                diff["phases"], title="per-phase delta: sort-merge -> one-pass"
            )
        )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Derive the performance report from a trace file or journal dir."""
    import os

    from repro.obs.analyze import (
        REPORT_FORMATS,
        analyze_journal,
        analyze_model,
        diff_reports,
        load_trace,
        render_delta_table,
        render_html,
        render_json,
        render_text,
    )

    if os.path.isdir(args.source):
        report = analyze_journal(args.source, detail=args.detail)
    else:
        report = analyze_model(load_trace(args.source))

    renderers = dict(zip(REPORT_FORMATS, (render_text, render_json, render_html)))
    text = renderers[args.format](report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.format} report to {args.out}")
    else:
        print(text, end="")

    if args.baseline:
        import json

        with open(args.baseline, "r", encoding="utf-8") as fh:
            base = json.load(fh)
        diff = diff_reports(base, report)
        print()
        print(render_delta_table(diff["phases"]))
        regressed = diff["regressed_phase"]
        if regressed:
            print(f"\nregressed phase: {regressed}")
        else:
            print("\nno phase regressed vs baseline")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="One-pass analytics reproduction: run workloads, "
        "simulate the paper's cluster, compare engines.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_flags(p: argparse.ArgumentParser) -> None:
        from repro.obs.export import TRACE_FORMATS

        p.add_argument(
            "--trace", default=None, metavar="PATH", help="capture a trace to PATH"
        )
        p.add_argument(
            "--trace-format",
            choices=TRACE_FORMATS,
            default="chrome",
            help="trace serialisation (default: chrome)",
        )
        p.add_argument(
            "--log-level",
            choices=("off", "error", "warn", "info", "debug"),
            default=None,
            help="structured logging to stderr (default: off)",
        )
        p.add_argument(
            "--analyze",
            action="store_true",
            help="print the trace-derived performance report (critical path, "
            "barrier stalls, skew) after the run",
        )

    p_run = sub.add_parser("run", help="run a workload on a real engine")
    p_run.add_argument("--workload", choices=WORKLOADS, required=True)
    p_run.add_argument("--engine", choices=ENGINES, default="onepass")
    p_run.add_argument("--records", type=int, default=50_000)
    p_run.add_argument("--nodes", type=int, default=3)
    p_run.add_argument(
        "--executor",
        default=None,
        help="task executor: serial (default), threads[:N], or processes[:N]",
    )
    p_run.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help="write a crash-consistent job journal to DIR (resumable with "
        "'repro resume DIR')",
    )
    p_run.add_argument(
        "--batch",
        action="store_true",
        help="use the columnar batch kernel path (byte-identical output; "
        "see docs/PERFORMANCE.md)",
    )
    add_trace_flags(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_resume = sub.add_parser(
        "resume", help="resume a journalled run, skipping committed work"
    )
    p_resume.add_argument("journal", help="journal directory from 'run --journal'")
    p_resume.add_argument(
        "--log-level",
        choices=("off", "error", "warn", "info", "debug"),
        default=None,
        help="structured logging to stderr (default: off)",
    )
    p_resume.set_defaults(fn=cmd_resume)

    p_chaos = sub.add_parser(
        "chaos", help="systematic crash-and-resume sweep over journal sites"
    )
    p_chaos.add_argument("--workload", choices=WORKLOADS, required=True)
    p_chaos.add_argument("--engine", choices=ENGINES, default="onepass")
    p_chaos.add_argument("--records", type=int, default=2_000)
    p_chaos.add_argument("--nodes", type=int, default=3)
    p_chaos.add_argument(
        "--executor",
        default=None,
        help="task executor: serial (default), threads[:N], or processes[:N]",
    )
    p_chaos.add_argument(
        "--mode",
        choices=("exhaustive", "sampled"),
        default="exhaustive",
        help="sweep every crash site or a seeded sample (default: exhaustive)",
    )
    p_chaos.add_argument(
        "--samples", type=int, default=8, help="sites per sweep in sampled mode"
    )
    p_chaos.add_argument(
        "--seed", type=int, default=0, help="site-sampling seed for --mode sampled"
    )
    p_chaos.add_argument(
        "--crash-mode",
        choices=("after", "torn", "both"),
        default="both",
        help="crash with the record durable, torn mid-write, or both (default)",
    )
    p_chaos.add_argument(
        "--workdir",
        default=None,
        metavar="DIR",
        help="keep per-site journals under DIR (default: temp dir, removed on pass)",
    )
    p_chaos.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="on failure, copy the offending journal and a repro command here",
    )
    p_chaos.set_defaults(fn=cmd_chaos)

    p_trace = sub.add_parser(
        "trace", help="run a workload with tracing on; print the timeline"
    )
    p_trace.add_argument("--workload", choices=WORKLOADS, required=True)
    p_trace.add_argument("--engine", choices=ENGINES, default="hadoop")
    p_trace.add_argument("--records", type=int, default=50_000)
    p_trace.add_argument("--nodes", type=int, default=3)
    p_trace.add_argument(
        "--executor",
        default=None,
        help="task executor: serial (default), threads[:N], or processes[:N]",
    )
    p_trace.add_argument(
        "--out", default=None, metavar="PATH", help="write instead of printing"
    )
    p_trace.add_argument(
        "--format",
        choices=("chrome", "jsonl", "summary"),
        default="chrome",
        help="serialisation for --out (default: chrome)",
    )
    p_trace.add_argument(
        "--log-level",
        choices=("off", "error", "warn", "info", "debug"),
        default=None,
        help="structured logging to stderr (default: off)",
    )
    p_trace.set_defaults(fn=cmd_trace)

    p_analyze = sub.add_parser(
        "analyze",
        help="performance report from a saved trace file or journal directory",
    )
    p_analyze.add_argument(
        "source",
        help="a jsonl/chrome trace file ('repro run --trace ...') or a "
        "journal directory ('repro run --journal DIR')",
    )
    p_analyze.add_argument(
        "--format",
        choices=("terminal", "json", "html"),
        default="terminal",
        help="report rendering (default: terminal)",
    )
    p_analyze.add_argument(
        "--out", default=None, metavar="PATH", help="write instead of printing"
    )
    p_analyze.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="a saved JSON report; print the per-phase delta table and name "
        "the regressed phase",
    )
    p_analyze.add_argument(
        "--detail",
        action="store_true",
        help="journal reports: include volatile session stats (grants, "
        "checkpoints) that differ between crashed and clean runs",
    )
    p_analyze.set_defaults(fn=cmd_analyze)

    p_sim = sub.add_parser("simulate", help="simulate at paper scale")
    p_sim.add_argument("--workload", choices=WORKLOADS, required=True)
    p_sim.add_argument("--engine", choices=ENGINES, default="hadoop")
    p_sim.add_argument("--input-gb", type=float, default=None, help="override input size")
    p_sim.add_argument("--ssd", action="store_true", help="HDD+SSD architecture")
    p_sim.add_argument(
        "--separate-storage", action="store_true", help="5 storage + 5 compute nodes"
    )
    p_sim.add_argument("--bucket", type=float, default=60.0, help="metric bucket (s)")
    p_sim.add_argument("--export-dir", default=None, help="dump CSV/JSON series here")
    p_sim.set_defaults(fn=cmd_simulate)

    p_cmp = sub.add_parser("compare", help="sort-merge vs one-pass on real engines")
    p_cmp.add_argument("--workload", choices=WORKLOADS, required=True)
    p_cmp.add_argument("--records", type=int, default=100_000)
    p_cmp.add_argument("--nodes", type=int, default=3)
    add_trace_flags(p_cmp)
    p_cmp.set_defaults(fn=cmd_compare)

    from repro.lint.cli import add_lint_parser

    add_lint_parser(sub)

    from repro.san.cli import add_sanitize_parser

    add_sanitize_parser(sub)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Command-line interface: ``python -m repro <command> ...``.

Three commands cover the repository's everyday uses without writing code:

* ``run``      — execute one of the paper's workloads on a real engine at
  laptop scale and print its counters;
* ``simulate`` — replay a workload at paper scale in the cluster simulator,
  print the figure sparklines, optionally export the series for plotting;
* ``compare``  — run the same workload on the sort-merge baseline and the
  one-pass engine and print the §V-style comparison.

Examples::

    python -m repro run --workload page-frequency --engine onepass --records 50000
    python -m repro simulate --workload sessionization --engine hadoop --ssd
    python -m repro compare --workload per-user-count --records 100000
    python -m repro simulate --workload inverted-index --engine onepass \
        --export-dir out/
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from repro.analysis.series import sparkline
from repro.analysis.tables import format_table, human_bytes, human_time

WORKLOADS = ("sessionization", "page-frequency", "per-user-count", "inverted-index")
ENGINES = ("hadoop", "hop", "onepass")


def _click_records(n: int):
    from repro.workloads.clickstream import ClickStreamConfig, generate_clicks

    return list(
        generate_clicks(
            ClickStreamConfig(num_clicks=n, num_users=max(10, n // 20), num_urls=max(10, n // 50))
        )
    )


def _document_records(n: int):
    from repro.workloads.documents import DocumentConfig, generate_documents

    return list(
        generate_documents(
            DocumentConfig(num_docs=max(1, n // 60), vocab_size=5_000, markup_per_word=2.0)
        )
    )


def _build_jobs(workload: str):
    """Return (records_fn, sortmerge_job_fn, onepass_job_fn)."""
    from repro.workloads import (
        inverted_index_job,
        inverted_index_onepass_job,
        page_frequency_job,
        page_frequency_onepass_job,
        per_user_count_job,
        per_user_count_onepass_job,
        sessionization_job,
        sessionization_onepass_job,
    )

    if workload == "sessionization":
        return (
            _click_records,
            lambda i, o: sessionization_job(i, o, gap=5.0),
            lambda i, o: sessionization_onepass_job(i, o, gap=5.0),
        )
    if workload == "page-frequency":
        return _click_records, page_frequency_job, page_frequency_onepass_job
    if workload == "per-user-count":
        return _click_records, per_user_count_job, per_user_count_onepass_job
    if workload == "inverted-index":
        return _document_records, inverted_index_job, inverted_index_onepass_job
    raise SystemExit(f"unknown workload {workload!r}")


def _run_real(
    workload: str, engine: str, records: int, nodes: int, executor: str | None = None
) -> Any:
    from repro.core.engine import OnePassEngine
    from repro.mapreduce.hop import HOPEngine
    from repro.mapreduce.runtime import HadoopEngine, LocalCluster

    records_fn, sm_job, op_job = _build_jobs(workload)
    cluster = LocalCluster(num_nodes=nodes, block_size=256 * 1024)
    cluster.hdfs.write_records("in", records_fn(records))
    if engine == "hadoop":
        return HadoopEngine(cluster, executor=executor).run(sm_job("in", "out"))
    if engine == "hop":
        return HOPEngine(cluster, executor=executor).run(sm_job("in", "out"))
    return OnePassEngine(cluster, executor=executor).run(op_job("in", "out"))


def cmd_run(args: argparse.Namespace) -> int:
    result = _run_real(args.workload, args.engine, args.records, args.nodes, args.executor)
    c = result.counters
    print(
        format_table(
            ("counter", "value"),
            [
                ("wall time", human_time(result.wall_time)),
                ("map input records", int(c["map.input.records"])),
                ("map output records", int(c["map.output.records"])),
                ("sorted records", int(c["sort.records"])),
                ("hash probes", int(c["hash.probes"])),
                ("shuffle", human_bytes(c["shuffle.bytes"])),
                ("reduce spill", human_bytes(c["reduce.spill.bytes"])),
                ("merge reads", human_bytes(c["merge.read.bytes"])),
                ("output records", result.output_records),
            ],
            title=f"{args.workload} on {args.engine} ({args.records} records)",
        )
    )
    return 0


def _spec_from_args(args: argparse.Namespace):
    from repro.simulator.calibration import ClusterSpec

    return ClusterSpec(
        with_ssd=args.ssd,
        storage_nodes=5 if args.separate_storage else 0,
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.simulator.calibration import GB, PAPER_WORKLOADS
    from repro.simulator.pipelines import HadoopPipeline, HOPPipeline, OnePassPipeline

    profile = PAPER_WORKLOADS[args.workload]
    if args.input_gb:
        profile = profile.scaled(int(args.input_gb * GB))
    spec = _spec_from_args(args)
    pipeline_cls = {
        "hadoop": HadoopPipeline,
        "hop": HOPPipeline,
        "onepass": OnePassPipeline,
    }[args.engine]
    result = pipeline_cls(spec, profile, metric_bucket=args.bucket).run()

    print(
        f"{args.workload} on {args.engine}: "
        f"{human_time(result.makespan)} over {spec.nodes} nodes "
        f"({profile.input_bytes / GB:.0f} GB input)"
    )
    _times, series = result.task_log.counts_series(args.bucket)
    for phase in ("map", "shuffle", "merge", "reduce"):
        if series[phase].max() > 0:
            print(f"  {phase:7s} tasks {sparkline(series[phase], width=60)}")
    s = result.series
    print(f"  cpu util      {sparkline(s.cpu_utilization, width=60)}")
    print(f"  cpu iowait    {sparkline(s.cpu_iowait, width=60)}")
    print(f"  disk reads    {sparkline(s.disk_read_bytes_per_s, width=60)}")
    t = result.totals
    print(
        f"  reduce-side writes {human_bytes(t.reduce_spill_bytes + t.merge_write_bytes)}, "
        f"merge passes {t.merge_passes}, shuffle {human_bytes(t.shuffle_bytes)}"
    )
    if args.export_dir:
        from repro.analysis.export import write_run_bundle

        for path in write_run_bundle(result, args.export_dir):
            print(f"  wrote {path}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    import time

    records_fn, sm_job, op_job = _build_jobs(args.workload)
    from repro.core.engine import OnePassEngine
    from repro.mapreduce.runtime import HadoopEngine, LocalCluster

    data = records_fn(args.records)
    rows = []
    results = {}
    for engine in ("sort-merge", "one-pass"):
        cluster = LocalCluster(num_nodes=args.nodes, block_size=256 * 1024)
        cluster.hdfs.write_records("in", data)
        t0 = time.process_time()
        if engine == "sort-merge":
            result = HadoopEngine(cluster).run(sm_job("in", "out"))
        else:
            result = OnePassEngine(cluster).run(op_job("in", "out"))
        cpu = time.process_time() - t0
        results[engine] = (result, cpu)
        c = result.counters
        rows.append(
            (
                engine,
                f"{cpu:.2f}s",
                human_time(result.wall_time),
                int(c["sort.records"]),
                human_bytes(c["reduce.spill.bytes"] + c["merge.write.bytes"]),
            )
        )
    print(
        format_table(
            ("engine", "process CPU", "wall", "sorted recs", "reduce-side writes"),
            rows,
            title=f"{args.workload}, {args.records} records",
        )
    )
    (sm, sm_cpu), (op, op_cpu) = results["sort-merge"], results["one-pass"]
    if sm_cpu > 0:
        print(
            f"\none-pass saves {1 - op_cpu / sm_cpu:.0%} CPU and "
            f"{1 - op.wall_time / sm.wall_time:.0%} wall time"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="One-pass analytics reproduction: run workloads, "
        "simulate the paper's cluster, compare engines.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a workload on a real engine")
    p_run.add_argument("--workload", choices=WORKLOADS, required=True)
    p_run.add_argument("--engine", choices=ENGINES, default="onepass")
    p_run.add_argument("--records", type=int, default=50_000)
    p_run.add_argument("--nodes", type=int, default=3)
    p_run.add_argument(
        "--executor",
        default=None,
        help="task executor: serial (default), threads[:N], or processes[:N]",
    )
    p_run.set_defaults(fn=cmd_run)

    p_sim = sub.add_parser("simulate", help="simulate at paper scale")
    p_sim.add_argument("--workload", choices=WORKLOADS, required=True)
    p_sim.add_argument("--engine", choices=ENGINES, default="hadoop")
    p_sim.add_argument("--input-gb", type=float, default=None, help="override input size")
    p_sim.add_argument("--ssd", action="store_true", help="HDD+SSD architecture")
    p_sim.add_argument(
        "--separate-storage", action="store_true", help="5 storage + 5 compute nodes"
    )
    p_sim.add_argument("--bucket", type=float, default=60.0, help="metric bucket (s)")
    p_sim.add_argument("--export-dir", default=None, help="dump CSV/JSON series here")
    p_sim.set_defaults(fn=cmd_simulate)

    p_cmp = sub.add_parser("compare", help="sort-merge vs one-pass on real engines")
    p_cmp.add_argument("--workload", choices=WORKLOADS, required=True)
    p_cmp.add_argument("--records", type=int, default=100_000)
    p_cmp.add_argument("--nodes", type=int, default=3)
    p_cmp.set_defaults(fn=cmd_compare)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""The cross-validation matrix: static rules ↔ dynamic detectors.

Two halves, both runnable from ``repro sanitize``:

* **Synthetic-violation battery** — one seeded fixture per static rule
  class, each deliberately committing the violation its rule forbids,
  run under an isolated sanitizer.  A detector passes when its fixture
  fires *exactly once* with a non-empty witness.  This is the proof that
  the dynamic layer actually detects what the static layer claims.

* **Clean matrix** — every workload × engine × executor leg run twice,
  sanitized and unsanitized, byte-comparing output digests and requiring
  zero violations.  The committed ``san-baseline.json`` pins the digests
  so any nondeterminism regression (or sanitizer-induced perturbation)
  fails loudly.

The deliberate violations below carry ``reprolint: disable`` markers:
they are the battery's *payload*, statically suppressed precisely
because the runtime detector is the layer under test.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.san.harness import Sanitizer, SanitizerConfig
from repro.san.report import SanReport

__all__ = [
    "BATTERY",
    "BASELINE_SCHEMA",
    "CROSS_VALIDATION",
    "BatteryResult",
    "LegResult",
    "battery_ok",
    "default_baseline_path",
    "load_baseline",
    "matrix_legs",
    "run_battery",
    "run_leg",
    "run_matrix",
    "write_baseline",
]

#: Static rule -> the dynamic detector that witnesses it at runtime.
CROSS_VALIDATION: dict[str, str] = {
    "REP001": "SAN001",
    "REP006": "SAN006",
    "REP101": "SAN001",
    "REP102": "SAN102",
    "REP103": "SAN103",
    "REP201": "SAN201",
    "REP202": "SAN202",
    "REP205": "SAN205",
}

BASELINE_SCHEMA = "repro.san-baseline/v1"

MATRIX_WORKLOADS = (
    "sessionization",
    "page-frequency",
    "per-user-count",
    "inverted-index",
)
MATRIX_ENGINES = ("hadoop", "hop", "onepass")
MATRIX_EXECUTORS = ("serial", "threads:2", "processes:2")


# -- battery fixtures ---------------------------------------------------------

#: Module state the REP201 fixture's kernel deliberately writes.
_BATTERY_STATE: dict[str, Any] = {}


def _noop_kernel(ctx: Any, spec: Any) -> Any:
    return spec


def _racy_kernel(ctx: Any, spec: Any) -> Any:
    # Deliberate REP201 violation: kernel writes module-global state.
    _BATTERY_STATE["last"] = spec  # reprolint: disable=REP201 -- battery payload
    return spec


def _register_battery_kernels() -> None:
    from repro.exec.base import register_kernel

    register_kernel("san.battery.noop", _noop_kernel)
    register_kernel("san.battery.racy", _racy_kernel)


def _entropy_hop() -> str:
    """One call deep, so the sentinel witnesses REP101's transitive case.

    ``os.urandom`` rather than ``uuid.uuid4`` — uuid4 *calls* urandom,
    which would trip two sentinels and break the fire-exactly-once
    contract."""
    return os.urandom(4).hex()  # reprolint: disable=REP001 -- battery payload


def _fixture_rep001(san: Sanitizer) -> None:
    with san.engine_scope():
        time.time()  # reprolint: disable=REP001 -- battery payload


def _fixture_rep101(san: Sanitizer) -> None:
    with san.engine_scope():
        _entropy_hop()  # reprolint: disable=REP101 -- battery payload


def _fixture_rep102(san: Sanitizer) -> None:
    from repro.exec.base import SerialExecutor

    _register_battery_kernels()
    # Deliberate REP102 violation: a closure rides on the spec.
    spec = {"part": 0, "fn": lambda x: x}  # reprolint: disable=REP003,REP102 -- battery payload
    with san.engine_scope():
        with SerialExecutor().session(context=None) as session:
            session.run_batch("san.battery.noop", [spec])


def _fixture_rep103(san: Sanitizer) -> None:
    from repro.io.disk import LocalDisk
    from repro.io.runio import RunWriter
    from repro.mapreduce.journal import K_OUTPUT_COMMIT, JobJournal

    workdir = tempfile.mkdtemp(prefix="reprosan-battery-")
    try:
        disk = LocalDisk()
        with san.engine_scope():
            # Deliberate REP103 violation: the writer is never closed,
            # yet the coordinator commits its output.
            writer = RunWriter(disk, "leak")  # reprolint: disable=REP103 -- battery payload
            writer.write(("k", 1))
            journal = JobJournal(workdir)
            journal.append(K_OUTPUT_COMMIT, digest="battery")
            journal.finalize()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _fixture_rep201(san: Sanitizer) -> None:
    from repro.exec.base import ThreadExecutor

    _register_battery_kernels()
    _BATTERY_STATE.clear()
    san.track_shared("repro.san.matrix._BATTERY_STATE", _BATTERY_STATE)
    specs = [{"part": 0}, {"part": 1}]
    with san.engine_scope():
        with ThreadExecutor(workers=2).session(context=None) as session:
            session.run_batch("san.battery.racy", specs)
    _BATTERY_STATE.clear()


def _fixture_rep202(san: Sanitizer) -> None:
    import threading

    from repro.exec.base import SerialExecutor

    _register_battery_kernels()
    # Deliberate REP202 violation: a lock rides on the spec.
    spec = {"part": 0, "guard": threading.Lock()}  # reprolint: disable=REP202 -- battery payload
    with san.engine_scope():
        with SerialExecutor().session(context=None) as session:
            session.run_batch("san.battery.noop", [spec])


def _fixture_rep205(san: Sanitizer) -> None:
    from repro.obs.tracer import Tracer

    tracer = Tracer()
    try:
        with san.engine_scope():
            # Deliberate REP205 violation: the span is entered but the
            # exception path never exits it.
            handle = tracer.span("battery.leaked")  # reprolint: disable=REP005,REP205 -- battery payload
            handle.__enter__()
            raise RuntimeError("battery: simulated failure")
    except RuntimeError:
        pass


def _fixture_rep006() -> SanReport:
    """REP006 needs two processes: hash order is fixed per interpreter."""
    from repro.san.hashseed import double_run

    code = (
        "print(list({'alpha', 'bravo', 'charlie', 'delta', 'echo', "
        "'foxtrot', 'golf', 'hotel'}))"
    )
    violation, _ = double_run(
        [sys.executable, "-c", code], label="battery: set-order print"
    )
    report = SanReport(detectors=("hashseed",))
    if violation is not None:
        report.add(violation)
    return report.finalize()


@dataclass(frozen=True)
class BatteryResult:
    rule: str
    expected: str
    fired: int
    report: SanReport

    @property
    def ok(self) -> bool:
        if self.fired != 1:
            return False
        v = self.report.violations[0]
        return v.id == self.expected and bool(v.witness)


def _run_fixture(fn: Callable[[Sanitizer], None], detectors: tuple[str, ...]) -> SanReport:
    with Sanitizer(SanitizerConfig(detectors=detectors)) as san:
        fn(san)
    return san.report


#: (static rule, expected violation id, fixture runner).
BATTERY: tuple[tuple[str, str, Callable[[], SanReport]], ...] = (
    ("REP001", "SAN001", lambda: _run_fixture(_fixture_rep001, ("sentinel",))),
    ("REP006", "SAN006", _fixture_rep006),
    ("REP101", "SAN001", lambda: _run_fixture(_fixture_rep101, ("sentinel",))),
    ("REP102", "SAN102", lambda: _run_fixture(_fixture_rep102, ("pickle",))),
    ("REP103", "SAN103", lambda: _run_fixture(_fixture_rep103, ("resource",))),
    ("REP201", "SAN201", lambda: _run_fixture(_fixture_rep201, ("race",))),
    ("REP202", "SAN202", lambda: _run_fixture(_fixture_rep202, ("pickle",))),
    ("REP205", "SAN205", lambda: _run_fixture(_fixture_rep205, ("resource",))),
)


def run_battery(
    rules: tuple[str, ...] | None = None,
) -> list[BatteryResult]:
    out = []
    for rule, expected, runner in BATTERY:
        if rules is not None and rule not in rules:
            continue
        report = runner()
        out.append(
            BatteryResult(
                rule=rule,
                expected=expected,
                fired=len(report.violations),
                report=report,
            )
        )
    return out


def battery_ok(results: list[BatteryResult]) -> bool:
    return bool(results) and all(r.ok for r in results)


# -- the clean matrix ---------------------------------------------------------


@dataclass(frozen=True)
class LegResult:
    leg: str
    digest: str
    sanitized_digest: str
    report: SanReport

    @property
    def ok(self) -> bool:
        return self.report.clean and self.digest == self.sanitized_digest


def matrix_legs(
    *,
    workloads: tuple[str, ...] = MATRIX_WORKLOADS,
    engines: tuple[str, ...] = MATRIX_ENGINES,
    executors: tuple[str, ...] = MATRIX_EXECUTORS,
) -> list[tuple[str, str, str]]:
    return [
        (w, e, x) for w in workloads for e in engines for x in executors
    ]


def _leg_digest(workload: str, engine: str, executor: str, records: int, nodes: int) -> str:
    """Run one leg and return the canonical output digest."""
    import hashlib

    from repro.cli import _build_jobs
    from repro.core.engine import OnePassEngine
    from repro.mapreduce.hop import HOPEngine
    from repro.mapreduce.runtime import HadoopEngine, LocalCluster
    from repro.obs.tracer import Tracer

    records_fn, sm_job, op_job = _build_jobs(workload)
    cluster = LocalCluster(num_nodes=nodes, block_size=256 * 1024)
    cluster.hdfs.write_records("in", records_fn(records))
    # A real tracer on both legs: sanitized reports order on absorb
    # ticks, and trace-on/trace-off output identity is already part of
    # the engines' contract, so the digest comparison is unaffected.
    tracer = Tracer()
    if engine in ("hadoop", "hop"):
        engine_cls = HadoopEngine if engine == "hadoop" else HOPEngine
        engine_cls(cluster, executor=executor, tracer=tracer).run(sm_job("in", "out"))
    else:
        OnePassEngine(cluster, executor=executor, tracer=tracer).run(op_job("in", "out"))
    payload = repr(list(cluster.hdfs.read_records("out"))).encode()
    return hashlib.sha256(payload).hexdigest()


def run_leg(
    workload: str,
    engine: str,
    executor: str,
    *,
    records: int = 2_000,
    nodes: int = 3,
    detectors: tuple[str, ...] | None = None,
) -> LegResult:
    """One matrix leg: unsanitized digest, sanitized digest, report."""
    digest = _leg_digest(workload, engine, executor, records, nodes)
    config = SanitizerConfig(detectors=detectors) if detectors else SanitizerConfig()
    with Sanitizer(config) as san:
        sanitized = _leg_digest(workload, engine, executor, records, nodes)
    return LegResult(
        leg=f"{workload}/{engine}/{executor}",
        digest=digest,
        sanitized_digest=sanitized,
        report=san.report,
    )


def run_matrix(
    *,
    records: int = 2_000,
    nodes: int = 3,
    workloads: tuple[str, ...] = MATRIX_WORKLOADS,
    engines: tuple[str, ...] = MATRIX_ENGINES,
    executors: tuple[str, ...] = MATRIX_EXECUTORS,
    progress: Callable[[str], None] | None = None,
) -> list[LegResult]:
    out = []
    for workload, engine, executor in matrix_legs(
        workloads=workloads, engines=engines, executors=executors
    ):
        if progress is not None:
            progress(f"{workload}/{engine}/{executor}")
        out.append(
            run_leg(workload, engine, executor, records=records, nodes=nodes)
        )
    return out


# -- baseline -----------------------------------------------------------------


def default_baseline_path(root: Path | None = None) -> Path:
    if root is None:
        from repro.lint.config import repo_root

        root = repo_root(Path.cwd())
    return root / "san-baseline.json"


def load_baseline(path: Path) -> dict[str, str]:
    if not path.is_file():
        return {}
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{path}: unknown baseline schema {payload.get('schema')!r}")
    return dict(payload.get("legs", {}))


def write_baseline(path: Path, results: list[LegResult], *, records: int, nodes: int) -> None:
    payload = {
        "schema": BASELINE_SCHEMA,
        "records": records,
        "nodes": nodes,
        "legs": {r.leg: r.digest for r in sorted(results, key=lambda r: r.leg)},
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

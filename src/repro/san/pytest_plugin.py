"""pytest integration: ``pytest --reprosan``.

With the flag, every test runs with an installed sanitizer (all four
detectors) and fails if it records a violation — the dynamic analogue of
running the lint layer over the test suite.  Tests that *deliberately*
violate contracts (the battery's own tests, fixtures that probe crash
paths) opt out with ``@pytest.mark.no_reprosan``.

The sanitizer only observes engine scope, so ordinary unit tests pay a
single patch/unpatch per test and nothing else.
"""

from __future__ import annotations

import pytest

__all__ = ["pytest_addoption", "pytest_configure", "reprosan_guard"]


def pytest_addoption(parser: "pytest.Parser") -> None:
    parser.addoption(
        "--reprosan",
        action="store_true",
        default=False,
        help="run every test under the reprosan runtime sanitizer and fail "
        "on any recorded violation",
    )


def pytest_configure(config: "pytest.Config") -> None:
    config.addinivalue_line(
        "markers",
        "no_reprosan: opt this test out of --reprosan instrumentation "
        "(it deliberately violates a sanitized contract)",
    )


@pytest.fixture(autouse=True)
def reprosan_guard(request: "pytest.FixtureRequest"):
    if not request.config.getoption("--reprosan"):
        yield
        return
    if request.node.get_closest_marker("no_reprosan") is not None:
        yield
        return
    from repro.san.harness import Sanitizer, active_sanitizer

    if active_sanitizer() is not None:
        # A test (or fixture) already installed its own sanitizer.
        yield
        return
    with Sanitizer() as san:
        yield
    if not san.report.clean:
        lines = [
            f"{v.id}: {v.message}" for v in san.report.violations[:10]
        ]
        pytest.fail(
            "reprosan recorded violation(s) during this test:\n  "
            + "\n  ".join(lines),
            pytrace=False,
        )

"""Hash-order nondeterminism detection via PYTHONHASHSEED double runs.

Set/dict-view iteration order leaking into output (REP006's target)
cannot be observed in-process: by the time the sanitizer runs, the hash
seed is fixed.  The dynamic check therefore re-executes a command under
two different ``PYTHONHASHSEED`` values and byte-compares stdout — any
divergence is, by construction, hash-seed-dependent output order
(SAN006).

The command is typically ``python -m repro.san.workload_digest ...``,
which prints a canonical digest of one workload leg's output, but the
battery also uses it on tiny inline scripts to prove the detector fires.
"""

from __future__ import annotations

import os
import subprocess
import sys

from repro.san.report import Violation

__all__ = ["DEFAULT_SEEDS", "double_run"]

DEFAULT_SEEDS = (101, 202)


def double_run(
    argv: list[str],
    *,
    seeds: tuple[int, int] = DEFAULT_SEEDS,
    label: str = "",
    timeout: float = 300.0,
) -> tuple[Violation | None, list[str]]:
    """Run ``argv`` once per hash seed; compare stdout byte-for-byte.

    Returns ``(violation_or_none, outputs)``.  A non-zero exit from
    either leg is reported as a SAN006 violation too — a run that only
    crashes under one hash seed is the same contract failure.
    """
    outputs: list[str] = []
    statuses: list[int] = []
    env_base = dict(os.environ)
    env_base.setdefault("PYTHONPATH", "")
    for seed in seeds:
        env = dict(env_base)
        env["PYTHONHASHSEED"] = str(seed)
        proc = subprocess.run(
            argv,
            capture_output=True,
            text=True,
            timeout=timeout,
            env=env,
        )
        outputs.append(proc.stdout)
        statuses.append(proc.returncode)
    what = label or " ".join(argv)
    if statuses[0] != statuses[1]:
        return (
            Violation(
                id="SAN006",
                message=f"exit status diverges across hash seeds for {what}",
                witness=(
                    (f"seed {seeds[0]}", f"exit {statuses[0]}"),
                    (f"seed {seeds[1]}", f"exit {statuses[1]}"),
                ),
            ),
            outputs,
        )
    if outputs[0] != outputs[1]:
        return (
            Violation(
                id="SAN006",
                message=f"output diverges across hash seeds for {what}",
                witness=(
                    (f"seed {seeds[0]}", _head(outputs[0])),
                    (f"seed {seeds[1]}", _head(outputs[1])),
                ),
            ),
            outputs,
        )
    return None, outputs


def _head(text: str, limit: int = 120) -> str:
    first = text.splitlines()[0] if text.splitlines() else ""
    return first[:limit]


def workload_argv(
    workload: str, engine: str, executor: str, records: int, nodes: int
) -> list[str]:
    """The subprocess command for one workload leg's canonical digest."""
    return [
        sys.executable,
        "-m",
        "repro.san.workload_digest",
        workload,
        engine,
        executor,
        str(records),
        str(nodes),
    ]

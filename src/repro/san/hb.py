"""Vector-clock happens-before graph for the race detector.

The sanitizer models each executor batch as a fork/join region: the
coordinator thread forks one logical task per spec, each task runs its
kernel, and the coordinator joins them all before the next batch (the
engines' tracer ``absorb`` calls happen exactly at the join, which is
why the sanitizer ticks its logical clock there).  Accesses to
registered shared objects are recorded against the accessing task's
vector clock; two accesses race when neither clock ≤ the other and at
least one side is a write.

This is deliberately the textbook DJIT-style formulation, specialised
to the repo's structure: tasks never nest, every task joins its forking
coordinator, and object identity is a stable string (module-global
dotted path, ``spec#<n>.field``, cache key).  That keeps witnesses
readable — a race report names both tasks, both clocks and both sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["Access", "HBGraph", "Race", "VectorClock"]


class VectorClock:
    """A sparse vector clock keyed by task name."""

    __slots__ = ("_c",)

    def __init__(self, clocks: dict[str, int] | None = None) -> None:
        self._c: dict[str, int] = dict(clocks) if clocks else {}

    def tick(self, task: str) -> None:
        self._c[task] = self._c.get(task, 0) + 1

    def copy(self) -> "VectorClock":
        return VectorClock(self._c)

    def join(self, other: "VectorClock") -> None:
        for task, n in other._c.items():
            if n > self._c.get(task, 0):
                self._c[task] = n

    def leq(self, other: "VectorClock") -> bool:
        return all(n <= other._c.get(task, 0) for task, n in self._c.items())

    def concurrent(self, other: "VectorClock") -> bool:
        return not self.leq(other) and not other.leq(self)

    def as_tuple(self) -> tuple[tuple[str, int], ...]:
        return tuple(sorted(self._c.items()))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{t}:{n}" for t, n in self.as_tuple())
        return f"VC({inner})"


@dataclass(frozen=True)
class Access:
    """One recorded access to a shared object."""

    obj: str
    task: str
    kind: str  # "read" | "write"
    clock: tuple[tuple[str, int], ...]
    site: str
    seq: int


@dataclass(frozen=True)
class Race:
    obj: str
    kind: str  # "write/write" | "write/read"
    first: Access
    second: Access


@dataclass
class _ObjectState:
    last_write: Access | None = None
    reads: list[Access] = field(default_factory=list)


class HBGraph:
    """Happens-before tracking for one sanitized run.

    The coordinator task is implicit ("coordinator"); ``fork`` hands a
    child task a copy of the coordinator clock, ``join`` merges it back.
    """

    COORD = "coordinator"

    def __init__(self) -> None:
        self._coord = VectorClock()
        self._coord.tick(self.COORD)
        self._tasks: dict[str, VectorClock] = {}
        self._objects: dict[str, _ObjectState] = {}
        self._seq = 0
        self.races: list[Race] = []

    # -- structure -----------------------------------------------------

    def fork(self, task: str) -> None:
        child = self._coord.copy()
        child.tick(task)
        self._tasks[task] = child

    def join(self, task: str) -> None:
        child = self._tasks.pop(task, None)
        if child is not None:
            self._coord.join(child)
        self._coord.tick(self.COORD)

    def tick_coordinator(self) -> None:
        self._coord.tick(self.COORD)

    def clock_of(self, task: str) -> VectorClock:
        if task == self.COORD:
            return self._coord
        return self._tasks.setdefault(task, self._coord.copy())

    # -- accesses ------------------------------------------------------

    def _record(self, obj: str, task: str, kind: str, site: str) -> Access:
        clock = self.clock_of(task)
        clock.tick(task)
        self._seq += 1
        return Access(
            obj=obj,
            task=task,
            kind=kind,
            clock=clock.as_tuple(),
            site=site,
            seq=self._seq,
        )

    def read(self, obj: str, task: str, site: str = "") -> None:
        access = self._record(obj, task, "read", site)
        state = self._objects.setdefault(obj, _ObjectState())
        last = state.last_write
        if last is not None and self._unordered(last, access):
            self.races.append(Race(obj, "write/read", last, access))
        state.reads.append(access)

    def write(self, obj: str, task: str, site: str = "") -> None:
        access = self._record(obj, task, "write", site)
        state = self._objects.setdefault(obj, _ObjectState())
        last = state.last_write
        if last is not None and self._unordered(last, access):
            self.races.append(Race(obj, "write/write", last, access))
        for prior in state.reads:
            if self._unordered(prior, access):
                self.races.append(Race(obj, "write/read", prior, access))
        state.last_write = access
        state.reads = []

    def _unordered(self, a: Access, b: Access) -> bool:
        if a.task == b.task:
            return False
        return VectorClock(dict(a.clock)).concurrent(VectorClock(dict(b.clock)))

    # -- results -------------------------------------------------------

    def drain_races(self) -> Iterable[Race]:
        races, self.races = self.races, []
        return races

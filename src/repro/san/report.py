"""reprosan violation records, the detector catalogue, and reporters.

A sanitized run produces a :class:`SanReport`: an ordered, canonical
collection of :class:`Violation` records.  Ordering is *logical* — the
sort key uses the sanitizer's logical clock (ticked through the tracer
absorb path) and stable textual fields, never wall time — so the same
run produces byte-identical terminal/JSON/SARIF reports every time.

The :data:`DETECTORS` catalogue is the dynamic half of the
cross-validation matrix: each entry names the static REPxxx rule(s) it
witnesses at runtime (see ``docs/SANITIZERS.md``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "DETECTORS",
    "DetectorInfo",
    "SanReport",
    "Violation",
    "detector_ids",
    "detector_for",
]


@dataclass(frozen=True)
class DetectorInfo:
    """One dynamic detector and the static rules it cross-validates."""

    id: str
    detector: str
    title: str
    static_rules: tuple[str, ...]


DETECTORS: tuple[DetectorInfo, ...] = (
    DetectorInfo(
        id="SAN001",
        detector="sentinel",
        title="nondeterministic call observed inside engine scope",
        static_rules=("REP001", "REP101"),
    ),
    DetectorInfo(
        id="SAN006",
        detector="hashseed",
        title="output diverges across PYTHONHASHSEED values",
        static_rules=("REP006",),
    ),
    DetectorInfo(
        id="SAN102",
        detector="pickle",
        title="spec does not survive the executor pickle boundary",
        static_rules=("REP102",),
    ),
    DetectorInfo(
        id="SAN103",
        detector="resource",
        title="resource still live at coordinator commit",
        static_rules=("REP103",),
    ),
    DetectorInfo(
        id="SAN201",
        detector="race",
        title="unordered access to shared state across tasks",
        static_rules=("REP201",),
    ),
    DetectorInfo(
        id="SAN202",
        detector="pickle",
        title="fork-unsafe OS resource reachable from a spec",
        static_rules=("REP202",),
    ),
    DetectorInfo(
        id="SAN205",
        detector="resource",
        title="resource leaked on an exception path",
        static_rules=("REP205",),
    ),
)

_BY_ID = {d.id: d for d in DETECTORS}


def detector_ids() -> tuple[str, ...]:
    return tuple(d.id for d in DETECTORS)


def detector_for(vid: str) -> DetectorInfo:
    return _BY_ID[vid]


@dataclass(frozen=True)
class Violation:
    """One witnessed contract violation.

    ``witness`` is a tuple of (label, value) string pairs — the HB
    evidence for races, the acquisition site for leaks, the diff for
    pickle mismatches.  ``stack`` is the repo-relative acquisition (or
    trip) stack, innermost last.
    """

    id: str
    message: str
    path: str = "<runtime>"
    line: int = 0
    func: str = ""
    task: str = ""
    clock: int = 0
    witness: tuple[tuple[str, str], ...] = ()
    stack: tuple[tuple[str, int, str], ...] = ()

    @property
    def detector(self) -> str:
        return _BY_ID[self.id].detector

    @property
    def static_rules(self) -> tuple[str, ...]:
        return _BY_ID[self.id].static_rules

    def sort_key(self) -> tuple:
        return (self.id, self.path, self.line, self.task, self.clock, self.message)

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "detector": self.detector,
            "staticRules": list(self.static_rules),
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "func": self.func,
            "task": self.task,
            "clock": self.clock,
            "witness": [[k, v] for k, v in self.witness],
            "stack": [[p, ln, fn] for p, ln, fn in self.stack],
        }


@dataclass
class SanReport:
    """The full result of a sanitized run, in canonical order."""

    violations: list[Violation] = field(default_factory=list)
    detectors: tuple[str, ...] = ()
    legs: int = 1

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    def extend(self, violations: Iterable[Violation]) -> None:
        self.violations.extend(violations)

    def finalize(self) -> "SanReport":
        """Sort into canonical order and drop exact duplicates."""
        seen: set[tuple] = set()
        out = []
        for v in sorted(self.violations, key=Violation.sort_key):
            key = (v.id, v.path, v.line, v.task, v.message, v.witness)
            if key in seen:
                continue
            seen.add(key)
            out.append(v)
        self.violations = out
        return self

    @property
    def clean(self) -> bool:
        return not self.violations

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.id] = out.get(v.id, 0) + 1
        return out

    def to_json(self) -> str:
        payload = {
            "schema": "repro.san-report/v1",
            "detectors": list(self.detectors),
            "legs": self.legs,
            "counts": self.counts(),
            "violations": [v.as_dict() for v in self.violations],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def to_text(self) -> str:
        lines = []
        for v in self.violations:
            where = f"{v.path}:{v.line}" if v.line else v.path
            head = f"{where}: {v.id} [{'+'.join(v.static_rules)}] {v.message}"
            if v.task:
                head += f" (task {v.task}, clock {v.clock})"
            lines.append(head)
            for label, value in v.witness:
                lines.append(f"    {label}: {value}")
            for path, line, func in v.stack:
                lines.append(f"    at {path}:{line} in {func}")
        if self.violations:
            summary = ", ".join(f"{k}: {n}" for k, n in sorted(self.counts().items()))
            lines.append(f"{len(self.violations)} violation(s) ({summary})")
        else:
            lines.append("sanitizer-clean: no violations")
        return "\n".join(lines) + "\n"

    def to_sarif(self) -> str:
        from repro.lint.sarif import (
            full_catalogue,
            sarif_document,
            sarif_result,
            to_sarif_json,
        )

        rules = full_catalogue()
        rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
        results = []
        for v in self.violations:
            properties: dict = {"staticRules": list(v.static_rules)}
            if v.task:
                properties["task"] = v.task
                properties["clock"] = v.clock
            if v.witness:
                properties["witness"] = {k: val for k, val in v.witness}
            results.append(
                sarif_result(
                    v.id,
                    v.message,
                    v.path,
                    v.line,
                    rule_index=rule_index.get(v.id),
                    properties=properties,
                )
            )
        return to_sarif_json(sarif_document("reprosan", rules, results))

    def format(self, fmt: str = "terminal") -> str:
        if fmt in ("terminal", "text"):
            return self.to_text()
        if fmt == "json":
            return self.to_json()
        if fmt == "sarif":
            return self.to_sarif()
        raise ValueError(f"unknown sanitizer report format {fmt!r}")

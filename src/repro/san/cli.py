"""The ``repro sanitize`` subcommand.

Examples::

    python -m repro sanitize --workload per-user-count --engine onepass
    python -m repro sanitize --workload sessionization --engine hadoop \\
        --executor processes:2 --format sarif
    python -m repro sanitize --battery              # detectors must fire
    python -m repro sanitize --matrix               # clean 4x3x3 battery
    python -m repro sanitize --matrix --engine hop --write-baseline
    python -m repro sanitize --workload inverted-index --hashseed
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["add_sanitize_parser", "cmd_sanitize"]


def _print_report(report, fmt: str) -> None:
    sys.stdout.write(report.format(fmt))


def _cmd_battery(args: argparse.Namespace) -> int:
    from repro.san.matrix import battery_ok, run_battery

    rules = tuple(args.select.split(",")) if args.select else None
    results = run_battery(rules)
    width = max(len(r.rule) for r in results)
    for r in results:
        status = "ok" if r.ok else "FAIL"
        print(
            f"{r.rule:<{width}} -> {r.expected}  fired {r.fired}  [{status}]"
        )
        if not r.ok:
            for v in r.report.violations:
                print(f"    got {v.id}: {v.message}")
    if battery_ok(results):
        print(f"battery: all {len(results)} detector(s) fired exactly once")
        return 0
    print("battery: FAILED — a detector did not fire exactly once", file=sys.stderr)
    return 1


def _cmd_matrix(args: argparse.Namespace) -> int:
    from repro.san.matrix import (
        MATRIX_ENGINES,
        MATRIX_EXECUTORS,
        MATRIX_WORKLOADS,
        default_baseline_path,
        load_baseline,
        run_matrix,
        write_baseline,
    )

    workloads = (args.workload,) if args.workload else MATRIX_WORKLOADS
    engines = (args.engine,) if args.engine else MATRIX_ENGINES
    executors = (args.executor,) if args.executor else MATRIX_EXECUTORS
    results = run_matrix(
        records=args.records,
        nodes=args.nodes,
        workloads=workloads,
        engines=engines,
        executors=executors,
        progress=lambda leg: print(f"  {leg}", file=sys.stderr),
    )
    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path()
    )
    if args.write_baseline:
        write_baseline(
            baseline_path, results, records=args.records, nodes=args.nodes
        )
        print(f"wrote {len(results)} leg digest(s) to {baseline_path}")
        return 0

    failed = 0
    baseline = load_baseline(baseline_path)
    for r in results:
        problems = []
        if not r.report.clean:
            problems.append(f"{len(r.report.violations)} violation(s)")
        if r.digest != r.sanitized_digest:
            problems.append("sanitized output diverges from unsanitized")
        pinned = baseline.get(r.leg)
        if pinned is not None and pinned != r.digest:
            problems.append("output digest drifted from san-baseline.json")
        if problems:
            failed += 1
            print(f"FAIL {r.leg}: {'; '.join(problems)}")
            sys.stdout.write(r.report.format("terminal"))
        else:
            print(f"ok   {r.leg}")
    if failed:
        print(f"matrix: {failed}/{len(results)} leg(s) failed", file=sys.stderr)
        return 1
    print(f"matrix: all {len(results)} leg(s) sanitizer-clean and byte-identical")
    return 0


def _cmd_single(args: argparse.Namespace) -> int:
    from repro.san.matrix import run_leg

    detectors = tuple(args.detectors.split(",")) if args.detectors else None
    result = run_leg(
        args.workload,
        args.engine,
        args.executor or "serial",
        records=args.records,
        nodes=args.nodes,
        detectors=detectors,
    )
    _print_report(result.report, args.format)
    status = 0
    if not result.report.clean:
        status = 1
    if result.digest != result.sanitized_digest:
        print(
            f"FAIL: sanitized output diverges from unsanitized "
            f"({result.sanitized_digest[:12]} != {result.digest[:12]})",
            file=sys.stderr,
        )
        status = 1
    if args.hashseed:
        from repro.san.hashseed import double_run, workload_argv

        violation, _ = double_run(
            workload_argv(
                args.workload,
                args.engine,
                args.executor or "serial",
                args.records,
                args.nodes,
            ),
            label=f"{args.workload}/{args.engine}",
        )
        if violation is not None:
            print(f"{violation.id}: {violation.message}", file=sys.stderr)
            for key, value in violation.witness:
                print(f"    {key}: {value}", file=sys.stderr)
            status = 1
    return status


def cmd_sanitize(args: argparse.Namespace) -> int:
    if args.battery:
        return _cmd_battery(args)
    if args.matrix:
        return _cmd_matrix(args)
    if not args.workload:
        raise SystemExit("sanitize: --workload is required (or use --battery/--matrix)")
    return _cmd_single(args)


def add_sanitize_parser(sub: argparse._SubParsersAction) -> None:
    from repro.cli import ENGINES, WORKLOADS

    p = sub.add_parser(
        "sanitize",
        help="run a workload under the runtime determinism/race/leak sanitizer",
        description="reprosan: dynamic cross-validation of the REPxxx "
        "contracts (see docs/SANITIZERS.md).",
    )
    p.add_argument("--workload", choices=WORKLOADS, default=None)
    p.add_argument("--engine", choices=ENGINES, default=None)
    p.add_argument(
        "--executor",
        default=None,
        help="task executor: serial (default), threads[:N], or processes[:N]",
    )
    p.add_argument("--records", type=int, default=2_000)
    p.add_argument("--nodes", type=int, default=3)
    p.add_argument(
        "--format", choices=("terminal", "json", "sarif"), default="terminal"
    )
    p.add_argument(
        "--detectors",
        default=None,
        metavar="NAMES",
        help="comma-separated detector subset: sentinel,race,resource,pickle "
        "(default: all)",
    )
    p.add_argument(
        "--hashseed",
        action="store_true",
        help="also double-run the leg under two PYTHONHASHSEED values and "
        "byte-compare the output digests (SAN006)",
    )
    p.add_argument(
        "--battery",
        action="store_true",
        help="run the synthetic-violation battery: every detector must fire "
        "exactly once",
    )
    p.add_argument(
        "--matrix",
        action="store_true",
        help="run the clean workload x engine x executor matrix: every leg "
        "must be violation-free and byte-identical (restrict with "
        "--workload/--engine/--executor)",
    )
    p.add_argument(
        "--write-baseline",
        action="store_true",
        help="with --matrix: write the leg digests to san-baseline.json",
    )
    p.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file (default: <root>/san-baseline.json)",
    )
    p.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="with --battery: comma-separated static rule ids to exercise",
    )
    p.set_defaults(fn=cmd_sanitize)

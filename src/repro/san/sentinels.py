"""Nondeterminism sentinels: scoped patching of wall-clock/entropy APIs.

The static REP001/REP101 rules prove *source text* never calls
``time.time()`` or the unseeded global RNG on an engine path; the
sentinel detector witnesses the same contract at runtime by replacing
the exact call targets from the shared lint vocabulary
(:mod:`repro.lint.dataflow.sources`) with passthrough wrappers that
report a trip — but only while engine scope is active, so test scaffolds
and the CLI remain free to read the clock.

Trips are *reported, not blocked*: the wrapper records the violation
and then calls the real function, so a sanitized run still completes
and its output can be byte-compared against the unsanitized run.

Known limitation (documented in docs/SANITIZERS.md): ``datetime``
attributes live on a C type and cannot be patched; the static layer
remains the only guard for ``datetime.datetime.now`` and friends.
"""

from __future__ import annotations

import ast
import functools
import importlib
from typing import Callable

from repro.lint.dataflow.sources import NONDETERMINISTIC_CALLS, nondet_call

__all__ = ["SentinelPatches", "SentinelTrip", "sentinel_targets"]

# nondet_call only inspects the node for the default_rng arg check;
# a dummy empty call node satisfies it for plain dotted lookups.
_DUMMY_CALL = ast.parse("f()", mode="eval").body

#: Module-global functions on ``random`` that hit the unseeded global
#: RNG.  random.Random(seed) instances are untouched (REP001's carve-out).
_GLOBAL_RNG_FUNCS = (
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.shuffle",
    "random.sample",
    "random.uniform",
    "random.gauss",
)


class SentinelTrip(Exception):
    """Raised across the fork boundary when a kernel trips a sentinel.

    In-process trips are recorded via the trip sink and never raised;
    a fork child has no sink, so the wrapped kernel converts the trip
    into this (picklable) exception and the parent records it.
    """

    def __init__(self, dotted: str, message: str) -> None:
        super().__init__(dotted, message)
        self.dotted = dotted
        self.message = message


def _message_for(dotted: str) -> str:
    classified = nondet_call(dotted, _DUMMY_CALL)
    if classified is not None:
        return classified[1]
    return f"nondeterministic call {dotted}()"


def sentinel_targets() -> list[tuple[str, str, str]]:
    """(module, attribute, dotted) triples the sentinels patch.

    Derived from the lint vocabulary so the static and dynamic layers
    can never drift: every patchable NONDETERMINISTIC_CALLS entry plus
    the global-RNG functions.  ``datetime.*`` entries are skipped (C
    type, unpatchable).
    """
    targets = []
    for dotted in sorted(NONDETERMINISTIC_CALLS) + list(_GLOBAL_RNG_FUNCS):
        module, _, attr = dotted.rpartition(".")
        if "." in module:  # datetime.datetime.now etc: class attr on a C type
            continue
        targets.append((module, attr, dotted))
    return targets


class SentinelPatches:
    """Install/remove the sentinel wrappers around the real functions."""

    def __init__(self, on_trip: Callable[[str, str], None]) -> None:
        self._on_trip = on_trip
        self._saved: list[tuple[object, str, object]] = []

    def install(self) -> None:
        assert not self._saved, "sentinels already installed"
        for module_name, attr, dotted in sentinel_targets():
            try:
                module = importlib.import_module(module_name)
                original = getattr(module, attr)
            except (ImportError, AttributeError):
                continue
            wrapper = self._wrap(original, dotted)
            setattr(module, attr, wrapper)
            self._saved.append((module, attr, original))

    def remove(self) -> None:
        for module, attr, original in reversed(self._saved):
            setattr(module, attr, original)
        self._saved = []

    def _wrap(self, original, dotted: str):
        on_trip = self._on_trip
        message = _message_for(dotted)

        @functools.wraps(original)
        def sentinel(*args, **kwargs):
            on_trip(dotted, message)
            return original(*args, **kwargs)

        sentinel.__reprosan_sentinel__ = dotted  # type: ignore[attr-defined]
        return sentinel

"""reprosan: the runtime determinism/race/leak sanitizer.

Dynamic cross-validation of the static lint layers (REP001..REP206):
an opt-in harness (:class:`repro.san.harness.Sanitizer`) instruments
real engine runs with four detectors — nondeterminism sentinels,
a vector-clock race detector, resource/lifetime tracking and
pickle-boundary checks — and reports logical-clock-ordered, canonical
violations.  See ``docs/SANITIZERS.md``.
"""

from repro.san.harness import Sanitizer, SanitizerConfig, active_sanitizer
from repro.san.report import DETECTORS, DetectorInfo, SanReport, Violation

__all__ = [
    "DETECTORS",
    "DetectorInfo",
    "SanReport",
    "Sanitizer",
    "SanitizerConfig",
    "Violation",
    "active_sanitizer",
]

"""The reprosan harness: scoped instrumentation of real engine runs.

One :class:`Sanitizer` instruments the whole process while installed
(``with Sanitizer() as san: ...``): executor sessions, engine ``run``
methods, the job journal, the tracer absorb path, span handles, run
writers, record batches and the nondeterminism sentinels.  All hooks are
*observing passthroughs* — the run executes exactly as it would
unsanitized (same kernels, same order, same output bytes), which is what
lets the battery byte-compare sanitized vs unsanitized runs.

Detector wiring (see docs/SANITIZERS.md for the full matrix):

* ``race`` — each executor batch is a fork/join region in the
  happens-before graph (:mod:`repro.san.hb`); registered shared objects
  are fingerprinted across the batch window and any change is attributed
  and raced against sibling-task accesses (SAN201 / REP201).
* ``sentinel`` — wall-clock/entropy calls inside engine scope report
  SAN001 (REP001/REP101) via :mod:`repro.san.sentinels`.
* ``resource`` — spans, run writers, journal segments and record
  batches are ledgered with acquisition stacks
  (:mod:`repro.san.resources`); still-live resources at the
  ``output-commit`` journal append report SAN103 (REP103), leaks on an
  exception unwind report SAN205 (REP205).
* ``pickle`` — every spec entering an executor batch is round-tripped
  and scanned (:mod:`repro.san.pickles`): SAN102 (REP102) / SAN202
  (REP202).

Scope rules: detectors only observe between engine ``run`` entry and
exit (``_ENGINE_DEPTH``), so CLI scaffolding may freely read the clock.
Injected faults are not leaks: a ``TaskFailure``/``FetchFailedError``
unwinding a batch drops that attempt's acquisitions (the simulated
worker died; its OS reclaims them), and a ``CoordinatorCrash`` drops
the whole ledger (the simulated coordinator died).  That is what keeps
chaos/fault-plan runs sanitizer-clean.

Logical determinism: the sanitizer's clock ticks on tracer ``absorb``
and journal appends — coordinator-ordered events — never on wall time,
so reports are byte-identical across repeated runs.
"""

from __future__ import annotations

import hashlib
import threading
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable, Sequence

from repro.san.hb import HBGraph, Race
from repro.san.pickles import check_spec
from repro.san.report import SanReport, Violation
from repro.san.resources import ResourceTracker
from repro.san.sentinels import SentinelPatches, SentinelTrip

__all__ = [
    "Sanitizer",
    "SanitizerConfig",
    "active_sanitizer",
    "fingerprint",
]

ALL_DETECTORS = ("sentinel", "race", "resource", "pickle")

# Process-wide state: one sanitizer may be installed at a time, and the
# engine-scope depth gates every detector.
_ACTIVE: "Sanitizer | None" = None
_ENGINE_DEPTH = 0
_TLS = threading.local()


def active_sanitizer() -> "Sanitizer | None":
    return _ACTIVE


# -- value fingerprinting -----------------------------------------------------

_FP_DEPTH = 6


def fingerprint(obj: Any, depth: int = 0) -> str:
    """A stable content digest for race detection.

    Order-independent for sets, content-based for buffers, identity-free
    for callables (module.qualname) — two fingerprints taken inside one
    process compare equal iff the value trees match.
    """
    h = hashlib.sha256()
    _fp(obj, h, depth)
    return h.hexdigest()[:16]


def _fp(obj: Any, h: "hashlib._Hash", depth: int) -> None:
    if depth > _FP_DEPTH:
        h.update(b"<deep>")
        return
    if obj is None or isinstance(obj, (bool, int, float, complex, str)):
        h.update(repr(obj).encode())
        return
    if isinstance(obj, (bytes, bytearray, memoryview)):
        h.update(b"buf:")
        h.update(bytes(obj))
        return
    if isinstance(obj, dict):
        h.update(b"dict:")
        entries = []
        for key, value in obj.items():
            eh = hashlib.sha256()
            _fp(key, eh, depth + 1)
            _fp(value, eh, depth + 1)
            entries.append(eh.digest())
        for digest in sorted(entries):
            h.update(digest)
        return
    if isinstance(obj, (list, tuple)):
        h.update(b"seq:")
        for value in obj:
            _fp(value, h, depth + 1)
        return
    if isinstance(obj, (set, frozenset)):
        h.update(b"set:")
        entries = []
        for value in obj:
            eh = hashlib.sha256()
            _fp(value, eh, depth + 1)
            entries.append(eh.digest())
        for digest in sorted(entries):
            h.update(digest)
        return
    if callable(obj) and hasattr(obj, "__qualname__"):
        h.update(f"fn:{getattr(obj, '__module__', '')}.{obj.__qualname__}".encode())
        return
    if hasattr(obj, "tobytes"):  # array.array and friends
        h.update(b"arr:")
        h.update(obj.tobytes())
        return
    if is_dataclass(obj) and not isinstance(obj, type):
        h.update(f"dc:{type(obj).__name__}:".encode())
        for f in fields(obj):
            _fp(getattr(obj, f.name), h, depth + 1)
        return
    state = getattr(obj, "__dict__", None)
    if state is None and hasattr(type(obj), "__slots__"):
        state = {
            slot: getattr(obj, slot)
            for slot in type(obj).__slots__
            if slot != "__weakref__" and hasattr(obj, slot)
        }
    if isinstance(state, dict):
        h.update(f"obj:{type(obj).__name__}:".encode())
        _fp(state, h, depth + 1)
        return
    h.update(f"opaque:{type(obj).__name__}".encode())


def capture_stack(skip_prefixes: tuple[str, ...] = ()) -> tuple[tuple[str, int, str], ...]:
    """The repo-relative acquisition stack, innermost last."""
    out = []
    for frame in traceback.extract_stack()[:-1]:
        path = frame.filename.replace("\\", "/")
        marker = "/src/repro/"
        idx = path.find(marker)
        if idx < 0:
            continue
        rel = "src/repro/" + path[idx + len(marker) :]
        # Skip the sanitizer's own plumbing, but keep san/matrix.py —
        # the battery fixtures are the acquisition sites under test.
        if rel.startswith("src/repro/san/") and not rel.endswith("matrix.py"):
            continue
        if any(rel.startswith(p) for p in skip_prefixes):
            continue
        out.append((rel, frame.lineno or 0, frame.name))
    return tuple(out[-4:])


# -- configuration ------------------------------------------------------------


@dataclass(frozen=True)
class SanitizerConfig:
    """Which detectors run and what extra shared state is tracked."""

    detectors: tuple[str, ...] = ALL_DETECTORS
    #: Extra (name, object-or-provider) shared-state entries to race-track.
    shared: tuple[tuple[str, Any], ...] = ()
    #: Track RecordBatch lifetimes (weakref-based; checked at scope exit).
    track_batches: bool = True

    def __post_init__(self) -> None:
        unknown = set(self.detectors) - set(ALL_DETECTORS)
        if unknown:
            raise ValueError(f"unknown detectors: {sorted(unknown)}")


# -- the harness --------------------------------------------------------------


class Sanitizer:
    """Install/remove the instrumentation and collect the report."""

    def __init__(self, config: SanitizerConfig | None = None) -> None:
        self.config = config or SanitizerConfig()
        self.report = SanReport(detectors=self.config.detectors)
        self.hb = HBGraph()
        self.resources = ResourceTracker()
        self._lock = threading.Lock()
        self._patches: list[tuple[Any, str, Any]] = []
        self._sentinels: SentinelPatches | None = None
        self._installed = False
        self._pid = 0
        self._clock = 0
        self._task_seq = 0
        self._task_names: dict[int, str] = {}
        self._kernel_cache: dict[tuple[str, int], Callable] = {}
        self._shared: dict[str, Any] = {}
        self._span_tokens: dict[int, int] = {}
        self._writer_tokens: dict[int, int] = {}
        self._segment_tokens: dict[int, int] = {}
        self._recoverable: tuple[type, ...] = ()
        self._crash_exc: type = ()  # type: ignore[assignment]

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "Sanitizer":
        self.install()
        return self

    def __exit__(self, *exc: object) -> None:
        self.remove()

    def install(self) -> None:
        global _ACTIVE
        if self._installed:
            raise RuntimeError("sanitizer already installed")
        if _ACTIVE is not None:
            raise RuntimeError("another sanitizer is already installed")
        import os

        from repro.exec import base as exec_base
        from repro.exec import kernels  # noqa: F401 - warm the deferred registry
        from repro.mapreduce.faults import TaskFailure
        from repro.mapreduce.journal import CoordinatorCrash
        from repro.mapreduce.shuffle import FetchFailedError

        self._pid = os.getpid()
        self._recoverable = (TaskFailure, FetchFailedError)
        self._crash_exc = CoordinatorCrash
        if "race" in self.config.detectors:
            self._shared["repro.exec.base._KERNELS"] = exec_base._KERNELS
            for name, obj in self.config.shared:
                self._shared[name] = obj
        self._patch_executors(exec_base)
        self._patch_engines()
        self._patch_journal()
        self._patch_tracer()
        if "resource" in self.config.detectors:
            self._patch_resources()
        if "sentinel" in self.config.detectors:
            self._sentinels = SentinelPatches(self._on_trip)
            self._sentinels.install()
        self._installed = True
        _ACTIVE = self

    def remove(self) -> None:
        global _ACTIVE
        if not self._installed:
            return
        if self._sentinels is not None:
            self._sentinels.remove()
            self._sentinels = None
        for obj, attr, original in reversed(self._patches):
            setattr(obj, attr, original)
        self._patches = []
        self._installed = False
        _ACTIVE = None
        self.report.finalize()

    def track_shared(self, name: str, obj_or_provider: Any) -> None:
        """Register extra shared state for the race detector.

        ``obj_or_provider`` is either the object itself or a zero-arg
        callable returning the value to fingerprint (use a provider when
        only part of a large structure is shared, e.g. cache keys).
        """
        self._shared[name] = obj_or_provider

    # -- violations ----------------------------------------------------

    def _violation(
        self,
        vid: str,
        message: str,
        *,
        task: str = "",
        witness: tuple[tuple[str, str], ...] = (),
        stack: tuple[tuple[str, int, str], ...] = (),
    ) -> None:
        path, line, func = "<runtime>", 0, ""
        if stack:
            path, line, func = stack[-1]
        with self._lock:
            self.report.add(
                Violation(
                    id=vid,
                    message=message,
                    path=path,
                    line=line,
                    func=func,
                    task=task,
                    clock=self._clock,
                    witness=witness,
                    stack=stack,
                )
            )

    # -- engine scope --------------------------------------------------

    @contextmanager
    def engine_scope(self):
        """Activate the detectors for one engine run."""
        global _ENGINE_DEPTH
        _ENGINE_DEPTH += 1
        try:
            yield
        except BaseException as exc:
            if isinstance(exc, self._crash_exc):
                # Simulated coordinator death: the ledger dies with it.
                self.resources.forget_live()
            else:
                self.resources.note_exception()
            raise
        finally:
            _ENGINE_DEPTH -= 1
            if _ENGINE_DEPTH == 0:
                self._scope_exit_check()

    def _scope_exit_check(self) -> None:
        if "resource" not in self.config.detectors:
            return
        for record in self.resources.take_leaks():
            vid = self.resources.classify(record)
            if vid == "SAN205":
                message = (
                    f"{record.kind} '{record.name}' leaked on an exception "
                    "path (release does not post-dominate acquisition)"
                )
            else:
                message = (
                    f"{record.kind} '{record.name}' still live at "
                    "engine-scope exit"
                )
            self._violation(
                vid,
                message,
                task=record.task,
                witness=(("acquired", f"{record.kind} '{record.name}'"),),
                stack=record.stack,
            )

    def _commit_check(self) -> None:
        """The output-commit barrier: everything but the journal's own
        open segment (sealed by finalize, which follows the commit) and
        weakref-tracked batches (frame locals legitimately pin them at
        the commit instant; they are checked at scope exit) must be
        released."""
        if "resource" not in self.config.detectors:
            return
        for record in self.resources.take_leaks(
            exclude_kinds=("journal.segment", "batch")
        ):
            vid = self.resources.classify(record)
            self._violation(
                vid,
                f"{record.kind} '{record.name}' still live at output commit",
                task=record.task,
                witness=(("acquired", f"{record.kind} '{record.name}'"),),
                stack=record.stack,
            )

    # -- sentinel trips ------------------------------------------------

    def _on_trip(self, dotted: str, message: str) -> None:
        if _ENGINE_DEPTH <= 0:
            return
        if getattr(_TLS, "dispatch_quiet", False):
            return
        import os

        if os.getpid() != self._pid:
            # Fork child: no shared report; surface the trip as a
            # picklable exception the parent records (fail-fast by
            # design — a nondeterministic MP kernel cannot be allowed
            # to keep producing output that will be byte-compared).
            raise SentinelTrip(dotted, message)
        self._violation(
            "SAN001",
            message,
            task=getattr(_TLS, "task", ""),
            witness=(("call", f"{dotted}()"),),
            stack=capture_stack(),
        )

    # -- patch plumbing ------------------------------------------------

    def _patch(self, obj: Any, attr: str, factory: Callable[[Callable], Callable]) -> None:
        original = obj.__dict__[attr]
        raw = original.__func__ if isinstance(original, classmethod) else original
        wrapper = factory(raw)
        if isinstance(original, classmethod):
            wrapper = classmethod(wrapper)
        setattr(obj, attr, wrapper)
        self._patches.append((obj, attr, original))

    # -- executor instrumentation --------------------------------------

    def _patch_executors(self, exec_base: Any) -> None:
        san = self

        def wrap_get_kernel(orig):
            def get_kernel(name: str):
                fn = orig(name)
                key = (name, id(fn))
                cached = san._kernel_cache.get(key)
                if cached is None:
                    cached = san._wrap_kernel(name, fn)
                    san._kernel_cache[key] = cached
                return cached

            return get_kernel

        self._patch_module_attr(exec_base, "get_kernel", wrap_get_kernel)

        for cls in (
            exec_base._InlineSession,
            exec_base._ThreadSession,
            exec_base._ForkSession,
        ):

            def wrap_batch(orig):
                def run_batch(session, kernel, specs):
                    if getattr(_TLS, "dispatch", False) or _ENGINE_DEPTH <= 0:
                        return orig(session, kernel, specs)
                    return san._sanitized_dispatch(
                        lambda: san._guarded(orig, session, kernel, specs),
                        kernel,
                        specs,
                    )

                return run_batch

            def wrap_one(orig):
                def run_one(session, kernel, spec):
                    if getattr(_TLS, "dispatch", False) or _ENGINE_DEPTH <= 0:
                        return orig(session, kernel, spec)
                    result = san._sanitized_dispatch(
                        lambda: [san._guarded(orig, session, kernel, spec)],
                        kernel,
                        [spec],
                    )
                    return result[0]

                return run_one

            self._patch(cls, "run_batch", wrap_batch)
            self._patch(cls, "run_one", wrap_one)

    def _patch_module_attr(
        self, module: Any, attr: str, factory: Callable[[Callable], Callable]
    ) -> None:
        original = getattr(module, attr)
        setattr(module, attr, factory(original))
        self._patches.append((module, attr, original))

    @staticmethod
    def _guarded(orig: Callable, session: Any, kernel: str, payload: Any):
        """Run the original dispatch with the re-entrancy flag set (a
        thread session delegating small batches to an inline session
        must not be instrumented twice)."""
        _TLS.dispatch = True
        try:
            return orig(session, kernel, payload)
        finally:
            _TLS.dispatch = False

    def _wrap_kernel(self, name: str, fn: Callable) -> Callable:
        san = self

        def kernel(ctx, spec):
            prior = getattr(_TLS, "task", "")
            _TLS.task = san._task_names.get(id(spec), name)
            try:
                return fn(ctx, spec)
            finally:
                _TLS.task = prior

        kernel.__name__ = getattr(fn, "__name__", name)
        kernel.__reprosan_wrapped__ = fn  # type: ignore[attr-defined]
        return kernel

    def _sanitized_dispatch(
        self, call: Callable[[], list], kernel: str, specs: Sequence[Any]
    ) -> list:
        """One executor batch as a fork/join region with all four
        detector hooks around the real dispatch."""
        race = "race" in self.config.detectors
        tasks = []
        for spec in specs:
            self._task_seq += 1
            task = f"{kernel}:{self._task_seq}"
            tasks.append(task)
            self._task_names[id(spec)] = task

        if "pickle" in self.config.detectors:
            for task, spec in zip(tasks, specs):
                hit = check_spec(spec)
                if hit is not None:
                    vid, message = hit
                    self._violation(
                        vid,
                        message,
                        task=task,
                        witness=(("spec", type(spec).__name__),),
                        stack=capture_stack(),
                    )

        before_shared: dict[str, str] = {}
        before_specs: list[str] = []
        if race:
            before_shared = {
                name: fingerprint(self._snapshot(value))
                for name, value in self._shared.items()
            }
            before_specs = [fingerprint(spec) for spec in specs]
            for task in tasks:
                self.hb.fork(task)
                for name in self._shared:
                    self.hb.read(name, task, site=f"batch {kernel}")

        marker = self.resources.seq
        try:
            results = call()
        except SentinelTrip as trip:
            # Raised across the fork boundary by a child-process sentinel.
            self._violation(
                "SAN001",
                trip.message,
                task=tasks[0] if len(tasks) == 1 else kernel,
                witness=(("call", f"{trip.dotted}()"),),
            )
            raise
        except self._recoverable:
            # An injected task/fetch fault: the simulated worker died and
            # its OS reclaims the attempt's resources — not a leak.
            self.resources.forget_since(marker)
            raise
        except self._crash_exc:
            raise
        except BaseException:
            self.resources.note_exception()
            raise
        else:
            # Before the joins below: a write must be raced against the
            # sibling reads while the task clocks are still concurrent.
            if race:
                self._check_shared_writes(kernel, tasks, before_shared)
                for task, spec, before in zip(tasks, specs, before_specs):
                    if fingerprint(spec) != before:
                        self._violation(
                            "SAN201",
                            f"kernel mutated its spec in place "
                            f"({type(spec).__name__})",
                            task=task,
                            witness=(("spec", type(spec).__name__),),
                        )
                self._report_races()
            return results
        finally:
            for spec in specs:
                self._task_names.pop(id(spec), None)
            if race:
                for task in tasks:
                    self.hb.join(task)

    def _snapshot(self, value: Any) -> Any:
        return value() if callable(value) and not hasattr(value, "__self__") else value

    def _check_shared_writes(
        self, kernel: str, tasks: list[str], before: dict[str, str]
    ) -> None:
        for name, old in before.items():
            new = fingerprint(self._snapshot(self._shared[name]))
            if new == old:
                continue
            if len(tasks) > 1:
                # Attribute the write to the batch and race it against
                # the sibling reads recorded at fork time: any
                # concurrent pair is an unordered write/read.
                self.hb.write(name, tasks[-1], site=f"batch {kernel}")
            else:
                self._violation(
                    "SAN201",
                    f"kernel-scope write to shared state '{name}'",
                    task=tasks[0],
                    witness=(
                        ("object", name),
                        ("fingerprint", f"{old} -> {new}"),
                    ),
                )

    def _report_races(self) -> None:
        for race in self.hb.drain_races():
            self._violation(
                "SAN201",
                f"unordered {race.kind} on shared state '{race.obj}' "
                f"between tasks {race.first.task} and {race.second.task}",
                task=race.second.task,
                witness=(
                    (
                        "first",
                        f"{race.first.kind} by {race.first.task} "
                        f"at {dict(race.first.clock)}",
                    ),
                    (
                        "second",
                        f"{race.second.kind} by {race.second.task} "
                        f"at {dict(race.second.clock)}",
                    ),
                ),
            )

    # -- engines -------------------------------------------------------

    def _patch_engines(self) -> None:
        from repro.core.engine import OnePassEngine
        from repro.mapreduce.hop import HOPEngine
        from repro.mapreduce.runtime import HadoopEngine

        san = self
        for cls in (HadoopEngine, HOPEngine, OnePassEngine):
            if "run" not in cls.__dict__:  # pragma: no cover - defensive
                continue

            def wrap_run(orig):
                def run(engine, job):
                    san._track_engine_shared(engine)
                    with san.engine_scope():
                        return orig(engine, job)

                return run

            self._patch(cls, "run", wrap_run)

    def _track_engine_shared(self, engine: Any) -> None:
        """Auto-register the partition cache (chained jobs) so kernel
        writes to cached blocks are race-checked by key set."""
        if "race" not in self.config.detectors:
            return
        cache = getattr(
            getattr(getattr(engine, "cluster", None), "hdfs", None),
            "block_cache",
            None,
        )
        if cache is not None and "hdfs.block_cache" not in self._shared:
            entries = cache._entries
            self._shared["hdfs.block_cache"] = lambda: sorted(
                repr(key) for key in entries
            )

    # -- journal -------------------------------------------------------

    def _patch_journal(self) -> None:
        from repro.mapreduce.journal import K_OUTPUT_COMMIT, JobJournal

        san = self

        def wrap_append(orig):
            def append(journal, kind, **fields):
                if kind == K_OUTPUT_COMMIT and _ENGINE_DEPTH > 0:
                    san._commit_check()
                san._clock += 1
                if "race" in san.config.detectors:
                    san.hb.tick_coordinator()
                return orig(journal, kind, **fields)

            return append

        def wrap_ensure(orig):
            def _ensure_segment(journal):
                fresh = journal._fh is None
                fh = orig(journal)
                if (
                    fresh
                    and _ENGINE_DEPTH > 0
                    and "resource" in san.config.detectors
                ):
                    san._segment_tokens[id(journal)] = san.resources.acquire(
                        "journal.segment",
                        journal._open_segment_path(),
                        clock=san._clock,
                        stack=capture_stack(),
                    )
                return fh

            return _ensure_segment

        def wrap_drop(orig):
            def _drop_handle(journal):
                token = san._segment_tokens.pop(id(journal), None)
                if token is not None:
                    san.resources.release(token)
                return orig(journal)

            return _drop_handle

        self._patch(JobJournal, "append", wrap_append)
        self._patch(JobJournal, "_ensure_segment", wrap_ensure)
        self._patch(JobJournal, "_drop_handle", wrap_drop)

    # -- tracer / spans ------------------------------------------------

    def _patch_tracer(self) -> None:
        from repro.obs.tracer import Tracer

        san = self

        def wrap_absorb(orig):
            def absorb(tracer, trace, *, args=None):
                san._clock += 1
                if "race" in san.config.detectors:
                    san.hb.tick_coordinator()
                return orig(tracer, trace, args=args)

            return absorb

        self._patch(Tracer, "absorb", wrap_absorb)

    def _patch_resources(self) -> None:
        from repro.io.batch import RecordBatch
        from repro.io.runio import RunWriter
        from repro.obs.tracer import _SpanHandle

        san = self

        def wrap_span_enter(orig):
            def __enter__(handle):
                out = orig(handle)
                if _ENGINE_DEPTH > 0:
                    san._span_tokens[id(handle)] = san.resources.acquire(
                        "span",
                        handle._span.name,
                        task=getattr(_TLS, "task", ""),
                        clock=san._clock,
                        stack=capture_stack(),
                    )
                return out

            return __enter__

        def wrap_span_exit(orig):
            def __exit__(handle, *exc):
                token = san._span_tokens.pop(id(handle), None)
                if token is not None:
                    san.resources.release(token)
                return orig(handle, *exc)

            return __exit__

        self._patch(_SpanHandle, "__enter__", wrap_span_enter)
        self._patch(_SpanHandle, "__exit__", wrap_span_exit)

        def wrap_writer_init(orig):
            def __init__(writer, disk, path, **kwargs):
                orig(writer, disk, path, **kwargs)
                if _ENGINE_DEPTH > 0:
                    san._writer_tokens[id(writer)] = san.resources.acquire(
                        "disk.writer",
                        path,
                        task=getattr(_TLS, "task", ""),
                        clock=san._clock,
                        stack=capture_stack(),
                    )

            return __init__

        def wrap_writer_close(orig):
            def close(writer):
                token = san._writer_tokens.pop(id(writer), None)
                if token is not None:
                    san.resources.release(token)
                return orig(writer)

            return close

        self._patch(RunWriter, "__init__", wrap_writer_init)
        self._patch(RunWriter, "close", wrap_writer_close)

        if not self.config.track_batches:
            return

        def wrap_batch_ctor(orig):
            def ctor(cls, *args, **kwargs):
                batch = orig(cls, *args, **kwargs)
                if _ENGINE_DEPTH > 0:
                    san.resources.acquire(
                        "batch",
                        type(batch).__name__,
                        task=getattr(_TLS, "task", ""),
                        clock=san._clock,
                        stack=capture_stack()[-2:],
                        obj=batch,
                    )
                return batch

            return ctor

        self._patch(RecordBatch, "from_pairs", wrap_batch_ctor)
        self._patch(RecordBatch, "decode", wrap_batch_ctor)

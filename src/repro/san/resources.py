"""Resource/lifetime tracking with acquisition-site stack capture.

Tracks span handles, run writers, journal segments and RecordBatch
memoryview loans as acquire/release pairs.  Two checks consume the
ledger:

* **commit check** (dynamic REP103): when the coordinator appends
  ``K_OUTPUT_COMMIT``, every tracked resource except the journal's own
  open segment must already be released — a still-live writer or span at
  commit is exactly the "resource open across a commit point" shape the
  static rule forbids.

* **exception check** (dynamic REP205): when engine scope exits after a
  (non-crash-simulated) exception, resources acquired before the
  exception and never released witness a release site that fails to
  post-dominate its acquisition.

Batches are tracked by weakref (RecordBatch carries ``__weakref__`` in
its slots for this): a batch is "released" when it is garbage-collected,
so a commit-time ``gc.collect()`` sweep keeps kernels free of explicit
release calls while still catching coordinator-held batch references.
"""

from __future__ import annotations

import gc
import threading
import weakref
from dataclasses import dataclass

__all__ = ["ResourceRecord", "ResourceTracker"]


@dataclass
class ResourceRecord:
    token: int
    kind: str
    name: str
    task: str
    clock: int
    stack: tuple[tuple[str, int, str], ...]
    ref: "weakref.ref | None" = None

    def live(self) -> bool:
        if self.ref is not None:
            return self.ref() is not None
        return True


class ResourceTracker:
    """The acquire/release ledger for one sanitized run."""

    def __init__(self) -> None:
        self._live: dict[int, ResourceRecord] = {}
        self._seq = 0
        self._exc_marker: int | None = None
        # Acquisitions can arrive from executor pool threads.
        self._lock = threading.Lock()

    @property
    def seq(self) -> int:
        """The current acquisition sequence number (a ledger marker)."""
        return self._seq

    # -- ledger --------------------------------------------------------

    def acquire(
        self,
        kind: str,
        name: str,
        *,
        task: str = "",
        clock: int = 0,
        stack: tuple[tuple[str, int, str], ...] = (),
        obj: object | None = None,
    ) -> int:
        """Record an acquisition; returns the release token."""
        ref = None
        if obj is not None:
            try:
                ref = weakref.ref(obj)
            except TypeError:
                ref = None
        with self._lock:
            self._seq += 1
            token = self._seq
            self._live[token] = ResourceRecord(
                token=token,
                kind=kind,
                name=name,
                task=task,
                clock=clock,
                stack=stack,
                ref=ref,
            )
        return token

    def release(self, token: int) -> None:
        with self._lock:
            self._live.pop(token, None)

    def forget_since(self, marker: int) -> None:
        """Drop every record acquired after ``marker`` without reporting
        (an injected task fault killed the simulated worker mid-attempt;
        its OS reclaims the attempt's resources)."""
        with self._lock:
            for token in [t for t in self._live if t > marker]:
                del self._live[token]

    def note_exception(self) -> None:
        """Mark that an exception is unwinding engine scope.

        Resources acquired before this marker and still live at scope
        exit are REP205-class leaks (release did not post-dominate the
        acquisition); later acquisitions belong to cleanup code and are
        judged by the ordinary commit check.
        """
        if self._exc_marker is None:
            self._exc_marker = self._seq

    def forget_live(self) -> None:
        """Drop the ledger without reporting (simulated coordinator
        crash: the process is modelled as dead, leaks are expected)."""
        self._live.clear()
        self._exc_marker = None

    # -- checks --------------------------------------------------------

    def take_leaks(
        self, *, exclude_kinds: tuple[str, ...] = ()
    ) -> list[ResourceRecord]:
        """Pop and return every still-live record (weakref-tracked
        records get one gc sweep first so dead batches don't report)."""
        if any(r.ref is not None for r in self._live.values()):
            gc.collect()
        leaked = []
        for token in sorted(self._live):
            record = self._live[token]
            if record.kind in exclude_kinds:
                continue
            if not record.live():
                del self._live[token]
                continue
            leaked.append(record)
            del self._live[token]
        return leaked

    def classify(self, record: ResourceRecord) -> str:
        """SAN205 when the leak predates the noted exception, SAN103
        otherwise (still-live at a commit/exit point)."""
        if self._exc_marker is not None and record.token <= self._exc_marker:
            return "SAN205"
        return "SAN103"

    @property
    def live_count(self) -> int:
        return len(self._live)

"""Pickle-boundary checks for executor specs.

Every ``*Spec`` handed to an executor session is (a) scanned for
fork-unsafe OS resources — open files, locks, sockets, generators —
reachable from its fields (dynamic REP202), and (b) round-tripped
through pickle and structurally compared against the original (dynamic
REP102).  The serial executor never pickles, which is exactly why the
dynamic check round-trips anyway: a spec that only works because the
serial path skipped the boundary is a latent MP bug.

The structural comparison is shape-based, not identity-based: two specs
compare equal when their field trees match by type and value, with
memoryviews/arrays compared by content.  ``__reduce__`` tricks that
survive pickling but alter values are caught; benign identity changes
(new list objects, re-interned strings) are not.
"""

from __future__ import annotations

import io
import pickle
import socket
import threading
from dataclasses import fields, is_dataclass
from types import GeneratorType

__all__ = ["check_spec", "fork_unsafe_member", "structural_diff"]

_LOCK_TYPES = (
    type(threading.Lock()),
    type(threading.RLock()),
    threading.Condition,
    threading.Event,
    threading.Semaphore,
)

_MAX_DEPTH = 6


def fork_unsafe_member(obj: object, path: str = "spec", depth: int = 0) -> str | None:
    """The dotted path of the first fork-unsafe object reachable from
    ``obj``, or None.  Mirrors REP202's static reachability walk."""
    if depth > _MAX_DEPTH:
        return None
    if isinstance(obj, io.IOBase):
        return f"{path} is an open file handle ({type(obj).__name__})"
    if isinstance(obj, _LOCK_TYPES):
        return f"{path} is a thread-synchronisation primitive ({type(obj).__name__})"
    if isinstance(obj, socket.socket):
        return f"{path} is a socket"
    if isinstance(obj, GeneratorType):
        return f"{path} is a live generator"
    if isinstance(obj, dict):
        for key, value in obj.items():
            hit = fork_unsafe_member(value, f"{path}[{key!r}]", depth + 1)
            if hit:
                return hit
        return None
    if isinstance(obj, (list, tuple, set, frozenset)):
        for i, value in enumerate(obj):
            hit = fork_unsafe_member(value, f"{path}[{i}]", depth + 1)
            if hit:
                return hit
        return None
    if is_dataclass(obj) and not isinstance(obj, type):
        for f in fields(obj):
            hit = fork_unsafe_member(
                getattr(obj, f.name), f"{path}.{f.name}", depth + 1
            )
            if hit:
                return hit
        return None
    return None


def structural_diff(a: object, b: object, path: str = "spec", depth: int = 0) -> str | None:
    """First structural difference between ``a`` and ``b``, or None."""
    if depth > _MAX_DEPTH:
        return None
    if type(a) is not type(b):
        # memoryview pickles to bytes; compare content across the pair.
        if isinstance(a, (bytes, memoryview)) and isinstance(b, (bytes, memoryview)):
            if bytes(a) != bytes(b):
                return f"{path}: buffer content differs after round-trip"
            return None
        return (
            f"{path}: type changed {type(a).__name__} -> {type(b).__name__} "
            "after round-trip"
        )
    if isinstance(a, dict):
        if sorted(map(repr, a)) != sorted(map(repr, b)):
            return f"{path}: dict keys differ after round-trip"
        for key in a:
            diff = structural_diff(a[key], b[key], f"{path}[{key!r}]", depth + 1)
            if diff:
                return diff
        return None
    if isinstance(a, (list, tuple)):
        if len(a) != len(b):
            return f"{path}: length {len(a)} -> {len(b)} after round-trip"
        for i, (x, y) in enumerate(zip(a, b)):
            diff = structural_diff(x, y, f"{path}[{i}]", depth + 1)
            if diff:
                return diff
        return None
    if isinstance(a, (set, frozenset)):
        if sorted(map(repr, a)) != sorted(map(repr, b)):
            return f"{path}: set content differs after round-trip"
        return None
    if is_dataclass(a) and not isinstance(a, type):
        for f in fields(a):
            diff = structural_diff(
                getattr(a, f.name), getattr(b, f.name), f"{path}.{f.name}", depth + 1
            )
            if diff:
                return diff
        return None
    if isinstance(a, (int, float, str, bytes, bool, complex)) or a is None:
        if a != b:
            return f"{path}: value {a!r} -> {b!r} after round-trip"
        return None
    # Opaque object: pickling succeeded, accept it.
    return None


def check_spec(spec: object) -> tuple[str, str] | None:
    """Run both boundary checks on one spec.

    Returns ``(violation_id, message)`` — SAN202 for a fork-unsafe
    member, SAN102 for a failed or lossy round-trip — or None.
    """
    unsafe = fork_unsafe_member(spec)
    if unsafe:
        return "SAN202", f"fork-unsafe OS resource on spec: {unsafe}"
    try:
        payload = pickle.dumps(spec)
        clone = pickle.loads(payload)
    except Exception as exc:
        return (
            "SAN102",
            f"spec does not pickle across the executor boundary: "
            f"{type(exc).__name__}: {exc}",
        )
    diff = structural_diff(spec, clone)
    if diff:
        return "SAN102", f"spec altered by pickle round-trip: {diff}"
    return None

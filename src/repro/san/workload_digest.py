"""Print one workload leg's canonical output digest (for double runs).

``python -m repro.san.workload_digest <workload> <engine> <executor>
<records> <nodes>`` runs the leg and prints the sha256 of its output
records — exactly the digest the clean matrix pins in
``san-baseline.json``.  The hashseed detector (:mod:`repro.san.hashseed`)
re-executes this module under two ``PYTHONHASHSEED`` values and
byte-compares the printed line: any divergence is hash-order
nondeterminism escaping into engine output (SAN006 / REP006).
"""

from __future__ import annotations

import sys


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 5:
        print(
            "usage: python -m repro.san.workload_digest "
            "<workload> <engine> <executor> <records> <nodes>",
            file=sys.stderr,
        )
        return 2
    workload, engine, executor = argv[0], argv[1], argv[2]
    records, nodes = int(argv[3]), int(argv[4])

    from repro.san.matrix import _leg_digest

    print(_leg_digest(workload, engine, executor, records, nodes))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

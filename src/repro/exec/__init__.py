"""Pluggable task execution backends for the three engines.

The engines describe each map/reduce task as a small picklable *spec*; a
registered *kernel* (a pure function of ``(context, spec)``) executes it
and returns a picklable result.  An :class:`Executor` decides where those
kernel invocations run:

* :class:`SerialExecutor`    — inline in the coordinator (the default);
* :class:`ThreadExecutor`    — a thread pool (shared-memory, GIL-bound);
* :class:`MPExecutor`        — a fork-based process pool with batched
  task submission (real multicore execution).

Determinism is preserved by construction: kernels never touch shared
engine state — all side effects (disk installs, shuffle registration,
chunk delivery, fault injection, recovery decisions) are replayed by the
coordinator in task order from the kernels' returned effect lists.
"""

from repro.exec.base import (
    ExecSession,
    Executor,
    MPExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_kernel,
    register_kernel,
    resolve_executor,
)

# NOTE: repro.exec.kernels is imported lazily (see base.get_kernel) — the
# kernels module depends on the engine task classes, whose modules import
# this package for resolve_executor and the spec types.

__all__ = [
    "ExecSession",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "MPExecutor",
    "resolve_executor",
    "register_kernel",
    "get_kernel",
]

"""Executor protocol and its three implementations.

An engine opens one :class:`ExecSession` per job run, handing it the *job
context* — the non-picklable parts every task of the job shares (the job
object with its closures, the input codec, engine config).  Task *specs*
and kernel *results* are plain picklable data; only they cross process
boundaries.

The :class:`MPExecutor` relies on ``fork``: the pool is created lazily
*after* the session publishes the job context in a module global, so
worker processes inherit the context (closures included) by address-space
copy and nothing unpicklable is ever serialized.  On platforms without
``fork`` the executor degrades to inline execution.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

__all__ = [
    "Executor",
    "ExecSession",
    "SerialExecutor",
    "ThreadExecutor",
    "MPExecutor",
    "resolve_executor",
    "register_kernel",
    "get_kernel",
]

Kernel = Callable[[Any, Any], Any]

_KERNELS: dict[str, Kernel] = {}


def register_kernel(name: str, fn: Kernel) -> None:
    """Register a task kernel under ``name`` (idempotent re-registration)."""
    _KERNELS[name] = fn


def get_kernel(name: str) -> Kernel:
    try:
        return _KERNELS[name]
    except KeyError:
        pass
    # Deferred registration keeps this module a leaf: the kernels module
    # imports the engine task classes, which import this module.  The
    # import system's own once-only latch makes this thread-safe — no
    # mutable module flag, which would race across kernel invocations.
    from repro.exec import kernels  # noqa: F401

    try:
        return _KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; registered: {sorted(_KERNELS)}"
        ) from None


# -- sessions -----------------------------------------------------------------


class ExecSession(Protocol):
    """One job run's view of an executor.

    ``max_batch`` is how many specs the engine should accumulate before a
    ``run_batch`` call (1 for serial execution — the engine then degenerates
    to today's per-task loop).  ``run_batch`` returns results in spec
    order; ``run_one`` executes a single spec (the path used under a fault
    plan, where the coordinator must interleave recovery decisions between
    attempts).
    """

    max_batch: int

    def run_batch(self, kernel: str, specs: Sequence[Any]) -> list[Any]: ...

    def run_one(self, kernel: str, spec: Any) -> Any: ...

    def __enter__(self) -> "ExecSession": ...

    def __exit__(self, *exc: object) -> bool | None: ...


class _InlineSession:
    """Run kernels inline in the coordinator (serial execution)."""

    max_batch = 1

    def __init__(self, context: Any) -> None:
        self._context = context

    def run_batch(self, kernel: str, specs: Sequence[Any]) -> list[Any]:
        fn = get_kernel(kernel)
        ctx = self._context
        return [fn(ctx, spec) for spec in specs]

    def run_one(self, kernel: str, spec: Any) -> Any:
        return get_kernel(kernel)(self._context, spec)

    def __enter__(self) -> "_InlineSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self._context = None


class _ThreadSession:
    """Run kernels on a thread pool (results gathered in spec order)."""

    def __init__(self, context: Any, workers: int) -> None:
        self._context = context
        self.workers = workers
        self.max_batch = 2 * workers
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def run_batch(self, kernel: str, specs: Sequence[Any]) -> list[Any]:
        if len(specs) <= 1:
            return _InlineSession(self._context).run_batch(kernel, specs)
        fn = get_kernel(kernel)
        ctx = self._context
        pool = self._ensure_pool()
        return list(pool.map(lambda spec: fn(ctx, spec), specs))

    def run_one(self, kernel: str, spec: Any) -> Any:
        return get_kernel(kernel)(self._context, spec)

    def __enter__(self) -> "_ThreadSession":
        return self

    def __exit__(self, *exc: object) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._context = None


# The job context inherited by forked pool workers.  Set by the session
# *before* the pool is created so children receive it via fork; holds the
# non-picklable closures (map/reduce functions) that must never cross a
# pipe.
_FORK_CONTEXT: Any = None


def _invoke_chunk(kernel: str, specs: Sequence[Any]) -> list[Any]:
    """Pool entry point: run one chunk of specs against the inherited context."""
    fn = get_kernel(kernel)
    ctx = _FORK_CONTEXT
    return [fn(ctx, spec) for spec in specs]


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class _ForkSession:
    """Run kernels on a fork-based process pool with batched submission.

    Specs are submitted in contiguous chunks (one future per chunk, not
    per task) so the per-submission pickle/IPC overhead amortises across a
    whole wave — the "batched task submission" the map phase needs to
    scale past per-task dispatch latency.
    """

    def __init__(self, context: Any, workers: int) -> None:
        self._context = context
        self.workers = workers
        self.max_batch = 4 * workers
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            global _FORK_CONTEXT
            _FORK_CONTEXT = self._context
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        return self._pool

    def run_batch(self, kernel: str, specs: Sequence[Any]) -> list[Any]:
        if len(specs) <= 1:
            return _InlineSession(self._context).run_batch(kernel, specs)
        pool = self._ensure_pool()
        nchunks = min(self.workers, len(specs))
        size = (len(specs) + nchunks - 1) // nchunks
        chunks = [specs[i : i + size] for i in range(0, len(specs), size)]
        futures = [pool.submit(_invoke_chunk, kernel, chunk) for chunk in chunks]
        out: list[Any] = []
        for future in futures:
            out.extend(future.result())
        return out

    def run_one(self, kernel: str, spec: Any) -> Any:
        pool = self._ensure_pool()
        return pool.submit(_invoke_chunk, kernel, [spec]).result()[0]

    def __enter__(self) -> "_ForkSession":
        return self

    def __exit__(self, *exc: object) -> None:
        global _FORK_CONTEXT
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        _FORK_CONTEXT = None
        self._context = None


# -- executors ----------------------------------------------------------------


@runtime_checkable
class Executor(Protocol):
    """Factory of per-job execution sessions."""

    name: str
    workers: int

    def session(self, context: Any) -> ExecSession: ...


class SerialExecutor:
    """Today's behaviour: every task runs inline in the coordinator."""

    name = "serial"
    workers = 1

    def session(self, context: Any) -> _InlineSession:
        return _InlineSession(context)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "SerialExecutor()"


class ThreadExecutor:
    """Thread-pool execution: shared memory, bounded by the GIL.

    Useful as a determinism cross-check and for kernels that release the
    GIL; map waves still submit in batches.
    """

    name = "threads"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = max(1, workers if workers is not None else _default_workers())

    def session(self, context: Any) -> _ThreadSession:
        return _ThreadSession(context, self.workers)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ThreadExecutor(workers={self.workers})"


class MPExecutor:
    """Fork-based process-pool execution — real multicore task parallelism.

    Falls back to inline execution where ``fork`` is unavailable (the
    context cannot be shipped to spawn-style children without pickling
    job closures).
    """

    name = "processes"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = max(1, workers if workers is not None else _default_workers())

    def session(self, context: Any) -> ExecSession:
        if not fork_available():  # pragma: no cover - non-POSIX only
            return _InlineSession(context)
        return _ForkSession(context, self.workers)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MPExecutor(workers={self.workers})"


def _default_workers() -> int:
    return os.cpu_count() or 1


def resolve_executor(value: "Executor | str | None") -> "Executor":
    """Turn a constructor argument into an executor.

    Accepts an :class:`Executor` instance, ``None`` (serial), or a spec
    string: ``"serial"``, ``"threads"``, ``"threads:4"``, ``"processes"``,
    ``"processes:4"``.
    """
    if value is None:
        return SerialExecutor()
    if isinstance(value, str):
        name, _, arg = value.partition(":")
        workers = None
        if arg:
            try:
                workers = int(arg)
            except ValueError:
                raise ValueError(f"bad executor worker count in {value!r}") from None
            if workers < 1:
                raise ValueError(f"executor worker count must be >= 1: {value!r}")
        if name == "serial":
            if workers not in (None, 1):
                raise ValueError("serial executor takes no worker count")
            return SerialExecutor()
        if name in ("threads", "thread"):
            return ThreadExecutor(workers)
        if name in ("processes", "process", "mp"):
            return MPExecutor(workers)
        raise ValueError(f"unknown executor spec {value!r}")
    if isinstance(value, Executor):
        return value
    raise TypeError(f"cannot resolve executor from {value!r}")

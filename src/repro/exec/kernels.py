"""Pure task kernels: the worker-side half of each engine's tasks.

Each kernel is a pure function of ``(context, spec)``:

* the *context* holds the per-job shared objects (job, codec, engine
  config) — inherited by reference (serial/threads) or by ``fork``
  (processes), never pickled;
* the *spec* is a small picklable descriptor carrying everything
  task-specific, including the raw input block bytes (read by the
  coordinator, where HDFS accounting lives);
* the *result* is picklable data plus ordered effect lists; the
  coordinator replays all effects (disk installs, shuffle registration,
  chunk delivery) in deterministic task order.

Task disk I/O runs against a *shadow* :class:`~repro.io.disk.LocalDisk`
with the real device's profile; the coordinator absorbs the export, so
files, byte counts and op accounting match in-place execution exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.exec.base import register_kernel
from repro.io.device import DeviceProfile
from repro.io.disk import DiskExport, LocalDisk
from repro.io.runio import stream_run, write_run
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.sortmerge import (
    MapOutput,
    SortMergeMapTask,
    SortMergeReduceTask,
)
from repro.obs.tracer import task_tracer

__all__ = [
    "timed_decode",
    "HadoopMapSpec",
    "HadoopMapResult",
    "HadoopReduceSpec",
    "HadoopReduceResult",
    "HopMapSpec",
    "HopMapResult",
    "OnePassMapSpec",
    "OnePassMapResult",
]


def timed_decode(codec: Any, data: bytes, counters: Counters) -> Iterator[Any]:
    """Decode ``data`` lazily, charging per-record parse time to ``counters``."""
    perf = time.perf_counter
    it = codec.decode(data)
    while True:
        t0 = perf()
        try:
            record = next(it)
        except StopIteration:
            counters.inc(C.T_PARSE, perf() - t0)
            return
        counters.inc(C.T_PARSE, perf() - t0)
        yield record


# -- Hadoop map ---------------------------------------------------------------


@dataclass(slots=True)
class HadoopMapSpec:
    task_id: int
    node: str
    data: bytes
    profile: DeviceProfile
    disk_name: str


@dataclass(slots=True)
class HadoopMapResult:
    output: MapOutput
    counters: Counters
    disk: DiskExport
    #: Task-local trace export (``None`` when tracing is off); the
    #: coordinator absorbs it in deterministic task order.
    trace: Any = None


def hadoop_map_kernel(ctx: dict[str, Any], spec: HadoopMapSpec) -> HadoopMapResult:
    """One sort-spill map task over one block, against a shadow disk."""
    job = ctx["job"]
    disk = LocalDisk(spec.profile, name=spec.disk_name)
    tracer = task_tracer(bool(ctx.get("trace")))
    task = SortMergeMapTask(job, spec.task_id, spec.node, disk, tracer=tracer)
    records = timed_decode(ctx["codec"], spec.data, task.counters)
    output = task.run(records, input_bytes=len(spec.data))
    return HadoopMapResult(output, task.counters, disk.export_state(), tracer.export())


# -- Hadoop reduce ------------------------------------------------------------


@dataclass(slots=True)
class HadoopReduceSpec:
    partition: int
    node: str
    profile: DeviceProfile
    disk_name: str
    memory: list[list[tuple[Any, Any]]]
    memory_bytes: int
    merger_runs: list[tuple[str, int]]
    merger_seq: int
    run_files: dict[str, bytes]


@dataclass(slots=True)
class HadoopReduceResult:
    partition: int
    output: list[Any]
    groups: int
    counters: Counters
    disk: DiskExport
    trace: Any = None


def hadoop_reduce_kernel(
    ctx: dict[str, Any], spec: HadoopReduceSpec
) -> HadoopReduceResult:
    """Final merge + grouped reduce for one partition, on a shadow disk.

    The coordinator ships the ingestion-phase state (in-memory segments,
    on-disk run metadata and bytes); the run-phase counters come back on
    a fresh :class:`Counters` so the coordinator can merge both halves.
    """
    job = ctx["job"]
    disk = LocalDisk(spec.profile, name=spec.disk_name)
    disk.preload(spec.run_files)
    tracer = task_tracer(bool(ctx.get("trace")))
    rtask = SortMergeReduceTask(job, spec.partition, spec.node, disk, tracer=tracer)
    rtask.adopt_ingested(
        spec.memory, spec.memory_bytes, (spec.merger_runs, spec.merger_seq)
    )
    output, groups = rtask.run()
    return HadoopReduceResult(
        spec.partition,
        output,
        groups,
        rtask.counters,
        disk.export_state(preloaded=spec.run_files),
        tracer.export(),
    )


# -- HOP (pipelined) map ------------------------------------------------------


@dataclass(slots=True)
class HopMapSpec:
    task_id: int
    node: str
    data: bytes
    profile: DeviceProfile
    disk_name: str
    #: Fault path only: each reducer's backlog at attempt start.  The
    #: attempt must not observe live reducer state (its pushes are
    #: buffered until it survives), so backpressure decisions use these
    #: frozen values — exactly what the buffering proxy exposed before.
    frozen_backlogs: dict[int, int] | None = None


@dataclass(slots=True)
class HopMapResult:
    #: Live mode: ordered ``(partition, pairs, nbytes)`` emissions; the
    #: coordinator replays push-vs-stage against live reducer backlogs.
    chunks: list[tuple[int, list[tuple[Any, Any]], int]] = field(default_factory=list)
    #: Fault mode: per-partition delivery lists (pushes first, then
    #: drained staged chunks), mirroring the old buffered-proxy order.
    by_partition: dict[int, list[tuple[list[tuple[Any, Any]], int]]] | None = None
    counters: Counters = field(default_factory=Counters)
    disk: DiskExport | None = None
    trace: Any = None


def hop_map_kernel(ctx: dict[str, Any], spec: HopMapSpec) -> HopMapResult:
    """One pipelined map task; staging I/O (fault path) hits a shadow disk."""
    from repro.mapreduce.hop import _FrozenStageRouter, _PipelinedMapTask

    job = ctx["job"]
    hop = ctx["hop"]
    records = ctx["codec"].decode(spec.data)
    tracer = task_tracer(bool(ctx.get("trace")))

    if spec.frozen_backlogs is None:
        chunks: list[tuple[int, list[tuple[Any, Any]], int]] = []
        task = _PipelinedMapTask(
            job,
            spec.task_id,
            spec.node,
            LocalDisk(spec.profile, name=spec.disk_name),
            hop,
            lambda partition, pairs, nbytes: chunks.append((partition, pairs, nbytes)),
            tracer=tracer,
        )
        task.run(records, input_bytes=len(spec.data))
        return HopMapResult(chunks=chunks, counters=task.counters, trace=tracer.export())

    disk = LocalDisk(spec.profile, name=spec.disk_name)
    task = _PipelinedMapTask(job, spec.task_id, spec.node, disk, hop, None, tracer=tracer)
    router = _FrozenStageRouter(
        spec.task_id, disk, task.counters, hop.backpressure_bytes, spec.frozen_backlogs
    )
    task.emit = router.emit
    task.run(records, input_bytes=len(spec.data))
    router.drain()
    return HopMapResult(
        by_partition=router.delivered,
        counters=task.counters,
        disk=disk.export_state(),
        trace=tracer.export(),
    )


# -- one-pass map -------------------------------------------------------------


@dataclass(slots=True)
class OnePassMapSpec:
    task_id: int
    node: str
    data: bytes


@dataclass(slots=True)
class OnePassMapResult:
    staged: list[tuple[int, list[tuple[Any, Any]], int]]
    counters: Counters
    trace: Any = None


def onepass_map_kernel(ctx: dict[str, Any], spec: OnePassMapSpec) -> OnePassMapResult:
    """One hash-engine map task: scan/combine entirely in memory.

    The map side of the one-pass engine performs no disk I/O — its only
    effect is the ordered stream of pushed chunks, collected here and
    delivered (with logging/checkpointing where configured) by the
    coordinator.
    """
    from repro.core.engine import execute_onepass_map

    job = ctx["job"]
    staged: list[tuple[int, list[tuple[Any, Any]], int]] = []
    tracer = task_tracer(bool(ctx.get("trace")))
    counters = execute_onepass_map(
        job,
        ctx["codec"],
        spec.data,
        lambda partition, pairs, nbytes: staged.append((partition, pairs, nbytes)),
        tracer=tracer,
        task_id=spec.task_id,
        node=spec.node,
    )
    return OnePassMapResult(staged, counters, tracer.export())


register_kernel("hadoop_map", hadoop_map_kernel)
register_kernel("hadoop_reduce", hadoop_reduce_kernel)
register_kernel("hop_map", hop_map_kernel)
register_kernel("onepass_map", onepass_map_kernel)

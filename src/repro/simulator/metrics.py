"""Post-run metric extraction: CPU utilisation, iowait, bytes read.

The paper's Fig. 2(b–f) and Fig. 4 are time series sampled by iostat/ps on
each node.  Here the equivalent series are derived from the busy intervals
each :class:`~repro.simulator.resources.ServiceBank` recorded:

* **CPU utilisation** — busy-core fraction per time bucket, averaged over
  nodes;
* **CPU iowait** — fraction of a bucket in which cores sat idle while the
  node's disks were busy (idle ∧ disk-busy), the standard iowait meaning;
* **bytes read/written per second** — disk interval byte counts binned by
  completion-weighted overlap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulator.resources import Interval, ServiceBank

__all__ = ["SeriesBundle", "bin_busy_fraction", "bin_bytes", "node_metrics", "MetricSampler"]


def _overlap_into(
    arr: np.ndarray, start: float, end: float, bucket: float, weight: float
) -> None:
    n = len(arr)
    first = int(start // bucket)
    last = min(int(end // bucket), n - 1)
    for b in range(max(first, 0), last + 1):
        lo = max(start, b * bucket)
        hi = min(end, (b + 1) * bucket)
        if hi > lo:
            arr[b] += (hi - lo) * weight


def bin_busy_fraction(
    intervals: list[Interval], horizon: float, bucket: float, servers: int
) -> np.ndarray:
    """Per-bucket busy fraction of a bank of ``servers`` servers."""
    if bucket <= 0 or horizon <= 0:
        raise ValueError("bucket and horizon must be positive")
    n = max(1, int(np.ceil(horizon / bucket)))
    busy = np.zeros(n)
    for iv in intervals:
        _overlap_into(busy, iv.start, iv.end, bucket, 1.0)
    return np.clip(busy / (bucket * servers), 0.0, 1.0)


def bin_bytes(intervals: list[Interval], horizon: float, bucket: float) -> np.ndarray:
    """Per-bucket bytes transferred (spread uniformly over each service)."""
    n = max(1, int(np.ceil(horizon / bucket)))
    out = np.zeros(n)
    for iv in intervals:
        duration = iv.end - iv.start
        if duration <= 0 or iv.nbytes == 0:
            continue
        _overlap_into(out, iv.start, iv.end, bucket, iv.nbytes / duration)
    return out


@dataclass(slots=True)
class SeriesBundle:
    """The full set of figure series for one simulated run."""

    times: np.ndarray
    cpu_utilization: np.ndarray
    cpu_iowait: np.ndarray
    disk_read_bytes_per_s: np.ndarray
    disk_write_bytes_per_s: np.ndarray

    def as_dict(self) -> dict[str, list[float]]:
        return {
            "times": self.times.tolist(),
            "cpu_utilization": self.cpu_utilization.tolist(),
            "cpu_iowait": self.cpu_iowait.tolist(),
            "disk_read_bytes_per_s": self.disk_read_bytes_per_s.tolist(),
            "disk_write_bytes_per_s": self.disk_write_bytes_per_s.tolist(),
        }


def node_metrics(
    cpu: ServiceBank,
    disks: list[ServiceBank],
    horizon: float,
    bucket: float,
) -> SeriesBundle:
    """Series for one node."""
    times = np.arange(max(1, int(np.ceil(horizon / bucket)))) * bucket
    cpu_util = bin_busy_fraction(cpu.intervals, horizon, bucket, cpu.servers)
    disk_busy = np.zeros_like(cpu_util)
    reads = np.zeros_like(cpu_util)
    writes = np.zeros_like(cpu_util)
    for disk in disks:
        disk_busy = np.maximum(
            disk_busy, bin_busy_fraction(disk.intervals, horizon, bucket, disk.servers)
        )
        read_iv = [iv for iv in disk.intervals if iv.tag == "read"]
        write_iv = [iv for iv in disk.intervals if iv.tag == "write"]
        reads += bin_bytes(read_iv, horizon, bucket) / bucket
        writes += bin_bytes(write_iv, horizon, bucket) / bucket
    iowait = np.minimum(1.0 - cpu_util, disk_busy)
    return SeriesBundle(
        times=times,
        cpu_utilization=cpu_util,
        cpu_iowait=np.clip(iowait, 0.0, 1.0),
        disk_read_bytes_per_s=reads,
        disk_write_bytes_per_s=writes,
    )


class MetricSampler:
    """Aggregates per-node series into cluster-average series.

    The paper plots cluster-wide averages (its profiling tool logs every
    node and the figures show the fleet's behaviour); averaging per-node
    series preserves the shapes.
    """

    def __init__(self, bucket: float = 10.0) -> None:
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        self.bucket = bucket

    def cluster_series(
        self,
        nodes: list[tuple[ServiceBank, list[ServiceBank]]],
        horizon: float,
    ) -> SeriesBundle:
        bundles = [
            node_metrics(cpu, disks, horizon, self.bucket) for cpu, disks in nodes
        ]
        times = bundles[0].times
        return SeriesBundle(
            times=times,
            cpu_utilization=np.mean([b.cpu_utilization for b in bundles], axis=0),
            cpu_iowait=np.mean([b.cpu_iowait for b in bundles], axis=0),
            disk_read_bytes_per_s=np.sum(
                [b.disk_read_bytes_per_s for b in bundles], axis=0
            ),
            disk_write_bytes_per_s=np.sum(
                [b.disk_write_bytes_per_s for b in bundles], axis=0
            ),
        )

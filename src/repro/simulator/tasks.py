"""Shared task building blocks and run-result types for the pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from repro.simulator.calibration import MB, ClusterSpec, WorkloadProfile
from repro.simulator.metrics import MetricSampler, SeriesBundle
from repro.simulator.node import SimNode
from repro.simulator.resources import Use
from repro.simulator.timeline import TaskLog

__all__ = ["SimTotals", "SimRunResult", "read_block", "write_remote", "mb"]


def mb(nbytes: float) -> float:
    """Bytes → MB, the unit of the CPU-rate constants."""
    return nbytes / MB


@dataclass(slots=True)
class SimTotals:
    """Aggregate byte counters for one simulated run."""

    map_output_bytes: float = 0.0
    shuffle_bytes: float = 0.0
    reduce_spill_bytes: float = 0.0
    merge_read_bytes: float = 0.0
    merge_write_bytes: float = 0.0
    merge_passes: int = 0
    snapshot_read_bytes: float = 0.0
    output_bytes: float = 0.0
    network_messages: int = 0
    remote_input_bytes: float = 0.0


@dataclass(slots=True)
class SimRunResult:
    """Everything a figure or table needs from one simulated run."""

    engine: str
    workload: str
    spec: ClusterSpec
    profile: WorkloadProfile
    makespan: float
    task_log: TaskLog
    series: SeriesBundle
    totals: SimTotals
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def completion_minutes(self) -> float:
        return self.makespan / 60.0

    def phase_window(self, phase: str) -> tuple[float, float]:
        return self.task_log.phase_window(phase)


def read_block(
    node: SimNode,
    storage_node: SimNode,
    nbytes: float,
    totals: SimTotals,
    *,
    stream: str,
) -> Generator[Any, Any, None]:
    """Read one HDFS block, local or across the network."""
    if storage_node is node:
        yield Use(node.hdfs_disk, nbytes, stream=stream, tag="read")
        return
    yield Use(storage_node.hdfs_disk, nbytes, stream=stream, tag="read")
    yield Use(storage_node.nic_out, nbytes, stream=stream)
    yield Use(node.nic_in, nbytes, stream=stream)
    totals.remote_input_bytes += nbytes
    totals.network_messages += 1


def write_remote(
    node: SimNode,
    storage_node: SimNode,
    nbytes: float,
    totals: SimTotals,
    *,
    stream: str,
) -> Generator[Any, Any, None]:
    """Write job output to HDFS, local or across the network."""
    if storage_node is node:
        yield Use(node.hdfs_disk, nbytes, stream=stream, tag="write")
        return
    yield Use(node.nic_out, nbytes, stream=stream)
    yield Use(storage_node.nic_in, nbytes, stream=stream)
    yield Use(storage_node.hdfs_disk, nbytes, stream=stream, tag="write")
    totals.network_messages += 1


def metric_bundle(
    cluster_nodes: list[SimNode], horizon: float, bucket: float
) -> SeriesBundle:
    """Cluster-average series over the run's compute nodes."""
    sampler = MetricSampler(bucket=bucket)
    pairs = [
        (n.cpu, list(n.disks()))
        for n in cluster_nodes
    ]
    return sampler.cluster_series(pairs, horizon)

"""Simulated cluster topologies.

Three architectures from the paper's §III.C:

* **colocated** (default) — every node stores HDFS data *and* runs tasks;
  one spindle carries input, output and intermediate traffic;
* **HDD+SSD** (``with_ssd=True``) — intermediate data moves to a per-node
  SSD, decoupling it from HDFS traffic;
* **separate storage** (``storage_nodes=k``) — the first ``k`` nodes hold
  HDFS only and the rest compute only (the Elastic-MapReduce-style split);
  every block read then crosses the network.
"""

from __future__ import annotations

from repro.simulator.calibration import ClusterSpec
from repro.simulator.events import Simulator
from repro.simulator.node import SimNode

__all__ = ["SimCluster"]


class SimCluster:
    """All nodes of one simulated run, plus placement helpers."""

    def __init__(self, sim: Simulator, spec: ClusterSpec) -> None:
        self.sim = sim
        self.spec = spec
        self.nodes: list[SimNode] = []
        for i in range(spec.nodes):
            is_storage = spec.storage_nodes == 0 or i < spec.storage_nodes
            is_compute = spec.storage_nodes == 0 or i >= spec.storage_nodes
            self.nodes.append(
                SimNode(
                    sim,
                    f"node{i:02d}",
                    spec,
                    is_compute=is_compute,
                    is_storage=is_storage,
                )
            )

    @property
    def compute_nodes(self) -> list[SimNode]:
        return [n for n in self.nodes if n.is_compute]

    @property
    def storage_nodes(self) -> list[SimNode]:
        return [n for n in self.nodes if n.is_storage]

    @property
    def separate_storage(self) -> bool:
        return self.spec.storage_nodes > 0

    def storage_node_for_block(self, block_index: int) -> SimNode:
        """Round-robin block placement over storage nodes (replication 1)."""
        storage = self.storage_nodes
        return storage[block_index % len(storage)]

    def reducer_node(self, reducer_index: int) -> SimNode:
        compute = self.compute_nodes
        return compute[reducer_index % len(compute)]

"""Discrete-event simulation kernel.

A minimal, deterministic process-based kernel in the simpy style: the
event queue is a heap of ``(time, seq, callback)``; *processes* are Python
generators that yield request objects (:class:`Timeout`,
:class:`repro.simulator.resources.Use`, :class:`Gate` waits...), each of
which arranges for the process to be resumed.

Determinism matters for the benchmarks: identical specs must produce
identical timelines, so ties in time break on insertion sequence, never on
object identity.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Protocol

__all__ = ["Simulator", "Request", "Timeout", "Gate", "Mailbox", "all_spawned_done"]

#: A process is a generator yielding Request objects; ``send`` receives the
#: request's completion value.
Process = Generator["Request", Any, None]


class Request(Protocol):
    """Anything a process may yield: arranges a future ``resume(value)``."""

    def start(self, sim: "Simulator", resume: Callable[[Any], None]) -> None: ...


class Simulator:
    """The event loop: a clock plus a deterministic pending-event heap."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._live_processes = 0
        self._all_done_gates: list[Gate] = []

    # -- scheduling ---------------------------------------------------------

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` at absolute ``time`` (>= now)."""
        if time < self.now - 1e-12:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn))

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.at(self.now + delay, fn)

    # -- processes -----------------------------------------------------------

    def spawn(self, process: Process) -> None:
        """Start driving a process generator from the current time."""
        self._live_processes += 1

        def step(value: Any = None) -> None:
            try:
                request = process.send(value)
            except StopIteration:
                self._live_processes -= 1
                if self._live_processes == 0:
                    for gate in self._all_done_gates:
                        gate.fire()
                    self._all_done_gates.clear()
                return
            request.start(self, step)

        # First step runs via the event queue so spawn order, not call
        # stack depth, determines interleaving.
        self.after(0.0, step)

    # -- running ---------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Process events until the heap drains (or ``until``); returns now."""
        while self._heap:
            time, _seq, fn = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            fn()
        return self.now

    def when_all_processes_done(self, gate: "Gate") -> None:
        """Fire ``gate`` when every spawned process has finished."""
        if self._live_processes == 0:
            gate.fire()
        else:
            self._all_done_gates.append(gate)


class Timeout:
    """Resume the process after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = delay

    def start(self, sim: Simulator, resume: Callable[[Any], None]) -> None:
        sim.after(self.delay, lambda: resume(None))


class Gate:
    """A one-shot broadcast condition (e.g. "all map tasks finished").

    Processes yield ``gate.wait()``; ``fire()`` releases every current and
    future waiter.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.fired = False
        self.fire_time: float | None = None
        self._waiters: list[Callable[[Any], None]] = []

    def fire(self) -> None:
        if self.fired:
            return
        self.fired = True
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            resume(None)

    def wait(self) -> "Request":
        gate = self

        class _Wait:
            __slots__ = ()

            def start(self, sim: Simulator, resume: Callable[[Any], None]) -> None:
                if gate.fired:
                    sim.after(0.0, lambda: resume(None))
                else:
                    gate._waiters.append(resume)

        return _Wait()


class Mailbox:
    """An unbounded FIFO channel between processes.

    Producers call :meth:`put`; a consumer process yields :meth:`get` and
    receives the next item (waiting if empty).  One consumer at a time —
    enough for the shuffle queues that use it.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._items: list[Any] = []
        self._head = 0
        self._waiter: Callable[[Any], None] | None = None
        self.closed = False

    def __len__(self) -> int:
        return len(self._items) - self._head

    def put(self, item: Any) -> None:
        if self.closed:
            raise RuntimeError(f"mailbox {self.name!r} is closed")
        if self._waiter is not None:
            resume, self._waiter = self._waiter, None
            resume(item)
        else:
            self._items.append(item)

    def close(self) -> None:
        """No more puts; a blocked getter receives ``None``."""
        self.closed = True
        if self._waiter is not None:
            resume, self._waiter = self._waiter, None
            resume(None)

    def get(self) -> Request:
        box = self

        class _Get:
            __slots__ = ()

            def start(self, sim: Simulator, resume: Callable[[Any], None]) -> None:
                if box._head < len(box._items):
                    item = box._items[box._head]
                    box._head += 1
                    if box._head > 64 and box._head * 2 > len(box._items):
                        del box._items[: box._head]
                        box._head = 0
                    sim.after(0.0, lambda: resume(item))
                elif box.closed:
                    sim.after(0.0, lambda: resume(None))
                else:
                    if box._waiter is not None:
                        raise RuntimeError("mailbox already has a waiting consumer")
                    box._waiter = resume

        return _Get()


def all_spawned_done(sim: Simulator) -> Gate:
    """A gate that fires when every currently spawned process finishes."""
    gate = Gate("all-processes-done")
    # Fire check must run after the heap drains of startup events, so defer
    # the registration to the end of time zero.
    sim.after(0.0, lambda: sim.when_all_processes_done(gate))
    return gate

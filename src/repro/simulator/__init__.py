"""Discrete-event cluster simulator for paper-scale experiments.

The executable engines in :mod:`repro.mapreduce` and :mod:`repro.core`
process real records at laptop scale; this package replays the same three
pipelines over a calibrated 10-node, 256–508 GB cluster model to reproduce
the paper's time-series figures (task timelines, CPU utilisation, iowait,
bytes read) and Table I completion times.
"""

from repro.simulator.calibration import (
    CLUSTER_2011,
    GB,
    INVERTED_INDEX,
    MB,
    PAGE_FREQUENCY,
    PAPER_WORKLOADS,
    PER_USER_COUNT,
    SESSIONIZATION,
    ClusterSpec,
    WorkloadProfile,
)
from repro.simulator.cluster import SimCluster
from repro.simulator.events import Gate, Mailbox, Simulator, Timeout
from repro.simulator.metrics import MetricSampler, SeriesBundle, bin_busy_fraction, bin_bytes
from repro.simulator.node import SimNode
from repro.simulator.pipelines import (
    HadoopPipeline,
    HOPPipeline,
    HOPSimConfig,
    OnePassPipeline,
)
from repro.simulator.resources import CpuBank, Disk, Interval, Nic, ServiceBank, Use
from repro.simulator.tasks import SimRunResult, SimTotals
from repro.simulator.timeline import PHASES, TaskLog, TaskSpan

__all__ = [
    "Simulator",
    "Timeout",
    "Gate",
    "Mailbox",
    "ServiceBank",
    "CpuBank",
    "Disk",
    "Nic",
    "Use",
    "Interval",
    "SimNode",
    "SimCluster",
    "ClusterSpec",
    "WorkloadProfile",
    "CLUSTER_2011",
    "SESSIONIZATION",
    "PAGE_FREQUENCY",
    "PER_USER_COUNT",
    "INVERTED_INDEX",
    "PAPER_WORKLOADS",
    "MB",
    "GB",
    "HadoopPipeline",
    "HOPPipeline",
    "HOPSimConfig",
    "OnePassPipeline",
    "SimRunResult",
    "SimTotals",
    "TaskLog",
    "TaskSpan",
    "PHASES",
    "MetricSampler",
    "SeriesBundle",
    "bin_busy_fraction",
    "bin_bytes",
]

"""Calibration constants: the paper's cluster and workload parameters.

The simulator reproduces the *shapes* of the paper's figures at the
paper's data scale; these dataclasses hold every constant that shapes
them.  Cluster constants follow the hardware class of a 2010/11
commodity node (one SATA HDD, gigabit Ethernet, two quad-core CPUs);
workload constants are derived from the paper's own tables:

* Table I gives input sizes, map-output and reduce-spill volumes, task
  counts and completion times per workload;
* Table II gives the map-phase CPU split between the map function and
  sorting (sessionization 61/39, per-user count 52/48);
* §III.B.2 gives the map-output write at ~6% of a 21.6 s average map task.

CPU rates are expressed in CPU-seconds per MB so they scale with block
size.  Absolute rates are set so that average task durations and phase
lengths land near the paper's (map tasks ≈ 21.6 s for sessionization,
completion times near Table I); the *ratios* between map-function and
sorting CPU follow Table II (sessionization ≈ 61/39, per-user count
≈ 52/48).  Nodes are modelled with 4 cores and 4 map slots so that a
CPU-bound map phase shows high utilisation, as in Fig. 2(b).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MB",
    "GB",
    "ClusterSpec",
    "WorkloadProfile",
    "CLUSTER_2011",
    "SESSIONIZATION",
    "PAGE_FREQUENCY",
    "PER_USER_COUNT",
    "INVERTED_INDEX",
    "PAPER_WORKLOADS",
]

MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True, slots=True)
class ClusterSpec:
    """Hardware and Hadoop-configuration constants of the simulated cluster."""

    nodes: int = 10
    cores_per_node: int = 4
    map_slots: int = 4
    reduce_slots: int = 4  # descriptive: reducers/nodes in the paper's config
    hdd_bandwidth: float = 90 * MB
    hdd_seek: float = 0.012
    ssd_bandwidth: float = 250 * MB
    ssd_seek: float = 0.0001
    net_bandwidth: float = 110 * MB  # ~1 GbE payload rate
    block_bytes: int = 64 * MB
    reducers: int = 40
    merge_factor: int = 10
    reduce_buffer_bytes: int = 256 * MB
    with_ssd: bool = False
    storage_nodes: int = 0  # >0 → separate storage/compute architecture

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.storage_nodes >= self.nodes:
            raise ValueError("storage_nodes must leave compute nodes")
        if self.merge_factor < 2:
            raise ValueError("merge_factor must be >= 2")

    @property
    def compute_nodes(self) -> int:
        return self.nodes - self.storage_nodes if self.storage_nodes else self.nodes


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    """Per-workload cost model, units of CPU-seconds per MB unless noted.

    ``map_output_ratio`` is map-output bytes per input byte *after* any
    combiner; ``reduce_output_ratio`` is job output per input byte.
    ``state_fit_fraction`` is the share of reduce-side aggregate state that
    fits in reducer memory for the one-pass engine (1.0 → no spills).
    """

    name: str
    input_bytes: int
    map_cpu_per_mb: float
    sort_cpu_per_mb: float
    combine_cpu_per_mb: float
    map_output_ratio: float
    reduce_cpu_per_mb: float
    merge_cpu_per_mb: float
    reduce_output_ratio: float
    hash_cpu_per_mb: float
    state_fit_fraction: float = 1.0
    parse_cpu_per_mb: float = 0.003

    def __post_init__(self) -> None:
        if self.input_bytes <= 0:
            raise ValueError("input_bytes must be positive")
        if not 0 <= self.state_fit_fraction <= 1:
            raise ValueError("state_fit_fraction must lie in [0, 1]")

    def scaled(self, input_bytes: int) -> "WorkloadProfile":
        """The same workload at a different input size."""
        return WorkloadProfile(
            name=self.name,
            input_bytes=input_bytes,
            map_cpu_per_mb=self.map_cpu_per_mb,
            sort_cpu_per_mb=self.sort_cpu_per_mb,
            combine_cpu_per_mb=self.combine_cpu_per_mb,
            map_output_ratio=self.map_output_ratio,
            reduce_cpu_per_mb=self.reduce_cpu_per_mb,
            merge_cpu_per_mb=self.merge_cpu_per_mb,
            reduce_output_ratio=self.reduce_output_ratio,
            hash_cpu_per_mb=self.hash_cpu_per_mb,
            state_fit_fraction=self.state_fit_fraction,
            parse_cpu_per_mb=self.parse_cpu_per_mb,
        )


#: The paper's 10-node benchmark cluster (1 head node not modelled; the
#: NameNode/JobTracker overheads are negligible at this scale).
CLUSTER_2011 = ClusterSpec()

#: Sessionization over 256 GB of click logs: map output ≈ 1.05× input
#: (269 GB / 256 GB), no combiner, CPU split 61/39 between map fn and sort.
SESSIONIZATION = WorkloadProfile(
    name="sessionization",
    input_bytes=256 * GB,
    map_cpu_per_mb=0.109,
    sort_cpu_per_mb=0.070,
    combine_cpu_per_mb=0.0,
    map_output_ratio=269 / 256,
    reduce_cpu_per_mb=0.100,
    merge_cpu_per_mb=0.008,
    reduce_output_ratio=1.0,
    hash_cpu_per_mb=0.020,
    state_fit_fraction=0.0,  # holistic states ≈ data size: nothing "fits"
    parse_cpu_per_mb=0.005,
)

#: Page-frequency counting over 508 GB: the combiner collapses map output
#: to 1.8 GB (0.4% of input); reduce work is trivial.
PAGE_FREQUENCY = WorkloadProfile(
    name="page-frequency",
    input_bytes=508 * GB,
    map_cpu_per_mb=0.085,
    sort_cpu_per_mb=0.075,
    combine_cpu_per_mb=0.004,
    map_output_ratio=1.8 / 508,
    reduce_cpu_per_mb=0.020,
    merge_cpu_per_mb=0.010,
    reduce_output_ratio=0.02 / 508,
    hash_cpu_per_mb=0.022,
    state_fit_fraction=1.0,
    parse_cpu_per_mb=0.005,
)

#: Per-user click counting over 256 GB: map fn is so light that sorting is
#: ~48% of map CPU (Table II: 440 s vs 406 s).
PER_USER_COUNT = WorkloadProfile(
    name="per-user-count",
    input_bytes=256 * GB,
    map_cpu_per_mb=0.090,
    sort_cpu_per_mb=0.095,
    combine_cpu_per_mb=0.004,
    map_output_ratio=2.6 / 256,
    reduce_cpu_per_mb=0.020,
    merge_cpu_per_mb=0.010,
    reduce_output_ratio=0.6 / 256,
    hash_cpu_per_mb=0.025,
    state_fit_fraction=1.0,
    parse_cpu_per_mb=0.005,
)

#: Inverted-index construction over 427 GB of documents: map output 150 GB
#: (~0.35× raw; the paper reports intermediate/input 70% counting both map
#: output and reduce spill), heavier reduce (posting-list building).
INVERTED_INDEX = WorkloadProfile(
    name="inverted-index",
    input_bytes=427 * GB,
    map_cpu_per_mb=0.300,
    sort_cpu_per_mb=0.120,
    combine_cpu_per_mb=0.0,
    map_output_ratio=150 / 427,
    reduce_cpu_per_mb=0.450,
    merge_cpu_per_mb=0.010,
    reduce_output_ratio=103 / 427,
    hash_cpu_per_mb=0.040,
    state_fit_fraction=0.0,
    parse_cpu_per_mb=0.005,
)

PAPER_WORKLOADS: dict[str, WorkloadProfile] = {
    w.name: w
    for w in (SESSIONIZATION, PAGE_FREQUENCY, PER_USER_COUNT, INVERTED_INDEX)
}

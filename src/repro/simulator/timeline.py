"""Task-timeline recording: who ran what, when, in which phase.

The paper's Fig. 2(a) and Fig. 3 plot, against time, the number of running
tasks in each of the four operations of a sort-merge job: map, shuffle,
merge and reduce.  Pipelines record task spans into a :class:`TaskLog`;
:meth:`TaskLog.counts_series` bins them into those plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TaskSpan", "TaskLog", "PHASES"]

PHASES = ("map", "shuffle", "merge", "reduce")


@dataclass(frozen=True, slots=True)
class TaskSpan:
    """One task's (or operation's) lifetime."""

    phase: str
    start: float
    end: float
    node: str = ""
    task_id: int = -1


class TaskLog:
    """Accumulates task spans during a simulated run."""

    def __init__(self) -> None:
        self.spans: list[TaskSpan] = []
        self._open: dict[tuple[str, int, str], float] = {}

    # -- recording -----------------------------------------------------------

    def record(self, phase: str, start: float, end: float, *, node: str = "", task_id: int = -1) -> None:
        if end < start:
            raise ValueError("span ends before it starts")
        self.spans.append(TaskSpan(phase, start, end, node, task_id))

    def open(self, phase: str, task_id: int, node: str, now: float) -> None:
        self._open[(phase, task_id, node)] = now

    def close(self, phase: str, task_id: int, node: str, now: float) -> None:
        start = self._open.pop((phase, task_id, node))
        self.record(phase, start, now, node=node, task_id=task_id)

    # -- queries ---------------------------------------------------------------

    def phase_spans(self, phase: str) -> list[TaskSpan]:
        return [s for s in self.spans if s.phase == phase]

    def phase_window(self, phase: str) -> tuple[float, float]:
        """(first start, last end) over the phase's spans."""
        spans = self.phase_spans(phase)
        if not spans:
            raise ValueError(f"no spans for phase {phase!r}")
        return min(s.start for s in spans), max(s.end for s in spans)

    def makespan(self) -> float:
        return max((s.end for s in self.spans), default=0.0)

    def counts_series(
        self, bucket: float, phases: tuple[str, ...] = PHASES
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Bin running-task counts per phase.

        Returns ``(bucket_start_times, {phase: mean running tasks})``; a
        task contributes to a bucket proportionally to its overlap.
        """
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        end = self.makespan()
        n = max(1, int(np.ceil(end / bucket)))
        times = np.arange(n) * bucket
        series = {p: np.zeros(n) for p in phases}
        for span in self.spans:
            if span.phase not in series:
                continue
            arr = series[span.phase]
            first = int(span.start // bucket)
            last = min(int(span.end // bucket), n - 1)
            for b in range(first, last + 1):
                lo = max(span.start, b * bucket)
                hi = min(span.end, (b + 1) * bucket)
                if hi > lo:
                    arr[b] += (hi - lo) / bucket
        return times, series

"""Contended resources: CPUs, disks and NICs with busy-interval tracking.

Each resource is a bank of FCFS servers.  A process yields
:class:`Use`; the request queues, occupies one server for its service
time, then resumes the process.  Every service records a busy interval
``(start, end, stream, nbytes)`` — the raw material for the utilisation,
iowait and bytes-read series of the paper's Fig. 2/3/4.

The disk adds the positioning model that drives the paper's contention
story: consecutive services from *different* streams (a map read vs. a
merge write on the same spindle) pay a seek, so a disk shared by many
activities delivers far less than its sequential bandwidth.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.simulator.events import Simulator

__all__ = ["Interval", "ServiceBank", "CpuBank", "Disk", "Nic", "Use"]


@dataclass(frozen=True, slots=True)
class Interval:
    """One completed service on one server."""

    start: float
    end: float
    stream: str
    nbytes: int = 0
    tag: str = ""


class ServiceBank:
    """``servers`` FCFS servers with a shared queue.

    Subclasses define :meth:`service_time`.  ``submit`` is the low-level
    entry; processes normally go through :class:`Use`.
    """

    def __init__(self, sim: Simulator, name: str, servers: int = 1) -> None:
        if servers < 1:
            raise ValueError("servers must be >= 1")
        self.sim = sim
        self.name = name
        self.servers = servers
        self.busy = 0
        self._queue: deque[tuple[Any, str, str, Callable[[Any], None]]] = deque()
        self.intervals: list[Interval] = []
        self.total_busy_time = 0.0
        self.served = 0

    def service_time(self, amount: Any, stream: str) -> float:
        raise NotImplementedError

    def _bytes_of(self, amount: Any) -> int:
        return 0

    def submit(
        self,
        amount: Any,
        resume: Callable[[Any], None],
        *,
        stream: str = "",
        tag: str = "",
    ) -> None:
        if self.busy < self.servers:
            self._serve(amount, stream, tag, resume)
        else:
            self._queue.append((amount, stream, tag, resume))

    def _serve(
        self, amount: Any, stream: str, tag: str, resume: Callable[[Any], None]
    ) -> None:
        self.busy += 1
        start = self.sim.now
        duration = self.service_time(amount, stream)
        end = start + duration

        def finish() -> None:
            self.busy -= 1
            interval = Interval(
                start=start,
                end=end,
                stream=stream,
                nbytes=self._bytes_of(amount),
                tag=tag,
            )
            self.intervals.append(interval)
            self.total_busy_time += duration
            self.served += 1
            if self._queue:
                self._serve(*self._queue.popleft())
            resume(interval)

        self.sim.at(end, finish)

    @property
    def queue_length(self) -> int:
        return len(self._queue)


class CpuBank(ServiceBank):
    """A node's cores; amounts are CPU-seconds."""

    def service_time(self, amount: Any, stream: str) -> float:
        return float(amount)


class Disk(ServiceBank):
    """One spindle/device; amounts are bytes.

    The positioning model captures why a shared MapReduce disk is "often
    maxed out and subject to random I/Os": a transfer that runs while
    other streams contend for the device (a queue exists, or the previous
    service belonged to a different stream) is served as interleaved
    ``io_chunk``-sized extents, paying one positioning delay per extent.
    A lone sequential stream gets full bandwidth.

    For a 90 MB/s spindle with 12 ms positioning and 1 MB extents, the
    interleaved effective rate is ~43 MB/s — the regime the paper's HDD
    experiments live in — while an SSD (0.1 ms) barely degrades.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        bandwidth: float,
        seek_time: float,
        io_chunk: int = 1024 * 1024,
    ) -> None:
        super().__init__(sim, name, servers=1)
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if io_chunk <= 0:
            raise ValueError("io_chunk must be positive")
        self.bandwidth = bandwidth
        self.seek_time = seek_time
        self.io_chunk = io_chunk
        self._last_stream: str | None = None

    def service_time(self, amount: Any, stream: str) -> float:
        nbytes = float(amount)
        t = nbytes / self.bandwidth
        interleaved = self.queue_length > 0 or stream != self._last_stream
        if interleaved:
            extents = max(1, int(-(-nbytes // self.io_chunk)))
            t += self.seek_time * extents
        self._last_stream = stream
        return t

    def _bytes_of(self, amount: Any) -> int:
        return int(amount)


class Nic(ServiceBank):
    """A node's network interface (one direction); amounts are bytes.

    ``per_message_overhead`` models the fixed cost of each transfer — the
    knob behind MapReduce Online's fine-granularity pipelining penalty.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        *,
        bandwidth: float,
        per_message_overhead: float = 0.0005,
    ) -> None:
        super().__init__(sim, name, servers=1)
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth
        self.per_message_overhead = per_message_overhead

    def service_time(self, amount: Any, stream: str) -> float:
        return float(amount) / self.bandwidth + self.per_message_overhead

    def _bytes_of(self, amount: Any) -> int:
        return int(amount)


class Use:
    """Process request: occupy ``resource`` for ``amount`` of work."""

    __slots__ = ("resource", "amount", "stream", "tag")

    def __init__(
        self, resource: ServiceBank, amount: Any, *, stream: str = "", tag: str = ""
    ) -> None:
        self.resource = resource
        self.amount = amount
        self.stream = stream
        self.tag = tag

    def start(self, sim: Simulator, resume: Callable[[Any], None]) -> None:
        self.resource.submit(self.amount, resume, stream=self.stream, tag=self.tag)

"""A simulated cluster node: cores, devices and network interfaces."""

from __future__ import annotations

from repro.simulator.calibration import ClusterSpec
from repro.simulator.events import Simulator
from repro.simulator.resources import CpuBank, Disk, Nic

__all__ = ["SimNode"]


class SimNode:
    """One machine of the simulated cluster.

    ``hdfs_disk`` serves HDFS block reads and job-output writes;
    ``intermediate_disk`` receives map output, shuffle spill and merge
    traffic.  In the default architecture both names point at the same
    spindle (the paper's contention case); with an SSD they differ.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        spec: ClusterSpec,
        *,
        is_compute: bool = True,
        is_storage: bool = True,
    ) -> None:
        self.sim = sim
        self.name = name
        self.spec = spec
        self.is_compute = is_compute
        self.is_storage = is_storage
        self.cpu = CpuBank(sim, f"{name}.cpu", servers=spec.cores_per_node)
        self.hdd = Disk(
            sim,
            f"{name}.hdd",
            bandwidth=spec.hdd_bandwidth,
            seek_time=spec.hdd_seek,
        )
        self.ssd: Disk | None = None
        if spec.with_ssd and is_compute:
            self.ssd = Disk(
                sim,
                f"{name}.ssd",
                bandwidth=spec.ssd_bandwidth,
                seek_time=spec.ssd_seek,
            )
        self.nic_in = Nic(sim, f"{name}.nic_in", bandwidth=spec.net_bandwidth)
        self.nic_out = Nic(sim, f"{name}.nic_out", bandwidth=spec.net_bandwidth)

    @property
    def hdfs_disk(self) -> Disk:
        return self.hdd

    @property
    def intermediate_disk(self) -> Disk:
        return self.ssd if self.ssd is not None else self.hdd

    def disks(self) -> list[Disk]:
        return [self.hdd] + ([self.ssd] if self.ssd is not None else [])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimNode({self.name!r})"

"""Execution-pipeline models: Hadoop sort-merge, MapReduce Online, one-pass.

Each pipeline spawns the same cast of processes over a
:class:`~repro.simulator.cluster.SimCluster` — per-node map workers bound
by map slots, per-reducer ingest processes fed through mailboxes, and a
completion choreography — but differs in exactly the ways the paper
describes:

* :class:`HadoopPipeline` — map sorts its whole output and writes it
  synchronously; reducers pull after map completion, spill sorted runs,
  background-merge at factor F, and **block** on the multi-pass + final
  merge before any reduce work.
* :class:`HOPPipeline` — map pushes sorted mini-chunks as it goes (paying
  per-message network overhead), part of the sort CPU moves to reducers,
  and periodic snapshots re-merge everything received so far.  The
  sort-merge core and its blocking merge remain.
* :class:`OnePassPipeline` — the paper's hash engine: no sort anywhere,
  push shuffle, reduce-side states updated on arrival; disk traffic only
  for the state fraction that does not fit in memory.

Time-series, task timelines and byte totals come out in a
:class:`~repro.simulator.tasks.SimRunResult`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Generator

from repro.simulator.calibration import ClusterSpec, WorkloadProfile
from repro.simulator.cluster import SimCluster
from repro.simulator.events import Gate, Mailbox, Simulator, Timeout
from repro.simulator.node import SimNode
from repro.simulator.resources import Use
from repro.simulator.tasks import (
    SimRunResult,
    SimTotals,
    mb,
    metric_bundle,
    read_block,
    write_remote,
)
from repro.simulator.timeline import TaskLog

__all__ = ["HOPSimConfig", "HadoopPipeline", "HOPPipeline", "OnePassPipeline"]

Proc = Generator[Any, Any, None]


@dataclass(frozen=True, slots=True)
class HOPSimConfig:
    """MapReduce Online knobs for the simulated pipeline."""

    granularity_bytes: int = 1 * 1024 * 1024
    snapshot_fractions: tuple[float, ...] = (0.25, 0.5, 0.75)
    #: Share of the sort CPU that moves from mappers to reducers ("this
    #: prototype moves some of the sorting work to reducers").
    resort_shift: float = 0.3


class _BasePipeline:
    """Cluster construction, map scheduling and result assembly."""

    engine = "base"

    def __init__(
        self,
        spec: ClusterSpec,
        profile: WorkloadProfile,
        *,
        metric_bucket: float = 10.0,
    ) -> None:
        self.spec = spec
        self.profile = profile
        self.metric_bucket = metric_bucket
        self.sim = Simulator()
        self.cluster = SimCluster(self.sim, spec)
        self.log = TaskLog()
        self.totals = SimTotals()
        self.maps_done = Gate("maps-done")
        self.shuffle_done = Gate("shuffle-done")
        self.n_blocks = max(1, -(-profile.input_bytes // spec.block_bytes))
        self.block_bytes = profile.input_bytes / self.n_blocks
        self.map_out_per_block = self.block_bytes * profile.map_output_ratio
        self.completed_maps = 0
        self._pending_transfers = 0
        self._mailboxes: list[Mailbox] = []
        self._rr = 0

    def _next_reducer(self) -> int:
        """Round-robin reducer selection for transfer-granular delivery."""
        idx = self._rr % self.spec.reducers
        self._rr += 1
        return idx

    # -- placement ---------------------------------------------------------

    def _block_plan(self) -> dict[SimNode, deque[tuple[int, SimNode]]]:
        """Per-compute-node queue of (block id, storage node)."""
        compute = self.cluster.compute_nodes
        plan: dict[SimNode, deque[tuple[int, SimNode]]] = {
            n: deque() for n in compute
        }
        for b in range(self.n_blocks):
            storage = self.cluster.storage_node_for_block(b)
            runner = storage if storage.is_compute else compute[b % len(compute)]
            plan[runner].append((b, storage))
        return plan

    # -- shuffle plumbing ------------------------------------------------------

    def _start_transfer(
        self, mapper: SimNode, target: SimNode, nbytes: float, mailbox: Mailbox
    ) -> None:
        """Move one output unit from a mapper to one reducer's mailbox.

        Outputs are delivered to reducers round-robin at transfer
        granularity; aggregate per-reducer volumes match the hash
        partitioner's even split while keeping the event count linear in
        the number of transfers rather than transfers × reducers.
        """
        self._pending_transfers += 1
        sim = self.sim

        def proc() -> Proc:
            start = sim.now
            if target is not mapper:
                yield Use(mapper.nic_out, nbytes, stream=f"shuffle-{mapper.name}")
                yield Use(target.nic_in, nbytes, stream=f"shuffle-in-{target.name}")
            else:
                # Local segment: no network, a short copy.
                yield Timeout(0.0)
            self.log.record("shuffle", start, sim.now, node=mapper.name)
            self.totals.shuffle_bytes += nbytes
            self.totals.network_messages += 1
            mailbox.put(nbytes)
            self._pending_transfers -= 1
            self._maybe_close_shuffle()

        sim.spawn(proc())

    def _maybe_close_shuffle(self) -> None:
        if self.maps_done.fired and self._pending_transfers == 0:
            for box in self._mailboxes:
                if not box.closed:
                    box.close()
            self.shuffle_done.fire()

    def _map_completed(self) -> None:
        self.completed_maps += 1
        if self.completed_maps == self.n_blocks:
            self.maps_done.fire()
            self._maybe_close_shuffle()

    # -- results -----------------------------------------------------------------

    def _result(self, extras: dict[str, Any] | None = None) -> SimRunResult:
        horizon = max(self.sim.now, self.metric_bucket)
        series = metric_bundle(self.cluster.compute_nodes, horizon, self.metric_bucket)
        return SimRunResult(
            engine=self.engine,
            workload=self.profile.name,
            spec=self.spec,
            profile=self.profile,
            makespan=self.sim.now,
            task_log=self.log,
            series=series,
            totals=self.totals,
            extras=extras or {},
        )


class _SortMergeReducer:
    """Reduce-side state shared by the Hadoop and HOP pipelines."""

    def __init__(
        self,
        pipeline: _BasePipeline,
        index: int,
        node: SimNode,
        *,
        extra_ingest_cpu_per_mb: float = 0.0,
    ) -> None:
        self.p = pipeline
        self.index = index
        self.node = node
        self.extra_ingest_cpu_per_mb = extra_ingest_cpu_per_mb
        self.mailbox = Mailbox(f"reduce-{index}")
        pipeline._mailboxes.append(self.mailbox)
        self.mem_bytes = 0.0
        self.runs: list[float] = []
        self.received = 0.0
        # Stagger spill thresholds (0.75x..1.25x of the buffer) so the
        # fleet's reducers do not spill and merge in lock-step — real
        # clusters desynchronise through shuffle timing noise.
        r = max(1, pipeline.spec.reducers - 1)
        self.spill_threshold = pipeline.spec.reduce_buffer_bytes * (
            0.75 + 0.5 * index / r
        )

    # -- helpers ------------------------------------------------------------

    def _spill(self) -> Proc:
        nbytes = self.mem_bytes
        self.mem_bytes = 0.0
        yield Use(
            self.node.intermediate_disk,
            nbytes,
            stream=f"rspill-{self.index}",
            tag="write",
        )
        self.runs.append(nbytes)
        self.p.totals.reduce_spill_bytes += nbytes

    def _merge_pass(self) -> Proc:
        p = self.p
        self.runs.sort()
        fan_in = min(p.spec.merge_factor, len(self.runs))
        victims, self.runs = self.runs[:fan_in], self.runs[fan_in:]
        total = sum(victims)
        start = p.sim.now
        yield Use(
            self.node.intermediate_disk,
            total,
            stream=f"merge-r-{self.index}",
            tag="read",
        )
        yield Use(
            self.node.cpu,
            p.profile.merge_cpu_per_mb * mb(total),
            stream=f"merge-{self.index}",
        )
        yield Use(
            self.node.intermediate_disk,
            total,
            stream=f"merge-w-{self.index}",
            tag="write",
        )
        self.runs.append(total)
        p.totals.merge_read_bytes += total
        p.totals.merge_write_bytes += total
        p.totals.merge_passes += 1
        p.log.record("merge", start, p.sim.now, node=self.node.name, task_id=self.index)

    def ingest_loop(self) -> Proc:
        """Receive segments until the shuffle closes; spill and merge."""
        p = self.p
        while True:
            item = yield self.mailbox.get()
            if item is None:
                break
            nbytes = float(item)
            self.received += nbytes
            self.mem_bytes += nbytes
            if self.extra_ingest_cpu_per_mb > 0:
                yield Use(
                    self.node.cpu,
                    self.extra_ingest_cpu_per_mb * mb(nbytes),
                    stream=f"resort-{self.index}",
                )
            if self.mem_bytes >= self.spill_threshold:
                yield from self._spill()
            # Hadoop's background merge: trigger at 2F-1 on-disk files,
            # merge the F smallest, leave F-1 — rewrite stays ~linear.
            if len(self.runs) >= 2 * p.spec.merge_factor - 1:
                yield from self._merge_pass()

    def finale(self) -> Proc:
        """Blocking multi-pass merge, then the final scan + reduce + write."""
        p = self.p
        if self.runs and self.mem_bytes > 0:
            yield from self._spill()
        while len(self.runs) > p.spec.merge_factor:
            yield from self._merge_pass()
        start = p.sim.now
        on_disk = sum(self.runs)
        if on_disk > 0:
            yield Use(
                self.node.intermediate_disk,
                on_disk,
                stream=f"final-{self.index}",
                tag="read",
            )
            p.totals.merge_read_bytes += on_disk
        data = self.received
        yield Use(
            self.node.cpu,
            (p.profile.merge_cpu_per_mb + p.profile.reduce_cpu_per_mb) * mb(data),
            stream=f"reduce-{self.index}",
        )
        out_bytes = (
            p.profile.input_bytes * p.profile.reduce_output_ratio / p.spec.reducers
        )
        storage = p.cluster.storage_node_for_block(self.index)
        yield from write_remote(
            self.node, storage, out_bytes, p.totals, stream=f"out-{self.index}"
        )
        p.totals.output_bytes += out_bytes
        p.log.record("reduce", start, p.sim.now, node=self.node.name, task_id=self.index)


class HadoopPipeline(_BasePipeline):
    """Stock Hadoop: sorted map output, pull shuffle, blocking merge."""

    engine = "hadoop"

    def _map_task(self, task_id: int, node: SimNode, storage: SimNode) -> Proc:
        p = self.profile
        start = self.sim.now
        yield from read_block(
            node, storage, self.block_bytes, self.totals, stream=f"map-in-{node.name}"
        )
        out_bytes = self.map_out_per_block
        cpu = (
            (p.parse_cpu_per_mb + p.map_cpu_per_mb) * mb(self.block_bytes)
            + (p.sort_cpu_per_mb + p.combine_cpu_per_mb) * mb(self.block_bytes * _presort_ratio(p))
        )
        yield Use(node.cpu, cpu, stream=f"map-{node.name}")
        # Synchronous map-output write (fault tolerance), §III.B.2.
        yield Use(
            node.intermediate_disk,
            out_bytes,
            stream=f"mapout-{node.name}",
            tag="write",
        )
        self.totals.map_output_bytes += out_bytes
        self.log.record("map", start, self.sim.now, node=node.name, task_id=task_id)
        reducer = self._reducers[self._next_reducer()]
        self._start_transfer(node, reducer.node, out_bytes, reducer.mailbox)
        self._map_completed()

    def _map_worker(self, node: SimNode, queue: deque[tuple[int, SimNode]]) -> Proc:
        while queue:
            task_id, storage = queue.popleft()
            yield from self._map_task(task_id, node, storage)

    def _reducer_proc(self, reducer: _SortMergeReducer) -> Proc:
        yield from reducer.ingest_loop()
        yield self.shuffle_done.wait()
        yield from reducer.finale()

    def run(self) -> SimRunResult:
        plan = self._block_plan()
        self._reducers = [
            _SortMergeReducer(self, i, self.cluster.reducer_node(i))
            for i in range(self.spec.reducers)
        ]
        for node, queue in plan.items():
            for _slot in range(self.spec.map_slots):
                self.sim.spawn(self._map_worker(node, queue))
        for reducer in self._reducers:
            self.sim.spawn(self._reducer_proc(reducer))
        self.sim.run()
        return self._result()


def _presort_ratio(p: WorkloadProfile) -> float:
    """Bytes sorted per input byte: map output *before* the combiner.

    The combiner shrinks what is written/shuffled, but the sort happens
    first, over the raw map output.  For combiner workloads the raw output
    is roughly input-sized (one small pair per record); without a combiner
    it equals the final map-output ratio.
    """
    if p.combine_cpu_per_mb > 0:
        return 1.0
    return p.map_output_ratio


class HOPPipeline(_BasePipeline):
    """MapReduce Online: pipelined push, snapshots, same sort-merge core."""

    engine = "hop"

    def __init__(
        self,
        spec: ClusterSpec,
        profile: WorkloadProfile,
        *,
        hop: HOPSimConfig | None = None,
        metric_bucket: float = 10.0,
    ) -> None:
        super().__init__(spec, profile, metric_bucket=metric_bucket)
        self.hop = hop or HOPSimConfig()
        self._next_snapshot = 0
        self.snapshots_taken: list[tuple[float, float]] = []  # (fraction, time)

    def _map_task(self, task_id: int, node: SimNode, storage: SimNode) -> Proc:
        p = self.profile
        hop = self.hop
        start = self.sim.now
        yield from read_block(
            node, storage, self.block_bytes, self.totals, stream=f"map-in-{node.name}"
        )
        out_bytes = self.map_out_per_block
        n_chunks = max(1, int(out_bytes // hop.granularity_bytes))
        chunk_bytes = out_bytes / n_chunks
        mapper_sort = p.sort_cpu_per_mb * (1.0 - hop.resort_shift)
        cpu_per_chunk = (
            (p.parse_cpu_per_mb + p.map_cpu_per_mb) * mb(self.block_bytes / n_chunks)
            + (mapper_sort + p.combine_cpu_per_mb)
            * mb(self.block_bytes * _presort_ratio(p) / n_chunks)
        )
        for _chunk in range(n_chunks):
            yield Use(node.cpu, cpu_per_chunk, stream=f"map-{node.name}")
            reducer = self._reducers[self._next_reducer()]
            self._start_transfer(node, reducer.node, chunk_bytes, reducer.mailbox)
        self.totals.map_output_bytes += out_bytes
        self.log.record("map", start, self.sim.now, node=node.name, task_id=task_id)
        self._map_completed()
        self._maybe_snapshot()

    def _maybe_snapshot(self) -> None:
        fractions = self.hop.snapshot_fractions
        while (
            self._next_snapshot < len(fractions)
            and self.completed_maps >= fractions[self._next_snapshot] * self.n_blocks
        ):
            fraction = fractions[self._next_snapshot]
            self._next_snapshot += 1
            self.snapshots_taken.append((fraction, self.sim.now))
            for reducer in self._reducers:
                self.sim.spawn(self._snapshot_proc(reducer, fraction))

    def _snapshot_proc(self, reducer: "_SortMergeReducer", fraction: float) -> Proc:
        """Re-merge everything received so far and apply the reduce fn.

        "This is done by repeating the merge operation for each snapshot
        ... and may incur a significant I/O overhead in doing so."
        """
        p = self.profile
        start = self.sim.now
        on_disk = sum(reducer.runs)
        if on_disk > 0:
            yield Use(
                reducer.node.intermediate_disk,
                on_disk,
                stream=f"snap-{reducer.index}",
                tag="read",
            )
            self.totals.snapshot_read_bytes += on_disk
        data = reducer.received
        yield Use(
            reducer.node.cpu,
            (p.merge_cpu_per_mb + p.reduce_cpu_per_mb) * mb(data),
            stream=f"snap-{reducer.index}",
        )
        self.log.record(
            "merge", start, self.sim.now, node=reducer.node.name, task_id=reducer.index
        )

    def _map_worker(self, node: SimNode, queue: deque[tuple[int, SimNode]]) -> Proc:
        while queue:
            task_id, storage = queue.popleft()
            yield from self._map_task(task_id, node, storage)

    def _reducer_proc(self, reducer: "_SortMergeReducer") -> Proc:
        yield from reducer.ingest_loop()
        yield self.shuffle_done.wait()
        yield from reducer.finale()

    def run(self) -> SimRunResult:
        plan = self._block_plan()
        resort_cpu = self.profile.sort_cpu_per_mb * self.hop.resort_shift
        self._reducers = [
            _SortMergeReducer(
                self,
                i,
                self.cluster.reducer_node(i),
                extra_ingest_cpu_per_mb=resort_cpu,
            )
            for i in range(self.spec.reducers)
        ]
        for node, queue in plan.items():
            for _slot in range(self.spec.map_slots):
                self.sim.spawn(self._map_worker(node, queue))
        for reducer in self._reducers:
            self.sim.spawn(self._reducer_proc(reducer))
        self.sim.run()
        return self._result(
            extras={"snapshots": list(self.snapshots_taken)}
        )


class OnePassPipeline(_BasePipeline):
    """The paper's hash-based engine at cluster scale."""

    engine = "onepass"

    #: Push chunk size: coarse enough that per-message overhead is noise.
    chunk_bytes = 4 * 1024 * 1024

    def __init__(
        self,
        spec: ClusterSpec,
        profile: WorkloadProfile,
        *,
        metric_bucket: float = 10.0,
    ) -> None:
        super().__init__(spec, profile, metric_bucket=metric_bucket)
        self._received: dict[int, float] = {}
        self._spilled: dict[int, float] = {}

    def _map_task(self, task_id: int, node: SimNode, storage: SimNode) -> Proc:
        p = self.profile
        start = self.sim.now
        yield from read_block(
            node, storage, self.block_bytes, self.totals, stream=f"map-in-{node.name}"
        )
        out_bytes = self.map_out_per_block
        # No sorting: parse + map fn + hash partitioning/aggregation.
        cpu = (p.parse_cpu_per_mb + p.map_cpu_per_mb) * mb(self.block_bytes) + (
            p.hash_cpu_per_mb * mb(self.block_bytes * _presort_ratio(p))
        )
        yield Use(node.cpu, cpu, stream=f"map-{node.name}")
        self.totals.map_output_bytes += out_bytes
        self.log.record("map", start, self.sim.now, node=node.name, task_id=task_id)
        n_chunks = max(1, int(out_bytes // self.chunk_bytes))
        chunk = out_bytes / n_chunks
        for _c in range(n_chunks):
            idx = self._next_reducer()
            self._start_transfer(
                node, self._reducer_nodes[idx], chunk, self._reducer_boxes[idx]
            )
        self._map_completed()

    def _map_worker(self, node: SimNode, queue: deque[tuple[int, SimNode]]) -> Proc:
        while queue:
            task_id, storage = queue.popleft()
            yield from self._map_task(task_id, node, storage)

    def _reducer_proc(self, index: int, node: SimNode, box: Mailbox) -> Proc:
        p = self.profile
        spec = self.spec
        received = 0.0
        spilled = 0.0
        spill_fraction = 1.0 - p.state_fit_fraction
        while True:
            item = yield box.get()
            if item is None:
                break
            nbytes = float(item)
            received += nbytes
            # Incremental hash update on arrival.
            yield Use(node.cpu, p.hash_cpu_per_mb * mb(nbytes), stream=f"hash-{index}")
            overflow = nbytes * spill_fraction
            if overflow > 0:
                yield Use(
                    node.intermediate_disk,
                    overflow,
                    stream=f"ospill-{index}",
                    tag="write",
                )
                spilled += overflow
                self.totals.reduce_spill_bytes += overflow
        yield self.shuffle_done.wait()
        # Finalisation: one read of any spilled state, the reduce/finalize
        # CPU, and the output write.  No multi-pass merge exists.
        start = self.sim.now
        if spilled > 0:
            yield Use(
                node.intermediate_disk, spilled, stream=f"ofin-{index}", tag="read"
            )
        yield Use(node.cpu, p.reduce_cpu_per_mb * mb(received), stream=f"fin-{index}")
        out_bytes = p.input_bytes * p.reduce_output_ratio / spec.reducers
        storage = self.cluster.storage_node_for_block(index)
        yield from write_remote(node, storage, out_bytes, self.totals, stream=f"out-{index}")
        self.totals.output_bytes += out_bytes
        self.log.record("reduce", start, self.sim.now, node=node.name, task_id=index)
        self._received[index] = received
        self._spilled[index] = spilled

    def run(self) -> SimRunResult:
        plan = self._block_plan()
        self._reducer_boxes: list[Mailbox] = []
        self._reducer_nodes: list[SimNode] = []
        for i in range(self.spec.reducers):
            box = Mailbox(f"op-reduce-{i}")
            self._mailboxes.append(box)
            self._reducer_boxes.append(box)
            self._reducer_nodes.append(self.cluster.reducer_node(i))
        for node, queue in plan.items():
            for _slot in range(self.spec.map_slots):
                self.sim.spawn(self._map_worker(node, queue))
        for i, (node, box) in enumerate(zip(self._reducer_nodes, self._reducer_boxes)):
            self.sim.spawn(self._reducer_proc(i, node, box))
        self.sim.run()
        return self._result(
            extras={"received": dict(self._received), "spilled": dict(self._spilled)}
        )

"""Memory-accounted hash tables and a pairwise-independent hash family.

The paper's prototype ships a "hash function library [that] provides a set
of pair-wise independent hash functions" and key data structures with
explicit memory management.  In Python we keep the standard dict as the
backing store but track an explicit byte budget per table
(:class:`AccountedStateTable`), because every technique in
:mod:`repro.core` — hybrid hash, incremental hash, the hot-key cache — is
parameterised by "does the state fit in memory".

:class:`HashFamily` provides seeded, pairwise-independent multiply-shift
hashes used for bucket assignment in hybrid hash, so recursive partitioning
levels use *different* hash functions (a requirement of the algorithm: a
bucket hashed with the same function would not split further).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.core.aggregates import AggregateState, Aggregator
from repro.io.serialization import estimate_size
from repro.mapreduce.partition import stable_hash

__all__ = ["HashFamily", "AccountedStateTable"]

_MERSENNE_PRIME = (1 << 61) - 1


class HashFamily:
    """Seeded pairwise-independent hash functions ``h(x) = (a*x + b) mod p``.

    ``member(i)`` returns the i-th function of the family; distinct members
    are suitable for distinct recursion levels of hybrid hash.
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int = 0x9E3779B9) -> None:
        self.seed = seed & 0xFFFFFFFF

    def member(self, index: int) -> Callable[[Any], int]:
        if index < 0:
            raise ValueError("index must be non-negative")
        # Derive (a, b) deterministically from the seed and index via
        # splitmix-style mixing; a must be non-zero mod p.
        a = _mix64(self.seed * 0x100000001B3 + index * 2 + 1)
        b = _mix64(self.seed ^ (index * 0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9))
        a = (a % (_MERSENNE_PRIME - 1)) + 1
        b = b % _MERSENNE_PRIME

        def h(key: Any, _a: int = a, _b: int = b) -> int:
            x = stable_hash(key)
            return (_a * x + _b) % _MERSENNE_PRIME

        return h


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: strong avalanche for seed derivation."""
    x &= 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class AccountedStateTable:
    """``key -> AggregateState`` with running byte accounting.

    ``update`` folds one value into the key's state, creating it on first
    touch.  State growth is re-measured on every update for linear states
    (collect/session) and skipped for ``__slots__`` constant-size states by
    trusting their ``size_bytes``; either way :attr:`used_bytes` tracks the
    table's footprint closely enough to enforce a budget.
    """

    __slots__ = ("aggregator", "_states", "_key_bytes", "_state_bytes", "probes")

    def __init__(self, aggregator: Aggregator) -> None:
        self.aggregator = aggregator
        self._states: dict[Any, AggregateState] = {}
        self._key_bytes = 0
        self._state_bytes = 0
        self.probes = 0

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, key: Any) -> bool:
        return key in self._states

    @property
    def used_bytes(self) -> int:
        # dict slot overhead ~104 bytes/entry amortised
        return self._key_bytes + self._state_bytes + 104 * len(self._states)

    def update(self, key: Any, value: Any) -> AggregateState:
        """Fold ``value`` into ``key``'s state; returns the state."""
        self.probes += 1
        state = self._states.get(key)
        if state is None:
            state = self.aggregator.initial()
            self._states[key] = state
            self._key_bytes += estimate_size(key)
            before = 0
        else:
            before = state.size_bytes()
        state.update(value)
        self._state_bytes += state.size_bytes() - before
        return state

    def update_batch(self, pairs: Iterable[tuple[Any, Any]]) -> None:
        """Fold many raw values; totals identical to per-pair :meth:`update`.

        The hot loop hoists every attribute lookup and defers the byte and
        probe accounting to batch totals — the per-pair state math is
        unchanged, so ``used_bytes`` and ``probes`` end at exactly the
        values the per-pair path produces.
        """
        states = self._states
        initial = self.aggregator.initial
        estimate = estimate_size
        key_bytes = 0
        state_bytes = 0
        n = 0
        for key, value in pairs:
            n += 1
            state = states.get(key)
            if state is None:
                state = initial()
                states[key] = state
                key_bytes += estimate(key)
                before = 0
            else:
                before = state.size_bytes()
            state.update(value)
            state_bytes += state.size_bytes() - before
        self._key_bytes += key_bytes
        self._state_bytes += state_bytes
        self.probes += n

    def merge_state(self, key: Any, other: AggregateState) -> AggregateState:
        """Fold a partial state for ``key`` into the table."""
        self.probes += 1
        state = self._states.get(key)
        if state is None:
            state = self.aggregator.initial()
            self._states[key] = state
            self._key_bytes += estimate_size(key)
            before = 0
        else:
            before = state.size_bytes()
        state.merge(other)
        self._state_bytes += state.size_bytes() - before
        return state

    def get(self, key: Any) -> AggregateState | None:
        return self._states.get(key)

    def pop(self, key: Any) -> AggregateState:
        """Remove and return ``key``'s state, releasing its budget."""
        state = self._states.pop(key)
        self._key_bytes -= estimate_size(key)
        self._state_bytes -= state.size_bytes()
        return state

    def items(self) -> Iterator[tuple[Any, AggregateState]]:
        return iter(self._states.items())

    def results(self) -> Iterator[tuple[Any, Any]]:
        """``(key, state.result())`` for every key (unspecified order)."""
        for key, state in self._states.items():
            yield key, state.result()

    def clear(self) -> None:
        self._states.clear()
        self._key_bytes = 0
        self._state_bytes = 0

"""Online frequent-items: the Space-Saving algorithm.

The paper's technique (3) "borrow[s] an existing online frequent algorithm
to identify hot keys, and keep[s] hot keys in memory".  Space-Saving
(Metwally, Agrawal, El Abbadi 2005) is the canonical such algorithm: it
maintains at most ``capacity`` counters; an untracked arrival replaces the
minimum counter, inheriting its count as over-estimation error.

Guarantees used by the hot-set cache and verified by the property tests:

* every key with true frequency > N / capacity is tracked;
* for a tracked key, ``estimate - error <= true count <= estimate``;
* the sum of all stored counts equals the number of offers ``N``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Hashable, Iterable

__all__ = ["TrackedKey", "SpaceSaving"]


@dataclass(frozen=True, slots=True)
class TrackedKey:
    """One monitored key with its estimated count and max over-estimation."""

    key: Any
    count: int
    error: int

    @property
    def guaranteed(self) -> int:
        """A lower bound on the key's true count."""
        return self.count - self.error


class SpaceSaving:
    """Fixed-capacity frequent-items sketch over a key stream."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._counts: dict[Any, int] = {}
        self._errors: dict[Any, int] = {}
        # Min-heap of (count, seq, key) with lazy invalidation: an entry is
        # stale when its count no longer matches _counts[key].
        self._heap: list[tuple[int, int, Any]] = []
        self._seq = 0
        self.total = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts

    def _push(self, key: Any, count: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (count, self._seq, key))
        # Compact lazily so the heap stays O(capacity).
        if len(self._heap) > 8 * self.capacity:
            self._heap = [
                (c, 0, k) for k, c in self._counts.items()
            ]
            heapq.heapify(self._heap)

    def _pop_min(self) -> tuple[Any, int]:
        """Remove and return the currently minimal (key, count)."""
        while self._heap:
            count, _seq, key = heapq.heappop(self._heap)
            if self._counts.get(key) == count:
                return key, count
        raise RuntimeError("heap/table desynchronised")  # pragma: no cover

    def offer(self, key: Hashable, count: int = 1) -> Any | None:
        """Observe ``count`` occurrences of ``key``.

        Returns the key that was evicted to make room, or ``None``.  The
        offered key is always tracked afterwards.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        self.total += count
        current = self._counts.get(key)
        if current is not None:
            new = current + count
            self._counts[key] = new
            self._push(key, new)
            return None
        if len(self._counts) < self.capacity:
            self._counts[key] = count
            self._errors[key] = 0
            self._push(key, count)
            return None
        victim, victim_count = self._pop_min()
        del self._counts[victim]
        del self._errors[victim]
        self.evictions += 1
        new = victim_count + count
        self._counts[key] = new
        self._errors[key] = victim_count
        self._push(key, new)
        return victim

    # -- queries ---------------------------------------------------------------

    def estimate(self, key: Hashable) -> TrackedKey | None:
        """The tracked entry for ``key``, or ``None`` if untracked."""
        count = self._counts.get(key)
        if count is None:
            return None
        return TrackedKey(key=key, count=count, error=self._errors[key])

    def entries(self) -> list[TrackedKey]:
        """All tracked entries, most frequent first."""
        items = [
            TrackedKey(key=k, count=c, error=self._errors[k])
            for k, c in self._counts.items()
        ]
        items.sort(key=lambda t: (-t.count, t.error))
        return items

    def top(self, k: int) -> list[TrackedKey]:
        """The ``k`` entries with the highest estimated counts."""
        return self.entries()[:k]

    def guaranteed_top(self, k: int) -> list[TrackedKey]:
        """Entries *provably* in the stream's top-``k``.

        An entry is guaranteed when its lower bound (count - error) is at
        least the estimated count of the (k+1)-th entry.
        """
        entries = self.entries()
        if len(entries) <= k:
            return [e for e in entries if e.error == 0] or entries
        cutoff = entries[k].count
        return [e for e in entries[:k] if e.guaranteed >= cutoff]

    def heavy_hitters(self, phi: float) -> list[TrackedKey]:
        """Entries whose guaranteed count exceeds ``phi * total``."""
        if not 0 < phi < 1:
            raise ValueError("phi must lie in (0, 1)")
        threshold = phi * self.total
        return [e for e in self.entries() if e.guaranteed > threshold]

    def offer_all(self, keys: Iterable[Hashable]) -> None:
        for key in keys:
            self.offer(key)

"""Map-side output handling without sorting.

The paper's map module offers two options to replace Hadoop's sort:

1. **Scan-only partitioning** (no combine function): "the map output is
   scanned once for partitioning, and no effort is spent for grouping."
   :class:`ScanPartitionBuffer` appends each pair to its reducer's buffer
   and pushes a chunk downstream when the buffer fills.
2. **Map-side hybrid hash** (combine function present): pairs aggregate
   into per-partition in-memory hash tables ("in most cases the map output
   fits in memory so Hybrid Hash is simply in-memory hashing"); when the
   task's memory budget fills, each table's partial *states* are flushed
   downstream and the tables reset.  Downstream consumers fold the states
   via ``AggregateState.merge``.

Neither option ever compares keys for order — the CPU the baseline spends
in Table II's "Sorting" row simply does not exist on this path.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.core.aggregates import Aggregator
from repro.core.hash_tables import AccountedStateTable
from repro.core.hybrid_hash import SpilledState
from repro.io.serialization import estimate_size
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.partition import Partitioner, hash_partitioner

__all__ = ["ScanPartitionBuffer", "MapSideHashCombiner"]

#: Called with (partition, pairs, approx_bytes) whenever a chunk is ready.
ChunkSink = Callable[[int, list[tuple[Any, Any]], int], None]

_PAIR_OVERHEAD = 32


class ScanPartitionBuffer:
    """Option 1: partition map output in one scan, no grouping, no sort."""

    def __init__(
        self,
        num_partitions: int,
        sink: ChunkSink,
        *,
        buffer_bytes: int = 4 * 1024 * 1024,
        partitioner: Partitioner = hash_partitioner,
        counters: Counters | None = None,
    ) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self.sink = sink
        self.buffer_bytes = buffer_bytes
        self.partitioner = partitioner
        self.counters = counters if counters is not None else Counters()
        self._buffers: list[list[tuple[Any, Any]]] = [
            [] for _ in range(num_partitions)
        ]
        self._bytes = [0] * num_partitions

    def add(self, key: Any, value: Any) -> None:
        partition = self.partitioner(key, self.num_partitions)
        self._buffers[partition].append((key, value))
        self._bytes[partition] += (
            estimate_size(key) + estimate_size(value) + _PAIR_OVERHEAD
        )
        self.counters.inc(C.MAP_OUTPUT_RECORDS)
        if self._bytes[partition] >= self.buffer_bytes:
            self._flush(partition)

    def add_batch(self, pairs: list[tuple[Any, Any]]) -> None:
        """Partition many pairs; identical chunks to per-pair :meth:`add`.

        The flush threshold is still checked after every pair, so chunk
        boundaries (and hence pushed-chunk contents) match the tuple path
        exactly — only the per-pair attribute lookups are hoisted.
        """
        partitioner = self.partitioner
        num_partitions = self.num_partitions
        buffers = self._buffers
        sizes = self._bytes
        budget = self.buffer_bytes
        flush = self._flush
        n = 0
        for key, value in pairs:
            n += 1
            partition = partitioner(key, num_partitions)
            buffers[partition].append((key, value))
            sizes[partition] += (
                estimate_size(key) + estimate_size(value) + _PAIR_OVERHEAD
            )
            if sizes[partition] >= budget:
                flush(partition)
        self.counters.inc(C.MAP_OUTPUT_RECORDS, n)

    def _flush(self, partition: int) -> None:
        pairs = self._buffers[partition]
        if not pairs:
            return
        nbytes = self._bytes[partition]
        self._buffers[partition] = []
        self._bytes[partition] = 0
        self.sink(partition, pairs, nbytes)

    def finish(self) -> None:
        for partition in range(self.num_partitions):
            self._flush(partition)


class MapSideHashCombiner:
    """Option 2: per-partition in-memory hash aggregation (Hybrid Hash).

    The flush unit is the whole task (all partitions) because the memory
    budget is shared; each flush emits ``(key, SpilledState)`` pairs that
    the reducer merges, so the algebra works for any aggregator.
    """

    def __init__(
        self,
        num_partitions: int,
        aggregator: Aggregator,
        sink: ChunkSink,
        *,
        memory_bytes: int = 8 * 1024 * 1024,
        partitioner: Partitioner = hash_partitioner,
        counters: Counters | None = None,
    ) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        self.num_partitions = num_partitions
        self.aggregator = aggregator
        self.sink = sink
        self.memory_bytes = memory_bytes
        self.partitioner = partitioner
        self.counters = counters if counters is not None else Counters()
        self._tables = [AccountedStateTable(aggregator) for _ in range(num_partitions)]
        self.flushes = 0

    @property
    def used_bytes(self) -> int:
        return sum(t.used_bytes for t in self._tables)

    def add(self, key: Any, value: Any) -> None:
        partition = self.partitioner(key, self.num_partitions)
        self._tables[partition].update(key, value)
        self.counters.inc(C.MAP_OUTPUT_RECORDS)
        if self.used_bytes >= self.memory_bytes:
            self.flush()

    def add_batch(self, pairs: list[tuple[Any, Any]]) -> None:
        """Aggregate many pairs; identical flushes to per-pair :meth:`add`.

        The shared-budget check still runs after every pair (a flush must
        trigger at the same pair as the tuple path); the win is hoisting
        the partitioner and table lookups out of the dispatch.
        """
        partitioner = self.partitioner
        num_partitions = self.num_partitions
        tables = self._tables
        memory = self.memory_bytes
        n = 0
        for key, value in pairs:
            n += 1
            tables[partitioner(key, num_partitions)].update(key, value)
            if self.used_bytes >= memory:
                self.flush()
        self.counters.inc(C.MAP_OUTPUT_RECORDS, n)

    def flush(self) -> None:
        """Emit every partition's partial states downstream and reset."""
        any_emitted = False
        for partition, table in enumerate(self._tables):
            if len(table) == 0:
                continue
            pairs = [
                (key, SpilledState(state)) for key, state in table.items()
            ]
            nbytes = table.used_bytes
            table.clear()
            self.sink(partition, pairs, nbytes)
            self.counters.inc(C.COMBINE_OUTPUT_RECORDS, len(pairs))
            any_emitted = True
        if any_emitted:
            self.flushes += 1

    def finish(self) -> None:
        self.flush()


def iter_states(pairs: list[tuple[Any, Any]]) -> Iterator[tuple[Any, Any]]:
    """Unwrap ``SpilledState`` values for callers that want raw results."""
    for key, value in pairs:
        yield key, value.state.result() if isinstance(value, SpilledState) else value

"""Hot-key incremental hash: technique (3) of the paper's reduce module.

When memory cannot hold the states of *all* keys, the paper proposes to
"borrow an existing online frequent algorithm to identify hot keys, and
keep hot keys in memory ... maintaining hot keys instead of random keys in
memory results in less I/Os.  Moreover, hot keys are typically of greater
importance to the users.  This technique can return (approximate) results
for these keys as early as when all the input data has arrived."

:class:`HotSetIncrementalHash` implements exactly that:

* a :class:`~repro.core.frequent.SpaceSaving` sketch watches the key stream;
* at most ``capacity`` keys hold in-memory aggregate states;
* pairs for cold keys are spilled raw to hashed disk partitions;
* the resident set refreshes periodically against the sketch's current
  top-``capacity``, spilling evicted states (not their raw history);
* :meth:`approximate_results` returns the hot keys' running answers with
  the sketch's per-key error bounds — available with **zero additional
  I/O** the moment the input ends;
* :meth:`results` produces exact answers for *every* key by replaying the
  cold spills through hybrid hash and merging with the resident states.

Because constant-size states dominate spill entries only for cold keys,
skewed key distributions (the interesting case for "important groups")
cut reduce-side spill I/O by orders of magnitude relative to sort-merge's
write-everything-then-merge behaviour — the paper's headline §V claim.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.aggregates import Aggregator
from repro.core.frequent import SpaceSaving, TrackedKey
from repro.core.hash_tables import AccountedStateTable, HashFamily
from repro.core.hybrid_hash import HybridHashGrouper, SpilledState
from repro.io.disk import LocalDisk
from repro.io.runio import RunWriter, stream_run
from repro.mapreduce.counters import C, Counters

__all__ = ["ApproximateResult", "HotSetIncrementalHash"]


class ApproximateResult:
    """A hot key's early answer plus its frequency bounds from the sketch."""

    __slots__ = ("key", "result", "count_estimate", "count_error")

    def __init__(self, key: Any, result: Any, tracked: TrackedKey | None) -> None:
        self.key = key
        self.result = result
        self.count_estimate = tracked.count if tracked else 0
        self.count_error = tracked.error if tracked else 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ApproximateResult({self.key!r}, {self.result!r}, "
            f"count<= {self.count_estimate}, err<= {self.count_error})"
        )


class HotSetIncrementalHash:
    """Incremental hash with a frequency-managed resident set."""

    def __init__(
        self,
        aggregator: Aggregator,
        disk: LocalDisk,
        namespace: str,
        *,
        capacity: int,
        monitor_capacity: int | None = None,
        refresh_interval: int | None = None,
        spill_partitions: int = 8,
        counters: Counters | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.aggregator = aggregator
        self.disk = disk
        self.namespace = namespace.rstrip("/")
        self.capacity = capacity
        self.sketch = SpaceSaving(monitor_capacity or 4 * capacity)
        # Refresh seldom enough that resident-set churn stays a small
        # fraction of the stream; each refresh can evict O(capacity) states.
        self.refresh_interval = refresh_interval or max(2048, 4 * capacity)
        self.spill_partitions = spill_partitions
        self.counters = counters if counters is not None else Counters()
        self._table = AccountedStateTable(aggregator)
        self._hash = HashFamily(seed=0x5EED).member(0)
        self._writers: list[RunWriter | None] = [None] * spill_partitions
        self._since_refresh = 0
        self._finished = False
        self.updates = 0

    # -- ingestion -----------------------------------------------------------

    @property
    def resident_keys(self) -> int:
        return len(self._table)

    @property
    def spilled_bytes(self) -> int:
        return sum(w.bytes_written for w in self._writers if w is not None)

    @property
    def spilled_records(self) -> int:
        """Pairs written cold so far (live; bytes settle only on flush)."""
        return sum(w.records_written for w in self._writers if w is not None)

    def update(self, key: Any, value: Any) -> None:
        """Observe one pair: aggregate in memory if hot, else spill raw."""
        if self._finished:
            raise RuntimeError("hot-set hash already finished")
        self.updates += 1
        self.sketch.offer(key)
        if key in self._table or len(self._table) < self.capacity:
            if isinstance(value, SpilledState):
                self._table.merge_state(key, value.state)
            else:
                self._table.update(key, value)
            self.counters.inc(C.HOT_HITS)
        else:
            self._spill_pair(key, value)
            self.counters.inc(C.HOT_MISSES)
        self._since_refresh += 1
        if self._since_refresh >= self.refresh_interval:
            self._refresh()

    def _spill_pair(self, key: Any, value: Any) -> None:
        bucket = self._hash(key) % self.spill_partitions
        writer = self._writers[bucket]
        if writer is None:
            writer = RunWriter(self.disk, f"{self.namespace}/cold-b{bucket:03d}")
            self._writers[bucket] = writer
        writer.write((key, value))

    def _refresh(self) -> None:
        """Realign the resident set with the sketch's current top keys.

        Evicted states are spilled *as states*, so an evicted key's history
        costs one constant-size entry rather than its full raw pair list.
        """
        self._since_refresh = 0
        hot = {t.key for t in self.sketch.top(self.capacity)}
        resident = {key for key, _ in self._table.items()}
        # Eviction (and hence spill) order must not depend on the
        # process hash seed; repr-keyed sort handles mixed key types.
        for key in sorted(resident - hot, key=repr):
            state = self._table.pop(key)
            self._spill_pair(key, SpilledState(state))
            self.counters.inc(C.HOT_EVICTIONS)
        # Newly hot keys start their state on their next arrival; their
        # prior history already lives in the cold spills.

    # -- early (approximate) answers ------------------------------------------

    def approximate_results(self) -> Iterator[ApproximateResult]:
        """Hot keys' running answers, with sketch error bounds; no I/O.

        A hot key's aggregate may miss the pairs that arrived before the
        key entered the resident set (those are in the cold spills), so the
        value is a lower bound for monotone aggregates like counts.
        """
        for key, state in self._table.items():
            yield ApproximateResult(key, state.result(), self.sketch.estimate(key))

    # -- exact finalisation --------------------------------------------------------

    def results(self, *, finish_memory_bytes: int | None = None) -> Iterator[tuple[Any, Any]]:
        """Exact answers for all keys: replay cold spills and merge.

        Resident states are injected into a hybrid-hash pass over the cold
        partitions, so a key split between memory and disk reunites.
        """
        if self._finished:
            raise RuntimeError("hot-set hash already finished")
        self._finished = True
        self.counters.set_max(C.HASH_STATE_BYTES_PEAK, self._table.used_bytes)
        self.counters.inc(C.HASH_PROBES, self._table.probes)
        budget = finish_memory_bytes or max(self._table.used_bytes, 1 << 16)

        cold_paths: list[str] = []
        for writer in self._writers:
            if writer is not None:
                writer.close()
                self.counters.inc(C.REDUCE_SPILL_BYTES, writer.bytes_written)
                self.counters.inc(C.REDUCE_SPILLS)
                cold_paths.append(writer.path)

        if not cold_paths:
            yield from self._table.results()
            self._table.clear()
            return

        grouper = HybridHashGrouper(
            self.disk,
            f"{self.namespace}/finish",
            budget,
            aggregator=self.aggregator,
            spill_partitions=self.spill_partitions,
            counters=self.counters,
        )
        for key, state in self._table.items():
            grouper.add(key, SpilledState(state))
        self._table.clear()
        for path in cold_paths:
            for key, value in stream_run(self.disk, path):
                grouper.add(key, value)
            self.disk.delete(path)
        yield from grouper.finish()

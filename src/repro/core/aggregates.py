"""Aggregate states for incremental (one-pass) processing.

The paper's incremental hash technique "maintains a state for each key, and
updates it incrementally"; its memory argument rests on the observation
that "the size of a state is usually sublinear in the number of values
aggregated".  This module supplies that state abstraction:

* :class:`AggregateState` — update / merge / result / size protocol;
* constant-size states (:class:`CountState`, :class:`SumState`,
  :class:`AvgState`, :class:`MinState`, :class:`MaxState`,
  :class:`SumCountState`);
* bounded states (:class:`TopKState`);
* linear states (:class:`CollectState`, :class:`SessionState`) for tasks
  like sessionization whose reduce function genuinely needs all values.

States must satisfy the combiner algebra: ``merge`` is commutative and
associative, and interleaving ``update``/``merge`` in any order over the
same multiset of values yields the same ``result()``.  The property-based
tests exercise exactly that invariant.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generic, Iterable, Protocol, TypeVar

from repro.io.serialization import estimate_size

__all__ = [
    "AggregateState",
    "Aggregator",
    "CountState",
    "SumState",
    "SumCountState",
    "AvgState",
    "MinState",
    "MaxState",
    "TopKState",
    "TopByCountState",
    "CollectState",
    "SessionState",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
    "COLLECT",
    "top_k",
    "top_by_count",
    "sessionize",
    "fold",
]

T = TypeVar("T")


class AggregateState(Protocol):
    """One key's running aggregate."""

    def update(self, value: Any) -> None:
        """Fold one new value into the state."""
        ...

    def merge(self, other: "AggregateState") -> None:
        """Fold another state for the same key into this one."""
        ...

    def result(self) -> Any:
        """The current (possibly early) answer for this key."""
        ...

    def size_bytes(self) -> int:
        """Approximate in-memory footprint, for memory budgeting."""
        ...


class Aggregator(Generic[T]):
    """Factory bundling a state constructor with a descriptive name."""

    def __init__(self, name: str, make: Callable[[], AggregateState]) -> None:
        self.name = name
        self._make = make

    def initial(self) -> AggregateState:
        return self._make()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Aggregator({self.name!r})"


class CountState:
    """COUNT(*): one integer."""

    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def update(self, value: Any) -> None:
        self.n += 1

    def merge(self, other: "CountState") -> None:
        self.n += other.n

    def result(self) -> int:
        return self.n

    def size_bytes(self) -> int:
        return 64


class SumState:
    """SUM(value): one accumulator.

    For counting jobs whose map emits ``(key, 1)`` and whose combiner emits
    partial counts, SUM is the right reduce-side state (each incoming value
    may itself be a partial sum).
    """

    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total = 0

    def update(self, value: Any) -> None:
        self.total += value

    def merge(self, other: "SumState") -> None:
        self.total += other.total

    def result(self) -> Any:
        return self.total

    def size_bytes(self) -> int:
        return 64


class SumCountState:
    """(sum, count) pair — the building block of AVG."""

    __slots__ = ("total", "n")

    def __init__(self) -> None:
        self.total = 0
        self.n = 0

    def update(self, value: Any) -> None:
        self.total += value
        self.n += 1

    def merge(self, other: "SumCountState") -> None:
        self.total += other.total
        self.n += other.n

    def result(self) -> tuple[Any, int]:
        return (self.total, self.n)

    def size_bytes(self) -> int:
        return 96


class AvgState(SumCountState):
    """AVG(value); ``result`` is the running mean."""

    __slots__ = ()

    def result(self) -> float:
        if self.n == 0:
            raise ValueError("average of empty state")
        return self.total / self.n


class MinState:
    """MIN(value)."""

    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def update(self, value: Any) -> None:
        if self.best is None or value < self.best:
            self.best = value

    def merge(self, other: "MinState") -> None:
        if other.best is not None:
            self.update(other.best)

    def result(self) -> Any:
        if self.best is None:
            raise ValueError("min of empty state")
        return self.best

    def size_bytes(self) -> int:
        return 64 + (estimate_size(self.best) if self.best is not None else 0)


class MaxState:
    """MAX(value)."""

    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def update(self, value: Any) -> None:
        if self.best is None or value > self.best:
            self.best = value

    def merge(self, other: "MaxState") -> None:
        if other.best is not None:
            self.update(other.best)

    def result(self) -> Any:
        if self.best is None:
            raise ValueError("max of empty state")
        return self.best

    def size_bytes(self) -> int:
        return 64 + (estimate_size(self.best) if self.best is not None else 0)


class TopKState:
    """Largest ``k`` values (a bounded state; §IV's open question of
    combiners for complex tasks like top-k has a clean answer for
    per-key top-k: a size-k heap merges associatively)."""

    __slots__ = ("k", "_heap")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._heap: list[Any] = []

    def update(self, value: Any) -> None:
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, value)
        elif value > self._heap[0]:
            heapq.heapreplace(self._heap, value)

    def merge(self, other: "TopKState") -> None:
        for value in other._heap:
            self.update(value)

    def result(self) -> list[Any]:
        return sorted(self._heap, reverse=True)

    def size_bytes(self) -> int:
        return 64 + 32 * len(self._heap)


class TopByCountState:
    """Most-frequent ``k`` values of a key (a nested group-by count).

    This is the combiner the paper's §IV.3 open question asks about for
    top-k queries: the state is a value→count table, which merges
    associatively (counter addition), and ``result()`` ranks by count with
    a deterministic tiebreak.  Memory is linear in the key's *distinct*
    values, not its occurrences.
    """

    __slots__ = ("k", "counts", "_bytes")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.counts: dict[Any, int] = {}
        self._bytes = 64

    def update(self, value: Any) -> None:
        if value not in self.counts:
            self._bytes += estimate_size(value) + 64
            self.counts[value] = 1
        else:
            self.counts[value] += 1

    def merge(self, other: "TopByCountState") -> None:
        for value, count in other.counts.items():
            if value not in self.counts:
                self._bytes += estimate_size(value) + 64
                self.counts[value] = count
            else:
                self.counts[value] += count

    def result(self) -> list[tuple[Any, int]]:
        ranked = sorted(self.counts.items(), key=lambda vc: (-vc[1], repr(vc[0])))
        return ranked[: self.k]

    def size_bytes(self) -> int:
        return self._bytes


class CollectState:
    """Collect every value — a linear-size state.

    Needed when the reduce function is holistic (sessionization, inverted
    index posting lists).  Its footprint grows with the data, which is what
    makes memory management interesting for these workloads.
    """

    __slots__ = ("values", "_bytes")

    def __init__(self) -> None:
        self.values: list[Any] = []
        self._bytes = 64

    def update(self, value: Any) -> None:
        self.values.append(value)
        self._bytes += estimate_size(value) + 8

    def merge(self, other: "CollectState") -> None:
        self.values.extend(other.values)
        self._bytes += other._bytes - 64

    def result(self) -> list[Any]:
        return list(self.values)

    def size_bytes(self) -> int:
        return self._bytes


class SessionState(CollectState):
    """Collects ``(timestamp, payload)`` clicks; ``result`` returns sessions.

    A session is a maximal run of clicks (ordered by timestamp) with
    inter-click gaps below ``gap``.  The final sort makes this state
    holistic, but it still merges associatively because ``result`` sorts.
    """

    __slots__ = ("gap",)

    def __init__(self, gap: float = 1800.0) -> None:
        super().__init__()
        if gap <= 0:
            raise ValueError("session gap must be positive")
        self.gap = gap

    def result(self) -> list[list[Any]]:
        if not self.values:
            return []
        ordered = sorted(self.values, key=lambda click: click[0])
        sessions: list[list[Any]] = [[ordered[0]]]
        for click in ordered[1:]:
            if click[0] - sessions[-1][-1][0] > self.gap:
                sessions.append([click])
            else:
                sessions[-1].append(click)
        return sessions


# -- ready-made aggregators ---------------------------------------------------

COUNT: Aggregator[int] = Aggregator("count", CountState)
SUM: Aggregator[Any] = Aggregator("sum", SumState)
AVG: Aggregator[float] = Aggregator("avg", AvgState)
MIN: Aggregator[Any] = Aggregator("min", MinState)
MAX: Aggregator[Any] = Aggregator("max", MaxState)
COLLECT: Aggregator[list] = Aggregator("collect", CollectState)


def top_k(k: int) -> Aggregator[list]:
    """Aggregator producing each key's ``k`` largest values."""
    return Aggregator(f"top{k}", lambda: TopKState(k))


def top_by_count(k: int) -> Aggregator[list]:
    """Aggregator producing each key's ``k`` most frequent values."""
    return Aggregator(f"topcount{k}", lambda: TopByCountState(k))


def sessionize(gap: float = 1800.0) -> Aggregator[list]:
    """Aggregator producing each user's click sessions (gap in seconds)."""
    return Aggregator(f"session(gap={gap:g})", lambda: SessionState(gap))


def fold(aggregator: Aggregator, values: Iterable[Any]) -> Any:
    """Convenience: run ``values`` through a fresh state and return result."""
    state = aggregator.initial()
    for value in values:
        state.update(value)
    return state.result()

"""The one-pass analytics engine — the platform sketched in §V of the paper.

The engine keeps the MapReduce programming model but replaces every
sort-merge component with hash-based ones:

* map side: scan-only partitioning, or in-memory hash aggregation when the
  job has a combiner algebra (an :class:`~repro.core.aggregates.Aggregator`);
* shuffle: push-based — mappers deliver chunks to reducers as they are
  produced (Table III's "Push / Pull" row);
* reduce side, by :attr:`OnePassConfig.mode`:

  - ``"hybrid"``       — hybrid hash grouping (blocking; baseline),
  - ``"incremental"``  — per-key states updated on arrival, early emission,
  - ``"hotset"``       — incremental + Space-Saving hot-key cache when
    memory is smaller than the total state size.

Jobs with no aggregator (holistic reduces such as sessionization) run the
grouping path: hybrid hash collects each key's values without ever sorting,
then the reduce function is applied per group.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.core.aggregates import COLLECT, Aggregator
from repro.core.hotset import ApproximateResult, HotSetIncrementalHash
from repro.core.hybrid_hash import HybridHashGrouper
from repro.core.incremental import EmitPolicy, IncrementalHash
from repro.core.partitioner import MapSideHashCombiner, ScanPartitionBuffer
from repro.exec import resolve_executor
from repro.hdfs.filesystem import InputSplit
from repro.io.disk import LocalDisk
from repro.mapreduce.api import ReduceFn
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.faults import FaultPlan
from repro.mapreduce.journal import (
    K_CHECKPOINT,
    K_JOB_SPEC,
    K_MAP_COMMIT,
    K_OUTPUT_COMMIT,
    K_REDUCE_COMMIT,
    K_SHUFFLE_COMMIT,
    K_TASK_GRANT,
    NULL_JOURNAL,
    emit_committed_output,
    job_fingerprint,
    output_digest,
)
from repro.mapreduce.recovery import (
    CheckpointStore,
    PartitionLog,
    RecoveryManager,
    SpeculationPolicy,
)
from repro.mapreduce.runtime import JobResult, LocalCluster
from repro.mapreduce.scheduler import WaveScheduler
from repro.obs.log import get_logger
from repro.obs.tracer import NULL_TRACER, byte_cost

__all__ = [
    "OnePassConfig",
    "OnePassJob",
    "OnePassReduceTask",
    "OnePassEngine",
    "execute_onepass_map",
]

FinalizeFn = Callable[[Any, Any], Iterable[Any]]

_MODES = ("hybrid", "incremental", "hotset")


@dataclass(slots=True)
class OnePassConfig:
    """Tuning knobs of the one-pass engine."""

    num_reducers: int = 2
    map_buffer_bytes: int = 2 * 1024 * 1024
    map_memory_bytes: int = 8 * 1024 * 1024
    reduce_memory_bytes: int = 64 * 1024 * 1024
    mode: str = "incremental"
    hotset_capacity: int = 1024
    spill_partitions: int = 8
    map_side_combine: bool = True
    #: Batch kernel path: map output and pushed chunks are folded through
    #: the hoisted ``add_batch``/``update_batch`` loops (see
    #: docs/PERFORMANCE.md).  Byte-identical output; CPU cost only.
    batch: bool = False

    def __post_init__(self) -> None:
        if self.num_reducers < 1:
            raise ValueError("num_reducers must be >= 1")
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.hotset_capacity < 1:
            raise ValueError("hotset_capacity must be >= 1")
        for name in ("map_buffer_bytes", "map_memory_bytes", "reduce_memory_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(slots=True)
class OnePassJob:
    """A job for the one-pass engine.

    Exactly one of two shapes:

    * **aggregate job** — ``aggregator`` set: the reduce is the aggregate's
      algebra; ``finalize(key, result)`` (default: yield ``(key, result)``)
      shapes output records.  Supports incremental/hotset modes and early
      emission via ``emit_policy``.
    * **grouping job** — ``reduce_fn`` set: each key's collected values are
      passed to the reduce function, as in classic MapReduce.  Runs on the
      (blocking) hybrid-hash path; no sorting anywhere.
    """

    name: str
    map_fn: Callable[[Any], Iterable[tuple[Any, Any]]]
    aggregator: Aggregator | None = None
    reduce_fn: ReduceFn | None = None
    finalize: FinalizeFn | None = None
    emit_policy: EmitPolicy | None = None
    config: OnePassConfig = field(default_factory=OnePassConfig)
    input_path: str = ""
    output_path: str = ""

    def __post_init__(self) -> None:
        if (self.aggregator is None) == (self.reduce_fn is None):
            raise ValueError("set exactly one of aggregator / reduce_fn")
        if self.reduce_fn is not None and self.config.mode != "hybrid":
            # Holistic jobs cannot run incrementally; fall back silently is
            # worse than being explicit.
            raise ValueError(
                "grouping jobs (reduce_fn) require mode='hybrid'; "
                f"got mode={self.config.mode!r}"
            )
        if self.emit_policy is not None and self.aggregator is None:
            raise ValueError("emit_policy requires an aggregator")

    @property
    def is_aggregate(self) -> bool:
        return self.aggregator is not None


class OnePassReduceTask:
    """One reduce partition's hash backend, fed by pushed chunks."""

    def __init__(
        self,
        job: OnePassJob,
        partition: int,
        node: str,
        disk: LocalDisk,
        *,
        tracer: Any = NULL_TRACER,
    ) -> None:
        self.job = job
        self.partition = partition
        self.node = node
        self.disk = disk
        self.counters = Counters()
        self.tracer = tracer
        self._task = f"reduce:{partition:03d}"
        #: Chunks 1..restored_through are already covered by a restored
        #: journal checkpoint; :meth:`accept` drops them on re-delivery.
        self.restored_through = 0
        self._chunks_seen = 0
        cfg = job.config
        namespace = f"onepass/{partition:03d}"
        self._incremental: IncrementalHash | None = None
        self._hotset: HotSetIncrementalHash | None = None
        self._grouper: HybridHashGrouper | None = None
        if job.is_aggregate and cfg.mode == "incremental":
            self._incremental = IncrementalHash(
                job.aggregator,
                memory_bytes=cfg.reduce_memory_bytes,
                disk=disk,
                namespace=namespace,
                emit_policy=job.emit_policy,
                counters=self.counters,
            )
        elif job.is_aggregate and cfg.mode == "hotset":
            self._hotset = HotSetIncrementalHash(
                job.aggregator,
                disk,
                namespace,
                capacity=cfg.hotset_capacity,
                spill_partitions=cfg.spill_partitions,
                counters=self.counters,
            )
        else:
            self._grouper = HybridHashGrouper(
                disk,
                namespace,
                cfg.reduce_memory_bytes,
                aggregator=job.aggregator or COLLECT,
                spill_partitions=cfg.spill_partitions,
                counters=self.counters,
            )

    # -- ingestion (push target) ----------------------------------------------

    def accept(self, pairs: list[tuple[Any, Any]], nbytes: int) -> bool:
        """Absorb one pushed chunk; False when a restored checkpoint covers it."""
        self._chunks_seen += 1
        if self._chunks_seen <= self.restored_through:
            return False
        counters = self.counters
        counters.inc(C.SHUFFLE_BYTES, nbytes)
        counters.inc(C.REDUCE_INPUT_RECORDS, len(pairs))
        trc = self.tracer
        backend = self._incremental or self._hotset or self._grouper
        spill0 = backend.spilled_records if trc.enabled else 0
        perf = time.perf_counter
        t0 = perf()
        batch = self.job.config.batch
        if self._incremental is not None:
            if batch:
                self._incremental.update_batch(pairs)
            else:
                update = self._incremental.update
                for key, value in pairs:
                    update(key, value)
        elif self._hotset is not None:
            # Tuple fallback: hot-set cache admission/eviction decisions are
            # inherently per-pair, so there is no batch variant to take.
            update = self._hotset.update
            for key, value in pairs:
                update(key, value)
        else:
            assert self._grouper is not None
            if batch:
                self._grouper.add_batch(pairs)
            else:
                add = self._grouper.add
                for key, value in pairs:
                    add(key, value)
        counters.inc(C.T_HASH, perf() - t0)
        if trc.enabled:
            # Spill bytes settle only when writers close, so the live
            # observable is the backends' spilled-pair count.
            spilled = backend.spilled_records - spill0
            if spilled > 0:
                # The hash backend spilled pairs to disk while absorbing
                # this chunk — surface it as a spill span so hash-table
                # spills line up with sort-merge ones.
                c0 = trc.clock
                trc.event(
                    "hash.spill", "spill", node=self.node, task=self._task
                )
                trc.add_span(
                    "spill",
                    "spill",
                    c0,
                    c0 + spilled,
                    node=self.node,
                    task=self._task,
                    records=spilled,
                )
        return True

    # -- early answers -----------------------------------------------------------

    @property
    def early_emitted(self) -> list[tuple[Any, Any]]:
        if self._incremental is not None:
            return self._incremental.early_emitted
        return []

    def approximate_results(self) -> list[ApproximateResult]:
        if self._hotset is not None:
            return list(self._hotset.approximate_results())
        return []

    # -- finish ---------------------------------------------------------------------

    def finish(self) -> list[Any]:
        """Drain the backend and produce this partition's output records."""
        counters = self.counters
        counters.inc(C.REDUCE_TASKS)
        job = self.job
        output: list[Any] = []
        groups = 0
        backend = self._incremental or self._hotset
        if backend is not None:
            self.tracer.metrics.gauge("hash.resident.keys").record(
                self.tracer.clock, backend.resident_keys
            )
        with self.tracer.span(
            "reduce", "reduce", node=self.node, task=self._task
        ) as reduce_span:
            if job.is_aggregate:
                finalize = job.finalize or _default_finalize
                for key, result in self._aggregate_results():
                    groups += 1
                    output.extend(finalize(key, result))
            else:
                assert self._grouper is not None and job.reduce_fn is not None
                perf = time.perf_counter
                t_reduce = 0.0
                for key, values in self._grouper.finish():
                    groups += 1
                    t0 = perf()
                    output.extend(job.reduce_fn(key, iter(values)))
                    t_reduce += perf() - t0
                counters.inc(C.T_REDUCE_FN, t_reduce)
            reduce_span.set_cost(max(1, groups))
            reduce_span.set(groups=groups, out_records=len(output))
        counters.inc(C.REDUCE_INPUT_GROUPS, groups)
        counters.inc(C.REDUCE_OUTPUT_RECORDS, len(output))
        return output

    def _aggregate_results(self) -> Iterator[tuple[Any, Any]]:
        if self._incremental is not None:
            return self._incremental.results()
        if self._hotset is not None:
            return self._hotset.results()
        assert self._grouper is not None
        return self._grouper.finish()

    # -- checkpointing --------------------------------------------------------------

    def checkpoint_payload(self) -> bytes | None:
        """Snapshot the reduce state, if this backend supports it.

        Only the incremental-hash backend is checkpointable (its state is
        one in-memory table); hotset and hybrid-hash backends return
        ``None`` and recover by full log replay instead.
        """
        if self._incremental is None:
            return None
        return self._incremental.checkpoint_payload()

    def restore_payload(self, payload: bytes) -> None:
        """Load a checkpoint produced by :meth:`checkpoint_payload`."""
        assert self._incremental is not None
        self._incremental.restore_payload(payload)


def _default_finalize(key: Any, result: Any) -> Iterable[Any]:
    yield (key, result)


def execute_onepass_map(
    job: OnePassJob,
    codec: Any,
    data: bytes,
    sink: Callable[[int, list[tuple[Any, Any]], int], None],
    *,
    tracer: Any = NULL_TRACER,
    task_id: int = 0,
    node: str = "",
) -> Counters:
    """One map task's pure body: decode, map, partition/combine into ``sink``.

    This is the worker-side half of the one-pass map task (the
    ``onepass_map`` kernel): no disk or HDFS access, no engine state — its
    only effect is the ordered stream of chunks pushed through ``sink``.
    Returns the task's counters for the coordinator to merge.
    """
    from repro.exec.kernels import timed_decode

    cfg = job.config
    task_counters = Counters()
    task_counters.inc(C.MAP_TASKS)
    records = timed_decode(codec, data, task_counters)
    task_counters.inc(C.MAP_INPUT_BYTES, len(data))

    if job.is_aggregate and cfg.map_side_combine:
        buffer: Any = MapSideHashCombiner(
            cfg.num_reducers,
            job.aggregator,
            sink,
            memory_bytes=cfg.map_memory_bytes,
            counters=task_counters,
        )
    else:
        buffer = ScanPartitionBuffer(
            cfg.num_reducers,
            sink,
            buffer_bytes=cfg.map_buffer_bytes,
            counters=task_counters,
        )

    map_fn = job.map_fn
    perf = time.perf_counter
    t_map_fn = 0.0
    t_hash = 0.0
    n_in = 0
    use_batch = cfg.batch
    with tracer.span(
        "map", "map", node=node, task=f"map:{task_id:05d}"
    ) as map_span:
        for record in records:
            n_in += 1
            t0 = perf()
            emitted = list(map_fn(record))
            t1 = perf()
            if use_batch:
                buffer.add_batch(emitted)
            else:
                for key, value in emitted:
                    buffer.add(key, value)
            t_hash += perf() - t1
            t_map_fn += t1 - t0
        t0 = perf()
        buffer.finish()
        t_hash += perf() - t0
        map_span.set_cost(max(1, n_in))
        map_span.set(records=n_in, bytes=len(data))
    task_counters.inc(C.MAP_INPUT_RECORDS, n_in)
    task_counters.inc(C.T_MAP_FN, t_map_fn)
    task_counters.inc(C.T_HASH, t_hash)
    return task_counters


class OnePassEngine:
    """Runs :class:`OnePassJob` programs over a :class:`LocalCluster`.

    With a ``fault_plan``, map output is *staged* per task and delivered to
    reducers only when the task completes; a killed attempt's staged chunks
    are discarded and the task re-runs on another node.  This is the
    fault-tolerance overhead the paper alludes to when it excludes infinite
    streams: push-based pipelining and recoverability pull in opposite
    directions, and recovery costs one task's worth of buffering latency.

    Because pushed output never stays at the mappers, reduce-side recovery
    needs its own durability: with a fault plan, every delivered chunk is
    also appended to a 2-way replicated :class:`PartitionLog` (real,
    accounted disk I/O — the overhead ``bench_fault_overhead`` measures).
    A lost reduce task — killed attempt or node crash — is rebuilt by
    replaying its partition's log in delivery order, which reproduces the
    exact pre-failure state (and output byte-for-byte).  With
    ``checkpoint_interval > 0`` the incremental-hash state is additionally
    snapshotted into a :class:`CheckpointStore` every that-many chunks, so
    recovery restores the newest checkpoint and replays only the log
    suffix past it.
    """

    name = "onepass"

    def __init__(
        self,
        cluster: LocalCluster,
        *,
        map_slots: int = 2,
        fault_plan: FaultPlan | None = None,
        checkpoint_interval: int = 0,
        speculation: SpeculationPolicy | None = None,
        executor: Any = None,
        tracer: Any = None,
        journal: Any = None,
    ) -> None:
        if checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be >= 0")
        self.cluster = cluster
        self.scheduler = WaveScheduler(cluster.compute_node_names, map_slots=map_slots)
        self.fault_plan = fault_plan
        self.checkpoint_interval = checkpoint_interval
        self.speculation = speculation
        self.executor = resolve_executor(executor)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.journal = journal if journal is not None else NULL_JOURNAL

    def _read_block(self, split: InputSplit, node: str) -> tuple[bytes, bool]:
        hdfs = self.cluster.hdfs
        local = node in split.preferred_nodes
        data = hdfs.read_block_bytes(split.block_id, from_node=node if local else None)
        return data, local

    def _run_map_with_retries(
        self,
        job: OnePassJob,
        recovery: RecoveryManager,
        session: Any,
        assignment: Any,
        live: list[str],
        deliver: Any,
        counters: Counters,
    ) -> int:
        """Run one map task under a fault plan, staging output until success.

        Attempt semantics live in the shared
        :class:`~repro.mapreduce.recovery.RecoveryManager` loop — the same
        one the Hadoop engine uses — so who is charged, where retries land
        and when the job aborts cannot drift between engines.
        """
        from repro.exec.kernels import OnePassMapSpec

        network_bytes = 0
        self.journal.append(
            K_TASK_GRANT, task=assignment.task_id, node=assignment.node
        )

        def attempt(node: str) -> list[tuple[int, list, int]]:
            nonlocal network_bytes
            data, local = self._read_block(assignment.split, node)
            if not local:
                network_bytes += len(data)
            res = session.run_one(
                "onepass_map", OnePassMapSpec(assignment.task_id, node, data)
            )
            counters.merge(res.counters)
            self.tracer.absorb(res.trace)
            return res.staged

        def discard(_node: str, staged: list[tuple[int, list, int]]) -> None:
            # A dead or losing attempt's staged output is simply dropped —
            # nothing reached the reducers.
            staged.clear()

        node, staged = recovery.run_map_task(
            assignment.task_id,
            assignment.node,
            live,
            assignment.split.nbytes,
            attempt,
            discard,
        )
        for partition, pairs, nbytes in staged:
            counters.inc(C.STAGED_OUTPUT_BYTES, nbytes)
            deliver(partition, pairs, nbytes, assignment.task_id)
        self.journal.append(
            K_MAP_COMMIT,
            task=assignment.task_id,
            node=node,
            nbytes=sum(nbytes for _, _, nbytes in staged),
        )
        return network_bytes

    # -- reduce-side durability -----------------------------------------------

    def _log_replicas(self, node: str) -> list[tuple[str, LocalDisk]]:
        """Replica disks for a reducer's log: its own node plus the next."""
        names = self.cluster.compute_node_names
        chosen = [node]
        if len(names) > 1:
            chosen.append(names[(names.index(node) + 1) % len(names)])
        return [(n, self.cluster.nodes[n].intermediate_disk) for n in chosen]

    def _save_checkpoint(
        self,
        rtask: OnePassReduceTask,
        log: PartitionLog,
        store: CheckpointStore,
    ) -> bool:
        payload = rtask.checkpoint_payload()
        if payload is None:
            return False
        store.save(log.last_seq, payload)
        self.journal.append(
            K_CHECKPOINT, partition=rtask.partition, seq=log.last_seq, payload=payload
        )
        self.tracer.event(
            "checkpoint.saved",
            "checkpoint",
            node=rtask.node,
            task=f"reduce:{rtask.partition:03d}",
            seq=log.last_seq,
            bytes=len(payload),
        )
        return True

    def _rebuild_reduce_task(
        self,
        job: OnePassJob,
        partition: int,
        node: str,
        log: PartitionLog,
        store: CheckpointStore,
        counters: Counters,
    ) -> OnePassReduceTask:
        """Reconstruct a lost reduce task on ``node``.

        Restores the newest surviving checkpoint (if any) and replays the
        delivery log past it, in sequence order — which reproduces the
        exact pre-failure state, early emissions included.  Without a
        checkpoint the whole log replays.
        """
        disk = self.cluster.nodes[node].intermediate_disk
        disk.delete_prefix(f"onepass/{partition:03d}")
        rtask = OnePassReduceTask(job, partition, node, disk, tracer=self.tracer)
        after_seq = 0
        checkpoint = store.latest()
        if checkpoint is not None:
            after_seq, payload = checkpoint
            rtask.restore_payload(payload)
            counters.inc(C.CHECKPOINT_RESTORES)
            self.tracer.event(
                "checkpoint.restored",
                "recovery",
                node=node,
                task=f"reduce:{partition:03d}",
                seq=after_seq,
            )
        replayed = 0
        nbytes_replayed = 0
        with self.tracer.span(
            "replay", "recovery", node=node, task=f"reduce:{partition:03d}"
        ) as replay_span:
            for _seq, pairs, nbytes in log.replay(after_seq):
                rtask.accept(pairs, nbytes)
                replayed += len(pairs)
                nbytes_replayed += nbytes
                counters.inc(C.REPLAYED_RECORDS, len(pairs))
                counters.inc(C.BYTES_RESHUFFLED, nbytes)
            replay_span.set_cost(max(1, byte_cost(nbytes_replayed)))
            replay_span.set(records=replayed, bytes=nbytes_replayed)
        return rtask

    def _handle_node_crash(
        self,
        crashed: str,
        *,
        job: OnePassJob,
        live: list[str],
        reducer_nodes: dict[int, str],
        reduce_tasks: dict[int, OnePassReduceTask],
        logs: dict[int, PartitionLog],
        checkpoints: dict[int, CheckpointStore],
        counters: Counters,
    ) -> None:
        """React to losing a whole node mid-job.

        Completed map output was already delivered and logged, so no map
        re-executes; the node's reduce tasks rebuild on survivors from
        checkpoint + log replay, and its log/checkpoint replicas re-home.
        """
        counters.inc(C.NODE_CRASHES)
        self.tracer.event("node.crash", "recovery", node=crashed)
        live.remove(crashed)
        if not live:
            raise RuntimeError(f"node crash of {crashed} left no live compute nodes")
        self.cluster.wipe_node(crashed)
        report = self.cluster.hdfs.handle_node_loss(crashed)
        if report.blocks_rereplicated:
            counters.inc(C.BLOCKS_REREPLICATED, report.blocks_rereplicated)
            counters.inc(C.BYTES_REREPLICATED, report.bytes_rereplicated)

        for partition in sorted(logs):
            for store in (logs[partition], checkpoints[partition]):
                holders = [n for n, _ in store.replicas]
                if crashed not in holders:
                    continue
                candidates = [n for n in live if n not in holders]
                if candidates:
                    new_node = candidates[0]
                    store.replace_replica(
                        crashed, new_node, self.cluster.nodes[new_node].intermediate_disk
                    )

        for partition in sorted(reducer_nodes):
            if reducer_nodes[partition] != crashed:
                continue
            dead = reduce_tasks[partition]
            counters.merge(dead.counters)  # its work still happened
            counters.inc(C.TASKS_RERUN)
            new_node = live[partition % len(live)]
            reducer_nodes[partition] = new_node
            reduce_tasks[partition] = self._rebuild_reduce_task(
                job, partition, new_node, logs[partition], checkpoints[partition], counters
            )

    def run(self, job: OnePassJob) -> JobResult:
        from repro.exec.kernels import OnePassMapSpec

        if not job.input_path or not job.output_path:
            raise ValueError("job must set input_path and output_path")
        cluster = self.cluster
        hdfs = cluster.hdfs
        cfg = job.config
        counters = Counters()
        t_start = time.perf_counter()

        splits = hdfs.input_splits(job.input_path)
        assignments, sched_stats = self.scheduler.schedule(splits)
        reducer_nodes = self.scheduler.assign_reducers(cfg.num_reducers)

        # ---- journal resume protocol ----
        journal = self.journal
        appends0, jbytes0 = journal.appends, journal.bytes_written
        committed: dict[int, tuple[Any, ...]] = {}
        journal_checkpoints: dict[int, tuple[int, bytes]] = {}
        if journal.enabled:
            state = journal.resume_state()
            fingerprint = job_fingerprint(job, self.name)
            state.check_spec(fingerprint)
            if state.truncated_bytes:
                self.tracer.event(
                    "journal.truncated", "journal", bytes=state.truncated_bytes
                )
            done_commits = state.output_commits > 0
            if done_commits or state.complete(cfg.num_reducers):
                if not done_commits:
                    journal.append(
                        K_JOB_SPEC, spec=fingerprint, engine=self.name, job=job.name
                    )
                output_records = emit_committed_output(
                    hdfs, job, reducer_nodes, state, counters, self.tracer
                )
                if not done_commits:
                    journal.append(
                        K_OUTPUT_COMMIT,
                        path=job.output_path,
                        records=output_records,
                        digest=output_digest(hdfs, job.output_path),
                    )
                journal.finalize()
                counters.inc(C.JOURNAL_APPENDS, journal.appends - appends0)
                counters.inc(C.JOURNAL_BYTES, journal.bytes_written - jbytes0)
                return JobResult(
                    job_name=job.name,
                    engine=self.name,
                    output_path=job.output_path,
                    counters=counters,
                    wall_time=time.perf_counter() - t_start,
                    phase_times={"map": 0.0, "reduce": 0.0},
                    schedule=sched_stats,
                    network_bytes=0,
                    output_records=output_records,
                    extras={
                        "early_emitted": [],
                        "approximate_results": [],
                        "mode": cfg.mode,
                    },
                    trace=self.tracer if self.tracer.enabled else None,
                )
            journal.append(
                K_JOB_SPEC, spec=fingerprint, engine=self.name, job=job.name
            )
            committed = dict(state.reduce_commits)
            journal_checkpoints = dict(state.checkpoints)
            if committed or journal_checkpoints:
                counters.inc(C.JOURNAL_REPLAYED_COMMITS, len(committed))
                self.tracer.event(
                    "journal.resume",
                    "journal",
                    commits=len(committed),
                    checkpoints=len(journal_checkpoints),
                )

        reduce_tasks = {
            p: OnePassReduceTask(
                job,
                p,
                node,
                cluster.nodes[node].intermediate_disk,
                tracer=self.tracer,
            )
            for p, node in reducer_nodes.items()
        }
        for partition in sorted(journal_checkpoints):
            # Restore journaled reduce state so only the post-checkpoint
            # suffix of re-delivered chunks is absorbed.  Only the
            # incremental backend is checkpointable; committed partitions
            # never run at all.
            if partition in committed:
                continue
            rtask = reduce_tasks[partition]
            if rtask.checkpoint_payload() is None:
                continue
            seq, payload = journal_checkpoints[partition]
            rtask.restore_payload(payload)
            rtask.restored_through = seq
            counters.inc(C.CHECKPOINT_RESTORES)
            self.tracer.event(
                "checkpoint.restored",
                "recovery",
                node=rtask.node,
                task=f"reduce:{partition:03d}",
                seq=seq,
            )
        live = list(cluster.compute_node_names)
        recovery = RecoveryManager(
            self.fault_plan, counters, speculation=self.speculation, tracer=self.tracer
        )
        logs: dict[int, PartitionLog] = {}
        checkpoints: dict[int, CheckpointStore] = {}
        chunks_since_checkpoint: dict[int, int] = {}
        if self.fault_plan is not None:
            for p, node in reducer_nodes.items():
                replicas = self._log_replicas(node)
                logs[p] = PartitionLog(p, replicas, counters)
                checkpoints[p] = CheckpointStore(p, replicas, counters)
                chunks_since_checkpoint[p] = 0
            if self.fault_plan.has_disk_faults:
                for name in sorted(cluster.compute_node_names):
                    cluster.nodes[name].intermediate_disk.fault_injector = (
                        self.fault_plan
                    )
        network_bytes = 0

        def sink(
            partition: int,
            pairs: list[tuple[Any, Any]],
            nbytes: int,
            map_task: int,
        ) -> None:
            nonlocal network_bytes
            if partition in committed:
                return  # journaled output; the reducer never runs
            network_bytes += nbytes
            rtask = reduce_tasks[partition]
            self.tracer.metrics.histogram("push.chunk.bytes").observe(nbytes)
            with self.tracer.span(
                "push",
                "shuffle",
                node=rtask.node,
                task=f"reduce:{partition:03d}",
                cost=byte_cost(nbytes),
                bytes=nbytes,
                records=len(pairs),
                map_task=map_task,
            ):
                if partition in logs:
                    logs[partition].append(pairs, nbytes)
                absorbed = rtask.accept(pairs, nbytes)
            if absorbed and self.checkpoint_interval and partition in checkpoints:
                chunks_since_checkpoint[partition] += 1
                if chunks_since_checkpoint[partition] >= self.checkpoint_interval:
                    if self._save_checkpoint(
                        reduce_tasks[partition], logs[partition], checkpoints[partition]
                    ):
                        chunks_since_checkpoint[partition] = 0

        codec = hdfs.codec(hdfs.namenode.file_info(job.input_path).codec_name)
        c_map0 = self.tracer.clock
        t_map_start = time.perf_counter()
        context = {"job": job, "codec": codec, "trace": self.tracer.enabled}
        with self.executor.session(context) as session:
            if self.fault_plan is None:
                idx = 0
                while idx < len(assignments):
                    batch = assignments[idx : idx + session.max_batch]
                    idx += len(batch)
                    specs = []
                    for a in batch:
                        journal.append(K_TASK_GRANT, task=a.task_id, node=a.node)
                        data, local = self._read_block(a.split, a.node)
                        if not local:
                            network_bytes += len(data)
                        specs.append(OnePassMapSpec(a.task_id, a.node, data))
                    for a, res in zip(batch, session.run_batch("onepass_map", specs)):
                        counters.merge(res.counters)
                        self.tracer.absorb(res.trace)
                        for partition, pairs, nbytes in res.staged:
                            sink(partition, pairs, nbytes, a.task_id)
                        journal.append(
                            K_MAP_COMMIT,
                            task=a.task_id,
                            node=a.node,
                            nbytes=sum(n for _, _, n in res.staged),
                        )
            else:
                completed_maps = 0
                for assignment in assignments:
                    network_bytes += self._run_map_with_retries(
                        job, recovery, session, assignment, live, sink, counters
                    )
                    completed_maps += 1
                    for crashed in self.fault_plan.crashes_due(completed_maps):
                        with counters.timer(C.T_RECOVERY):
                            self._handle_node_crash(
                                crashed,
                                job=job,
                                live=live,
                                reducer_nodes=reducer_nodes,
                                reduce_tasks=reduce_tasks,
                                logs=logs,
                                checkpoints=checkpoints,
                                counters=counters,
                            )
        t_map = time.perf_counter() - t_map_start
        self.tracer.add_span(
            "map-phase", "phase", c_map0, self.tracer.clock, wall_s=t_map
        )
        get_logger("onepass").info(
            "map.phase.done", tasks=len(assignments), wall_ms=t_map * 1e3
        )
        for partition in sorted(reduce_tasks):
            if partition not in committed:
                journal.append(K_SHUFFLE_COMMIT, partition=partition)

        c_reduce0 = self.tracer.clock
        t_reduce_start = time.perf_counter()
        hdfs.namenode.create_file(job.output_path, codec_name="binary")
        output_records = 0
        early: list[tuple[Any, Any]] = []
        approx: list[ApproximateResult] = []
        for partition in sorted(reduce_tasks):
            if partition in committed:
                output = list(committed[partition])
                output_records += len(output)
                if output:
                    hdfs.append_block(
                        job.output_path, output, writer_node=reducer_nodes[partition]
                    )
                continue

            def attempt(
                attempt_idx: int, partition: int = partition
            ) -> tuple[list[ApproximateResult], list[Any], list[tuple[Any, Any]]]:
                if attempt_idx > 0:
                    # The previous attempt died mid-finish: rebuild its
                    # state from checkpoint + log replay on the next node.
                    dead = reduce_tasks[partition]
                    counters.merge(dead.counters)  # its work still happened
                    counters.inc(C.TASKS_RERUN)
                    new_node = live[(partition + attempt_idx) % len(live)]
                    reducer_nodes[partition] = new_node
                    with counters.timer(C.T_RECOVERY):
                        reduce_tasks[partition] = self._rebuild_reduce_task(
                            job,
                            partition,
                            new_node,
                            logs[partition],
                            checkpoints[partition],
                            counters,
                        )
                rtask = reduce_tasks[partition]
                task_approx = rtask.approximate_results()
                task_output = rtask.finish()
                return task_approx, task_output, list(rtask.early_emitted)

            approx_p, output, early_p = recovery.run_reduce_task(partition, attempt)
            journal.append(K_REDUCE_COMMIT, partition=partition, records=tuple(output))
            if journal.enabled:
                self.tracer.event(
                    "journal.commit",
                    "journal",
                    task=f"reduce:{partition:03d}",
                    records=len(output),
                )
            approx.extend(approx_p)
            early.extend(early_p)
            output_records += len(output)
            if output:
                hdfs.append_block(
                    job.output_path, output, writer_node=reducer_nodes[partition]
                )
            counters.merge(reduce_tasks[partition].counters)
        t_reduce = time.perf_counter() - t_reduce_start
        self.tracer.add_span(
            "reduce-phase", "phase", c_reduce0, self.tracer.clock, wall_s=t_reduce
        )
        get_logger("onepass").info(
            "reduce.phase.done",
            partitions=len(reduce_tasks),
            records=output_records,
            wall_ms=t_reduce * 1e3,
        )

        for partition in sorted(logs):
            logs[partition].cleanup()
            checkpoints[partition].cleanup()

        counters.inc(C.OUTPUT_BYTES, hdfs.file_bytes(job.output_path))
        if journal.enabled:
            journal.append(
                K_OUTPUT_COMMIT,
                path=job.output_path,
                records=output_records,
                digest=output_digest(hdfs, job.output_path),
            )
            journal.finalize()
            counters.inc(C.JOURNAL_APPENDS, journal.appends - appends0)
            counters.inc(C.JOURNAL_BYTES, journal.bytes_written - jbytes0)
        return JobResult(
            job_name=job.name,
            engine=self.name,
            output_path=job.output_path,
            counters=counters,
            wall_time=time.perf_counter() - t_start,
            phase_times={"map": t_map, "reduce": t_reduce},
            schedule=sched_stats,
            network_bytes=network_bytes,
            output_records=output_records,
            extras={
                "early_emitted": early,
                "approximate_results": approx,
                "mode": cfg.mode,
            },
            trace=self.tracer if self.tracer.enabled else None,
        )

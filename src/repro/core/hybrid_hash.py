"""Hybrid hash grouping (Shapiro 1986), adapted to MapReduce group-by.

This is technique (1) of the paper's reduce module: replace sort-merge
grouping with hashing.  Keys that arrive while memory is available build an
in-memory table and never touch disk; once the memory budget is exhausted
the resident key set is *frozen* — resident keys keep aggregating in memory
— and pairs for non-resident keys are hashed into ``B`` disk partitions.
At :meth:`finish`, resident groups are emitted directly and each disk
partition is processed recursively with the next hash function of a
pairwise-independent family.

Properties the benchmarks verify:

* **No sorting** — zero CPU spent ordering keys (Table II's 39–48% map-CPU
  and the equivalent reduce-side cost disappear).
* **Still blocking and I/O-bound when memory is short** — the paper is
  explicit that plain hybrid hash has "I/O cost comparable to the
  sort-merge based implementation"; incremental hash (technique 2) and the
  hot-key optimisation (technique 3) are what remove it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.core.aggregates import COLLECT, Aggregator
from repro.core.hash_tables import AccountedStateTable, HashFamily
from repro.io.disk import LocalDisk
from repro.io.runio import RunWriter, stream_run
from repro.mapreduce.counters import C, Counters

__all__ = ["HybridHashGrouper", "SpilledState"]


class SpilledState:
    """Wrapper marking a spilled partial *state* (vs. a raw value).

    Evicting a resident key writes its accumulated state to the key's disk
    partition; the recursive pass merges it back via ``AggregateState.merge``
    instead of ``update``.  The wrapper disambiguates states from user
    values that might themselves be state-like objects.
    """

    __slots__ = ("state",)

    def __init__(self, state: Any) -> None:
        self.state = state


class HybridHashGrouper:
    """Group ``(key, value)`` pairs by key under a memory budget.

    Parameters
    ----------
    disk:
        Local disk receiving overflow partitions.
    namespace:
        Prefix for this grouper's spill files.
    memory_bytes:
        Budget for the in-memory table (per recursion level).
    aggregator:
        State per key; :data:`~repro.core.aggregates.COLLECT` reproduces
        plain grouping (emit the full value list per key).
    spill_partitions:
        ``B``, the fan-out of disk partitioning on overflow.
    max_levels:
        Recursion cap; beyond it a partition is processed without a budget
        (only reachable under adversarial hash collisions).
    """

    def __init__(
        self,
        disk: LocalDisk,
        namespace: str,
        memory_bytes: int,
        *,
        aggregator: Aggregator = COLLECT,
        spill_partitions: int = 8,
        hash_family: HashFamily | None = None,
        level: int = 0,
        max_levels: int = 10,
        counters: Counters | None = None,
    ) -> None:
        if memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if spill_partitions < 2:
            raise ValueError("spill_partitions must be >= 2")
        self.disk = disk
        self.namespace = namespace.rstrip("/")
        self.memory_bytes = memory_bytes
        self.aggregator = aggregator
        self.spill_partitions = spill_partitions
        self.hash_family = hash_family or HashFamily()
        self.level = level
        self.max_levels = max_levels
        self.counters = counters if counters is not None else Counters()
        self._hash: Callable[[Any], int] = self.hash_family.member(level)
        self._table = AccountedStateTable(aggregator)
        self._frozen = False
        self._writers: list[RunWriter | None] = [None] * spill_partitions
        self._spilled_pairs = [0] * spill_partitions
        self._finished = False

    # -- ingestion -----------------------------------------------------------

    @property
    def frozen(self) -> bool:
        """True once the resident key set stopped admitting new keys."""
        return self._frozen

    @property
    def resident_keys(self) -> int:
        return len(self._table)

    @property
    def spilled_records(self) -> int:
        return sum(self._spilled_pairs)

    def add(self, key: Any, value: Any) -> None:
        """Route one pair to the in-memory table or a disk partition.

        ``value`` may be a :class:`SpilledState` produced by an eviction at
        an outer recursion level; it is merged rather than folded.
        """
        if self._finished:
            raise RuntimeError("grouper already finished")
        if not self._frozen:
            self._absorb(key, value)
            if self._table.used_bytes > self.memory_bytes:
                self._frozen = True
                self.counters.set_max(C.HASH_STATE_BYTES_PEAK, self._table.used_bytes)
            return
        if key in self._table:
            # Resident keys continue to aggregate in memory for free.
            self._absorb(key, value)
            # Linear states (collect/session) can outgrow the budget even
            # with a frozen key set; shed the largest states to disk.
            if self._table.used_bytes > 2 * self.memory_bytes:
                self._evict_largest()
            return
        self._spill(key, value)

    def add_batch(self, pairs: list[tuple[Any, Any]]) -> None:
        """Route many pairs; identical end state to per-pair :meth:`add`.

        The hoisted loop runs only while the table is unfrozen, with the
        budget check after every pair so the freeze lands on exactly the
        same pair as the tuple path; frozen-path pairs (disk routing,
        evictions) fall back to per-pair :meth:`add`.
        """
        if self._finished:
            raise RuntimeError("grouper already finished")
        i = 0
        n = len(pairs)
        if not self._frozen:
            table = self._table
            update = table.update
            merge = table.merge_state
            budget = self.memory_bytes
            while i < n:
                key, value = pairs[i]
                i += 1
                if isinstance(value, SpilledState):
                    merge(key, value.state)
                else:
                    update(key, value)
                if table.used_bytes > budget:
                    self._frozen = True
                    self.counters.set_max(
                        C.HASH_STATE_BYTES_PEAK, table.used_bytes
                    )
                    break
        add = self.add
        while i < n:
            key, value = pairs[i]
            add(key, value)
            i += 1

    def _absorb(self, key: Any, value: Any) -> None:
        if isinstance(value, SpilledState):
            self._table.merge_state(key, value.state)
        else:
            self._table.update(key, value)

    def _evict_largest(self) -> None:
        """Spill the biggest resident states until back under budget."""
        by_size = sorted(
            self._table.items(), key=lambda kv: kv[1].size_bytes(), reverse=True
        )
        for key, _state in by_size:
            if self._table.used_bytes <= self.memory_bytes:
                break
            state = self._table.pop(key)
            self._spill(key, SpilledState(state))

    def _spill(self, key: Any, value: Any) -> None:
        bucket = self._hash(key) % self.spill_partitions
        writer = self._writers[bucket]
        if writer is None:
            path = f"{self.namespace}/hh-l{self.level}-b{bucket:03d}"
            writer = RunWriter(self.disk, path)
            self._writers[bucket] = writer
        writer.write((key, value))
        self._spilled_pairs[bucket] += 1

    # -- results ----------------------------------------------------------------

    def finish(self) -> Iterator[tuple[Any, Any]]:
        """Emit every ``(key, aggregated result)``; recurse into overflow.

        Blocking by construction: nothing is emitted until the caller has
        added the last pair.
        """
        if self._finished:
            raise RuntimeError("grouper already finished")
        self._finished = True
        self.counters.set_max(C.HASH_STATE_BYTES_PEAK, self._table.used_bytes)
        self.counters.inc(C.HASH_PROBES, self._table.probes)
        yield from self._table.results()
        self._table.clear()

        for bucket, writer in enumerate(self._writers):
            if writer is None:
                continue
            writer.close()
            self.counters.inc(C.REDUCE_SPILL_BYTES, writer.bytes_written)
            self.counters.inc(C.REDUCE_SPILLS)
            yield from self._process_partition(writer.path, bucket)

    def _process_partition(self, path: str, bucket: int) -> Iterator[tuple[Any, Any]]:
        pairs = stream_run(self.disk, path)
        if self.level + 1 >= self.max_levels:
            # Pathological recursion (hash collisions): finish without a
            # budget rather than loop forever.
            table = AccountedStateTable(self.aggregator)
            for key, value in pairs:
                if isinstance(value, SpilledState):
                    table.merge_state(key, value.state)
                else:
                    table.update(key, value)
            self.disk.delete(path)
            yield from table.results()
            return
        child = HybridHashGrouper(
            self.disk,
            f"{self.namespace}/b{bucket:03d}",
            self.memory_bytes,
            aggregator=self.aggregator,
            spill_partitions=self.spill_partitions,
            hash_family=self.hash_family,
            level=self.level + 1,
            max_levels=self.max_levels,
            counters=self.counters,
        )
        for key, value in pairs:
            child.add(key, value)
        self.disk.delete(path)
        yield from child.finish()

"""Incremental hash: technique (2) of the paper's reduce module.

"To support incremental computation and reduce I/Os when a combine function
is available, we further implement an incremental hash technique, which
maintains a state for each key, and updates it incrementally."

:class:`IncrementalHash` keeps one :class:`~repro.core.aggregates.AggregateState`
per key and folds every arriving pair immediately — the reduce function is
effectively "applied to all groups simultaneously".  Two consequences the
paper calls out, both implemented here:

* **Fully incremental output** — an *emit policy* inspects a key's state
  after each update and can release the answer as soon as it is
  determined (the paper's example: emit a group once its count exceeds a
  threshold).  No merge phase ever blocks it.
* **In-memory processing whenever states fit** — when they do not, the
  plain technique must shed load; here, cold (non-resident) keys overflow
  into a :class:`~repro.core.hybrid_hash.HybridHashGrouper`, preserving
  exactness at the cost of blocking for those keys.  The hot-key variant
  (:mod:`repro.core.hotset`) is the paper's smarter answer.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Iterator

from repro.core.aggregates import AggregateState, Aggregator
from repro.core.hash_tables import AccountedStateTable
from repro.core.hybrid_hash import HybridHashGrouper, SpilledState
from repro.io.disk import LocalDisk
from repro.mapreduce.counters import C, Counters

__all__ = ["IncrementalHash", "EmitPolicy", "count_threshold_policy"]

EmitPolicy = Callable[[Any, AggregateState], bool]


def count_threshold_policy(threshold: int) -> EmitPolicy:
    """Emit a key as soon as its count-like state reaches ``threshold``.

    Works with any state whose ``result()`` is an integer count — the
    paper's motivating incremental query ("return all the groups where the
    count of items exceeds a threshold").
    """
    if threshold < 1:
        raise ValueError("threshold must be >= 1")

    def policy(_key: Any, state: AggregateState) -> bool:
        return state.result() >= threshold

    return policy


class IncrementalHash:
    """Per-key aggregate states, updated as data arrives.

    Parameters
    ----------
    aggregator:
        The per-key state factory (must come from the job's combine
        function algebra).
    memory_bytes:
        Budget for resident states; ``None`` means unbounded (pure
        in-memory processing).
    disk, namespace:
        Overflow destination; required when ``memory_bytes`` is set.
    emit_policy:
        Optional predicate over ``(key, state)``; the first time it holds
        for a key, ``(key, result)`` is appended to :attr:`early_emitted`.
    """

    __slots__ = (
        "aggregator",
        "memory_bytes",
        "disk",
        "namespace",
        "emit_policy",
        "counters",
        "_table",
        "_emitted",
        "early_emitted",
        "_overflow",
        "_finished",
        "updates",
    )

    def __init__(
        self,
        aggregator: Aggregator,
        *,
        memory_bytes: int | None = None,
        disk: LocalDisk | None = None,
        namespace: str = "inchash",
        emit_policy: EmitPolicy | None = None,
        counters: Counters | None = None,
    ) -> None:
        if memory_bytes is not None:
            if memory_bytes <= 0:
                raise ValueError("memory_bytes must be positive")
            if disk is None:
                raise ValueError("a disk is required when memory is bounded")
        self.aggregator = aggregator
        self.memory_bytes = memory_bytes
        self.disk = disk
        self.namespace = namespace
        self.emit_policy = emit_policy
        self.counters = counters if counters is not None else Counters()
        self._table = AccountedStateTable(aggregator)
        self._emitted: set[Any] = set()
        self.early_emitted: list[tuple[Any, Any]] = []
        self._overflow: HybridHashGrouper | None = None
        self._finished = False
        self.updates = 0

    # -- ingestion -----------------------------------------------------------

    @property
    def resident_keys(self) -> int:
        return len(self._table)

    @property
    def overflowed(self) -> bool:
        return self._overflow is not None

    @property
    def used_bytes(self) -> int:
        return self._table.used_bytes

    @property
    def spilled_records(self) -> int:
        """Pairs the overflow grouper has spilled to disk so far."""
        return self._overflow.spilled_records if self._overflow is not None else 0

    def update(self, key: Any, value: Any) -> None:
        """Fold one pair; may trigger an early emission."""
        if self._finished:
            raise RuntimeError("incremental hash already finished")
        self.updates += 1
        if self._overflow is not None and key not in self._table:
            self._overflow.add(key, value)
            return
        state = (
            self._table.merge_state(key, value.state)
            if isinstance(value, SpilledState)
            else self._table.update(key, value)
        )
        self._maybe_emit(key, state)
        if (
            self.memory_bytes is not None
            and self._overflow is None
            and self._table.used_bytes > self.memory_bytes
        ):
            self._freeze()

    def update_batch(self, pairs: list[tuple[Any, Any]]) -> None:
        """Fold many pairs; identical end state to per-pair :meth:`update`.

        The hoisted fast loop applies only when no per-pair side effects
        can fire — unbounded memory, no emit policy, no overflow.  With
        any of those active the batch falls back to per-pair updates so
        freeze points and early emissions land on exactly the same pair.
        """
        if self._finished:
            raise RuntimeError("incremental hash already finished")
        if (
            self.memory_bytes is None
            and self.emit_policy is None
            and self._overflow is None
        ):
            table = self._table
            update = table.update
            merge = table.merge_state
            n = 0
            for key, value in pairs:
                n += 1
                if isinstance(value, SpilledState):
                    merge(key, value.state)
                else:
                    update(key, value)
            self.updates += n
            return
        update_one = self.update
        for key, value in pairs:
            update_one(key, value)

    def merge_state(self, key: Any, state: AggregateState) -> None:
        """Fold a partial state (e.g. a pushed combiner output)."""
        self.update(key, SpilledState(state))

    def _freeze(self) -> None:
        """Stop admitting new keys; overflow them to hybrid hash on disk."""
        assert self.disk is not None and self.memory_bytes is not None
        self.counters.set_max(C.HASH_STATE_BYTES_PEAK, self._table.used_bytes)
        self._overflow = HybridHashGrouper(
            self.disk,
            f"{self.namespace}/overflow",
            self.memory_bytes,
            aggregator=self.aggregator,
            counters=self.counters,
        )

    def _maybe_emit(self, key: Any, state: AggregateState) -> None:
        if self.emit_policy is None or key in self._emitted:
            return
        if self.emit_policy(key, state):
            self._emitted.add(key)
            self.early_emitted.append((key, state.result()))
            self.counters.inc(C.EARLY_EMITS)

    # -- queries ---------------------------------------------------------------

    def current(self, key: Any) -> Any | None:
        """The key's running answer right now, or ``None`` if unseen/cold."""
        state = self._table.get(key)
        return None if state is None else state.result()

    def snapshot_results(self) -> Iterator[tuple[Any, Any]]:
        """Running answers for every *resident* key (non-destructive).

        Unlike HOP's snapshots, this costs no re-merging and no extra I/O:
        the states are already up to date — the paper's "fully incremental"
        row in Table III.
        """
        return self._table.results()

    # -- checkpointing -----------------------------------------------------------

    def checkpoint_payload(self) -> bytes | None:
        """Serialize the complete in-memory state for durable checkpointing.

        Returns ``None`` when the state is not checkpointable: after keys
        have overflowed to disk (the overflow partitions live outside this
        object) or once finished.  The payload round-trips through
        :meth:`restore_payload`.
        """
        if self._overflow is not None or self._finished:
            return None
        snapshot = (
            list(self._table.items()),
            set(self._emitted),
            list(self.early_emitted),
            self.updates,
        )
        return pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)

    def restore_payload(self, payload: bytes) -> None:
        """Replace all state with a checkpoint snapshot (recovery path).

        States are folded into a fresh table via direct merges, bypassing
        the emit policy: keys that emitted before the checkpoint are in
        the restored ``early_emitted`` list and must not emit again when
        the post-checkpoint log suffix replays.
        """
        if self._finished:
            raise RuntimeError("incremental hash already finished")
        states, emitted, early, updates = pickle.loads(payload)
        self._table = AccountedStateTable(self.aggregator)
        for key, state in states:
            self._table.merge_state(key, state)
        self._emitted = set(emitted)
        self.early_emitted = list(early)
        self.updates = updates
        self._overflow = None

    # -- finalisation ------------------------------------------------------------

    def results(self) -> Iterator[tuple[Any, Any]]:
        """Final answers for all keys (resident first, then overflow)."""
        if self._finished:
            raise RuntimeError("incremental hash already finished")
        self._finished = True
        self.counters.set_max(C.HASH_STATE_BYTES_PEAK, self._table.used_bytes)
        self.counters.inc(C.HASH_PROBES, self._table.probes)
        yield from self._table.results()
        if self._overflow is not None:
            yield from self._overflow.finish()

"""Query helpers over the one-pass engine's results.

Two query shapes from the paper's discussion of incremental processing:

* **threshold queries** — "a query that returns all the groups where the
  count of items exceeds a threshold ... a group needs to be output as
  soon as the count of its items has reached the threshold";
* **top-k queries** — listed among the "complex queries" the combiner
  question (§IV.3) worries about; per-key aggregation plus a global
  selection makes them one-pass friendly.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Iterator

from repro.core.aggregates import AggregateState
from repro.core.incremental import EmitPolicy, count_threshold_policy

__all__ = ["ThresholdQuery", "global_top_k", "TopKSelector"]


class ThresholdQuery:
    """Groups whose aggregate reaches a threshold, emitted incrementally.

    ``emit_policy`` plugs into :class:`~repro.core.incremental.IncrementalHash`
    (or :class:`~repro.core.engine.OnePassJob`); :meth:`filter_final`
    applies the same predicate to final results for engines that cannot
    emit early (the baselines), so answers stay comparable.
    """

    def __init__(
        self,
        threshold: float,
        *,
        measure: Callable[[Any], float] | None = None,
    ) -> None:
        self.threshold = threshold
        self.measure = measure or (lambda result: float(result))

    @property
    def emit_policy(self) -> EmitPolicy:
        measure = self.measure
        threshold = self.threshold

        def policy(_key: Any, state: AggregateState) -> bool:
            return measure(state.result()) >= threshold

        return policy

    def filter_final(
        self, results: Iterable[tuple[Any, Any]]
    ) -> Iterator[tuple[Any, Any]]:
        for key, result in results:
            if self.measure(result) >= self.threshold:
                yield key, result


def global_top_k(
    results: Iterable[tuple[Any, Any]],
    k: int,
    *,
    measure: Callable[[Any], float] | None = None,
) -> list[tuple[Any, Any]]:
    """The ``k`` keys with the largest aggregate, best first.

    Ties break deterministically on the key's repr so runs are stable
    across hash orderings.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    measure = measure or (lambda result: float(result))
    return heapq.nlargest(
        k, results, key=lambda kr: (measure(kr[1]), repr(kr[0]))
    )


class TopKSelector:
    """Streaming global top-k over ``(key, result)`` pairs.

    A reducer can feed results as they finalise; memory stays O(k).
    """

    def __init__(
        self, k: int, *, measure: Callable[[Any], float] | None = None
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.measure = measure or (lambda result: float(result))
        self._heap: list[tuple[float, str, Any, Any]] = []

    def offer(self, key: Any, result: Any) -> None:
        entry = (self.measure(result), repr(key), key, result)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
        elif entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)

    def offer_all(self, results: Iterable[tuple[Any, Any]]) -> None:
        for key, result in results:
            self.offer(key, result)

    def best(self) -> list[tuple[Any, Any]]:
        """Current top-k, best first."""
        return [
            (key, result)
            for _m, _r, key, result in sorted(self._heap, reverse=True)
        ]

__all__.append("count_threshold_policy")

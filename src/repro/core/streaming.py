"""Stream processing over the one-pass core — the paper's end goal.

§IV closes with the platform the hash techniques are built for: "near
real-time stream processing that obviates the need for data loading and
returns pipelined answers as data arrives".  This module provides that
interface over the same reduce-side backends the batch engine uses:

* :class:`StreamProcessor` — push records as they arrive (no HDFS, no
  job submission); the map function and hash partitioning run inline and
  per-key aggregate states update immediately.  Running answers are
  queryable at any moment; an emit policy streams out groups the instant
  their state satisfies it.
* :class:`TumblingWindowProcessor` — time-windowed streaming: records
  land in fixed-width windows by timestamp, each window aggregates
  incrementally, and a window's final answers are delivered through a
  callback once the watermark passes its end (plus allowed lateness).

Consistent with the paper's scoping, streams are *unbounded but
finite-state*: fault tolerance across pushes is out of scope here (§I:
"we do not consider an infinite sequence due to the overhead of fault
tolerance") — the batch engines own that story.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.core.aggregates import Aggregator
from repro.core.hotset import HotSetIncrementalHash
from repro.core.incremental import EmitPolicy, IncrementalHash
from repro.io.disk import LocalDisk
from repro.mapreduce.api import MapFn
from repro.mapreduce.counters import C, Counters
from repro.mapreduce.partition import Partitioner, hash_partitioner

__all__ = ["StreamProcessor", "TumblingWindowProcessor"]

EmitCallback = Callable[[Any, Any], None]


class StreamProcessor:
    """Incremental analytics over a pushed record stream.

    Parameters
    ----------
    map_fn:
        The MapReduce map function, applied to each pushed record.
    aggregator:
        Per-key state algebra (the combine function's algebra).
    num_partitions:
        Parallelism of the reduce side; keys hash-partition across
        independent backends exactly as in the cluster engine.
    mode:
        ``"incremental"`` (default, exact) or ``"hotset"`` (bounded
        memory, approximate early answers, exact on :meth:`finish`).
    on_emit:
        Called with ``(key, result)`` the first time ``emit_policy``
        holds for a key — the pipelined-answer channel.
    """

    def __init__(
        self,
        map_fn: MapFn,
        aggregator: Aggregator,
        *,
        num_partitions: int = 2,
        mode: str = "incremental",
        memory_bytes: int | None = None,
        hotset_capacity: int = 1024,
        emit_policy: EmitPolicy | None = None,
        on_emit: EmitCallback | None = None,
        partitioner: Partitioner = hash_partitioner,
        disk: LocalDisk | None = None,
    ) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if mode not in ("incremental", "hotset"):
            raise ValueError(f"mode must be incremental or hotset, got {mode!r}")
        self.map_fn = map_fn
        self.aggregator = aggregator
        self.num_partitions = num_partitions
        self.mode = mode
        self.partitioner = partitioner
        self.on_emit = on_emit
        self.counters = Counters()
        self._disk = disk or LocalDisk(name="stream")
        self._emitted_log: list[tuple[Any, Any]] = []
        self._closed = False
        self.records_seen = 0

        wrapped_policy = emit_policy
        if emit_policy is not None and on_emit is not None:
            wrapped_policy = self._wrap_policy(emit_policy)

        self._backends: list[Any] = []
        for p in range(num_partitions):
            if mode == "incremental":
                self._backends.append(
                    IncrementalHash(
                        aggregator,
                        memory_bytes=memory_bytes,
                        disk=self._disk if memory_bytes else None,
                        namespace=f"stream/{p:03d}",
                        emit_policy=wrapped_policy,
                        counters=self.counters,
                    )
                )
            else:
                self._backends.append(
                    HotSetIncrementalHash(
                        aggregator,
                        self._disk,
                        f"stream/{p:03d}",
                        capacity=hotset_capacity,
                        counters=self.counters,
                    )
                )

    def _wrap_policy(self, policy: EmitPolicy) -> EmitPolicy:
        on_emit = self.on_emit

        def wrapped(key: Any, state: Any) -> bool:
            hit = policy(key, state)
            if hit and on_emit is not None:
                on_emit(key, state.result())
            return hit

        return wrapped

    # -- ingestion -----------------------------------------------------------

    def push(self, record: Any) -> None:
        """Feed one record; states update before this call returns."""
        if self._closed:
            raise RuntimeError("stream already finished")
        self.records_seen += 1
        for key, value in self.map_fn(record):
            partition = self.partitioner(key, self.num_partitions)
            self._backends[partition].update(key, value)

    def push_many(self, records: Iterable[Any]) -> None:
        for record in records:
            self.push(record)

    # -- queries ---------------------------------------------------------------

    def current(self, key: Any) -> Any | None:
        """The key's running answer right now (``None`` if unseen/cold)."""
        partition = self.partitioner(key, self.num_partitions)
        backend = self._backends[partition]
        if isinstance(backend, IncrementalHash):
            return backend.current(key)
        for approx in backend.approximate_results():
            if approx.key == key:
                return approx.result
        return None

    def snapshot(self) -> dict[Any, Any]:
        """Running answers for every in-memory key — zero extra I/O."""
        out: dict[Any, Any] = {}
        for backend in self._backends:
            if isinstance(backend, IncrementalHash):
                out.update(backend.snapshot_results())
            else:
                for approx in backend.approximate_results():
                    out[approx.key] = approx.result
        return out

    @property
    def early_emitted(self) -> list[tuple[Any, Any]]:
        out: list[tuple[Any, Any]] = []
        for backend in self._backends:
            if isinstance(backend, IncrementalHash):
                out.extend(backend.early_emitted)
        return out

    # -- finalisation ------------------------------------------------------------

    def finish(self) -> dict[Any, Any]:
        """Close the stream and return exact final answers for all keys."""
        if self._closed:
            raise RuntimeError("stream already finished")
        self._closed = True
        out: dict[Any, Any] = {}
        for backend in self._backends:
            out.update(backend.results())
        return out


class TumblingWindowProcessor:
    """Fixed-width time windows over a timestamped stream.

    Records are assigned to window ``floor(ts / width)``; each window runs
    its own incremental hash.  When the watermark (the largest timestamp
    seen) passes a window's end plus ``allowed_lateness``, the window is
    finalised and ``on_window(window_start, {key: result})`` fires.
    Records older than an already-finalised window are counted as
    ``late_records`` and dropped, as stream processors do.
    """

    def __init__(
        self,
        map_fn: MapFn,
        aggregator: Aggregator,
        *,
        width: float,
        ts_of: Callable[[Any], float],
        on_window: Callable[[float, dict[Any, Any]], None],
        allowed_lateness: float = 0.0,
    ) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if allowed_lateness < 0:
            raise ValueError("allowed_lateness must be non-negative")
        self.map_fn = map_fn
        self.aggregator = aggregator
        self.width = width
        self.ts_of = ts_of
        self.on_window = on_window
        self.allowed_lateness = allowed_lateness
        self._windows: dict[int, IncrementalHash] = {}
        self._watermark = float("-inf")
        self._finalised_below = float("-inf")
        self.late_records = 0
        self.windows_emitted = 0

    def _window_of(self, ts: float) -> int:
        return int(ts // self.width)

    def push(self, record: Any) -> None:
        ts = self.ts_of(record)
        window = self._window_of(ts)
        window_start = window * self.width
        if window_start < self._finalised_below:
            self.late_records += 1
            return
        table = self._windows.get(window)
        if table is None:
            table = IncrementalHash(self.aggregator)
            self._windows[window] = table
        for key, value in self.map_fn(record):
            table.update(key, value)
        if ts > self._watermark:
            self._watermark = ts
            self._drain()

    def push_many(self, records: Iterable[Any]) -> None:
        for record in records:
            self.push(record)

    def _drain(self) -> None:
        """Finalise every window whose end passed the watermark."""
        horizon = self._watermark - self.allowed_lateness
        ready = sorted(
            w for w in self._windows if (w + 1) * self.width <= horizon
        )
        for window in ready:
            table = self._windows.pop(window)
            self.on_window(window * self.width, dict(table.results()))
            self.windows_emitted += 1
        # Advance the lateness boundary past *every* closed window, empty
        # ones included — otherwise a straggler could resurrect a window
        # that the watermark already passed and emit it out of order.
        if horizon > float("-inf"):
            boundary = (horizon // self.width) * self.width
            self._finalised_below = max(self._finalised_below, boundary)

    def flush(self) -> None:
        """End of stream: finalise all remaining windows in time order."""
        for window in sorted(self._windows):
            table = self._windows.pop(window)
            self.on_window(window * self.width, dict(table.results()))
            self.windows_emitted += 1

    @property
    def open_windows(self) -> int:
        return len(self._windows)

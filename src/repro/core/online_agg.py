"""Online aggregation: early approximate answers with confidence bounds.

The paper frames one-pass analytics as "stream processing and online
aggregation with early approximate answers".  This module supplies the
estimator layer: given records consumed in (assumed) random order and the
known population size, it maintains running estimates of COUNT / SUM / AVG
— globally and per group — with CLT-based confidence intervals scaled by
the finite-population correction (the variance shrinks to zero as the scan
approaches completion, so the interval collapses onto the exact answer).

The estimators are deliberately engine-agnostic: the one-pass engine's
incremental hash can call :meth:`GroupedOnlineAggregator.observe` from an
emit hook, and the examples drive them directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Hashable, Iterator

__all__ = [
    "z_for_confidence",
    "Estimate",
    "OnlineSum",
    "OnlineCount",
    "OnlineMean",
    "GroupedOnlineAggregator",
]


def z_for_confidence(confidence: float) -> float:
    """Two-sided standard-normal quantile for a confidence level.

    Uses Acklam's rational approximation of the inverse normal CDF
    (relative error < 1.15e-9), so no SciPy dependency is needed.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must lie in (0, 1)")
    p = 1 - (1 - confidence) / 2
    # Acklam's algorithm.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= 1 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )


@dataclass(frozen=True, slots=True)
class Estimate:
    """A running estimate with its symmetric confidence interval."""

    value: float
    half_width: float
    confidence: float
    fraction_seen: float
    n_seen: int

    @property
    def low(self) -> float:
        return self.value - self.half_width

    @property
    def high(self) -> float:
        return self.value + self.half_width

    def contains(self, truth: float) -> bool:
        return self.low <= truth <= self.high


class _RunningMoments:
    """Welford-style running mean and variance."""

    __slots__ = ("n", "mean", "m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def push(self, x: float) -> None:
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (x - self.mean)

    @property
    def variance(self) -> float:
        return self.m2 / (self.n - 1) if self.n > 1 else 0.0


class OnlineSum:
    """Estimate the population SUM from a random-order prefix.

    With ``n`` of ``N`` records seen and sample mean ``x̄``, the estimator
    is ``N·x̄``; its standard error carries the finite-population
    correction ``sqrt((N-n)/N)``, so certainty is reached at ``n = N``.
    """

    def __init__(self, population: int, *, confidence: float = 0.95) -> None:
        if population < 1:
            raise ValueError("population must be >= 1")
        self.population = population
        self.confidence = confidence
        self._z = z_for_confidence(confidence)
        self._moments = _RunningMoments()

    def observe(self, value: float) -> None:
        if self._moments.n >= self.population:
            raise ValueError("observed more records than the population size")
        self._moments.push(float(value))

    @property
    def n_seen(self) -> int:
        return self._moments.n

    def estimate(self) -> Estimate:
        m = self._moments
        if m.n == 0:
            raise ValueError("no observations yet")
        N = self.population
        value = N * m.mean
        fpc = (N - m.n) / N
        se = N * math.sqrt(m.variance / m.n * fpc) if m.n > 1 else float("inf")
        return Estimate(
            value=value,
            half_width=self._z * se,
            confidence=self.confidence,
            fraction_seen=m.n / N,
            n_seen=m.n,
        )


class OnlineCount(OnlineSum):
    """Estimate the COUNT of records satisfying a predicate.

    Observe 1.0 for matching records and 0.0 otherwise; the SUM of the
    indicator is the count.
    """

    def observe_match(self, matches: bool) -> None:
        self.observe(1.0 if matches else 0.0)


class OnlineMean:
    """Estimate the population AVG (ratio of sums) with a CLT interval."""

    def __init__(self, population: int, *, confidence: float = 0.95) -> None:
        self.population = population
        self.confidence = confidence
        self._z = z_for_confidence(confidence)
        self._moments = _RunningMoments()

    def observe(self, value: float) -> None:
        self._moments.push(float(value))

    @property
    def n_seen(self) -> int:
        return self._moments.n

    def estimate(self) -> Estimate:
        m = self._moments
        if m.n == 0:
            raise ValueError("no observations yet")
        N = self.population
        fpc = (N - m.n) / N if N > m.n else 0.0
        se = math.sqrt(m.variance / m.n * fpc) if m.n > 1 else float("inf")
        return Estimate(
            value=m.mean,
            half_width=self._z * se,
            confidence=self.confidence,
            fraction_seen=m.n / N,
            n_seen=m.n,
        )


class GroupedOnlineAggregator:
    """Per-group SUM/COUNT estimates over a random-order record stream.

    Every record contributes to every group's indicator variable (zero for
    groups it does not belong to), which makes the group-total estimator
    ``N · s_g / n`` unbiased under random order and gives each group an
    honest variance even before its first member is seen.
    """

    def __init__(self, population: int, *, confidence: float = 0.95) -> None:
        if population < 1:
            raise ValueError("population must be >= 1")
        self.population = population
        self.confidence = confidence
        self._z = z_for_confidence(confidence)
        self.n_seen = 0
        self._sums: dict[Hashable, float] = {}
        self._sumsq: dict[Hashable, float] = {}

    def observe(self, group: Hashable, value: float = 1.0) -> None:
        """Record one stream record belonging to ``group``."""
        if self.n_seen >= self.population:
            raise ValueError("observed more records than the population size")
        self.n_seen += 1
        v = float(value)
        self._sums[group] = self._sums.get(group, 0.0) + v
        self._sumsq[group] = self._sumsq.get(group, 0.0) + v * v

    def groups(self) -> list[Hashable]:
        return list(self._sums)

    def estimate(self, group: Hashable) -> Estimate:
        """Estimated population total of ``value`` for ``group``."""
        if self.n_seen == 0:
            raise ValueError("no observations yet")
        n = self.n_seen
        N = self.population
        s = self._sums.get(group, 0.0)
        ssq = self._sumsq.get(group, 0.0)
        mean = s / n
        var = max(ssq / n - mean * mean, 0.0) * (n / (n - 1)) if n > 1 else 0.0
        fpc = (N - n) / N
        se = N * math.sqrt(var / n * fpc) if n > 1 else float("inf")
        return Estimate(
            value=N * mean,
            half_width=self._z * se,
            confidence=self.confidence,
            fraction_seen=n / N,
            n_seen=n,
        )

    def estimates(self) -> Iterator[tuple[Hashable, Estimate]]:
        for group in self._sums:
            yield group, self.estimate(group)

    def top_groups(self, k: int) -> list[tuple[Hashable, Estimate]]:
        """The ``k`` groups with the largest estimated totals."""
        ranked = sorted(self.estimates(), key=lambda ge: ge[1].value, reverse=True)
        return ranked[:k]

"""The paper's contribution: hash-based incremental one-pass analytics.

The package layers up exactly as §V's architecture figure does:

* hash + memory substrates — :mod:`~repro.core.hash_tables`,
  :mod:`~repro.core.aggregates`;
* map module — :mod:`~repro.core.partitioner` (scan-only partitioning,
  map-side hybrid hash with combiner);
* reduce module — :mod:`~repro.core.hybrid_hash` (blocking baseline),
  :mod:`~repro.core.incremental` (per-key states, early emission),
  :mod:`~repro.core.frequent` + :mod:`~repro.core.hotset` (hot keys in
  memory when states exceed memory);
* the engine — :mod:`~repro.core.engine` wires them under the MapReduce
  programming model with push-based shuffling;
* online aggregation — :mod:`~repro.core.online_agg` for early
  approximate answers with confidence intervals.
"""

from repro.core.aggregates import (
    AVG,
    COLLECT,
    COUNT,
    MAX,
    MIN,
    SUM,
    AggregateState,
    Aggregator,
    AvgState,
    CollectState,
    CountState,
    MaxState,
    MinState,
    SessionState,
    SumCountState,
    SumState,
    TopByCountState,
    TopKState,
    fold,
    sessionize,
    top_by_count,
    top_k,
)
from repro.core.engine import OnePassConfig, OnePassEngine, OnePassJob, OnePassReduceTask
from repro.core.frequent import SpaceSaving, TrackedKey
from repro.core.hash_tables import AccountedStateTable, HashFamily
from repro.core.hotset import ApproximateResult, HotSetIncrementalHash
from repro.core.hybrid_hash import HybridHashGrouper, SpilledState
from repro.core.incremental import EmitPolicy, IncrementalHash, count_threshold_policy
from repro.core.online_agg import (
    Estimate,
    GroupedOnlineAggregator,
    OnlineCount,
    OnlineMean,
    OnlineSum,
    z_for_confidence,
)
from repro.core.partitioner import MapSideHashCombiner, ScanPartitionBuffer
from repro.core.queries import ThresholdQuery, TopKSelector, global_top_k
from repro.core.streaming import StreamProcessor, TumblingWindowProcessor

__all__ = [
    # aggregates
    "AggregateState",
    "Aggregator",
    "CountState",
    "SumState",
    "SumCountState",
    "AvgState",
    "MinState",
    "MaxState",
    "TopKState",
    "TopByCountState",
    "CollectState",
    "SessionState",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
    "COLLECT",
    "top_k",
    "top_by_count",
    "sessionize",
    "fold",
    # hash substrates
    "AccountedStateTable",
    "HashFamily",
    "HybridHashGrouper",
    "SpilledState",
    "IncrementalHash",
    "EmitPolicy",
    "count_threshold_policy",
    "SpaceSaving",
    "TrackedKey",
    "HotSetIncrementalHash",
    "ApproximateResult",
    # map side
    "ScanPartitionBuffer",
    "MapSideHashCombiner",
    # engine
    "OnePassConfig",
    "OnePassJob",
    "OnePassReduceTask",
    "OnePassEngine",
    # online aggregation
    "Estimate",
    "OnlineSum",
    "OnlineCount",
    "OnlineMean",
    "GroupedOnlineAggregator",
    "z_for_confidence",
    # queries
    "ThresholdQuery",
    "TopKSelector",
    "global_top_k",
    # streaming
    "StreamProcessor",
    "TumblingWindowProcessor",
]

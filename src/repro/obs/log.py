"""Opt-in structured logging: keyed events, not formatted prose.

Loggers emit ``LEVEL logger event key=value ...`` lines to stderr, and
only when a level has been switched on (default is ``off`` — silent and
nearly free: one integer comparison per call).  Keeping the event name
and its fields separate means log lines stay grep-able and the call
sites stay declarative; no f-string assembly happens unless the line is
actually emitted.
"""

from __future__ import annotations

import sys
from typing import Any, TextIO

__all__ = ["LEVELS", "set_level", "get_level", "get_logger", "Logger"]

LEVELS = ("off", "error", "warn", "info", "debug")
_LEVEL_NUM = {name: i for i, name in enumerate(LEVELS)}

_level = 0  # "off"
_stream: TextIO | None = None  # None -> sys.stderr at emit time


def set_level(level: str, *, stream: TextIO | None = None) -> None:
    """Set the global log level (one of :data:`LEVELS`)."""
    global _level, _stream
    try:
        _level = _LEVEL_NUM[level]
    except KeyError:
        raise ValueError(f"unknown log level {level!r}; expected one of {LEVELS}") from None
    _stream = stream


def get_level() -> str:
    return LEVELS[_level]


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    return repr(text) if " " in text else text


class Logger:
    """A named emitter of keyed events."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def _emit(self, num: int, event: str, fields: dict[str, Any]) -> None:
        if num > _level:
            return
        parts = [LEVELS[num].upper(), self.name, event]
        parts.extend(f"{k}={_format_value(v)}" for k, v in fields.items())
        print(" ".join(parts), file=_stream or sys.stderr)

    def error(self, event: str, **fields: Any) -> None:
        self._emit(1, event, fields)

    def warn(self, event: str, **fields: Any) -> None:
        self._emit(2, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._emit(3, event, fields)

    def debug(self, event: str, **fields: Any) -> None:
        self._emit(4, event, fields)


_loggers: dict[str, Logger] = {}


def get_logger(name: str) -> Logger:
    """The shared :class:`Logger` for ``name`` (created on first use)."""
    try:
        return _loggers[name]
    except KeyError:
        logger = _loggers[name] = Logger(name)
        return logger

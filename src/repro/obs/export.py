"""Trace exporters: Chrome trace-event JSON, JSONL, and text summary.

The Chrome exporter targets the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
as loaded by ``chrome://tracing`` / Perfetto: one *process* row per
simulated node (plus one for the coordinator), complete ``"X"`` duration
events for spans and ``"i"`` instant events for point occurrences.
Because span placement comes from the deterministic logical clock, tick
values are emitted directly as microseconds — the x-axis is logical work,
not wall time; advisory wall durations ride along in ``args.wall_us``.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from repro.obs.tracer import Span, TraceEvent

__all__ = [
    "chrome_trace",
    "validate_chrome",
    "to_jsonl",
    "summary_text",
    "write_trace",
    "TRACE_FORMATS",
]

TRACE_FORMATS = ("chrome", "jsonl", "summary")

#: pid reserved for coordinator-side spans (node == "").
_COORDINATOR_PID = 1
_COORDINATOR_NAME = "coordinator"


def _pid_map(spans: Sequence[Span], events: Sequence[TraceEvent]) -> dict[str, int]:
    """Stable node → pid assignment: coordinator first, then sorted nodes."""
    nodes = sorted({r.node for r in spans if r.node} | {r.node for r in events if r.node})
    pids = {"": _COORDINATOR_PID}
    for i, node in enumerate(nodes):
        pids[node] = _COORDINATOR_PID + 1 + i
    return pids


def _span_args(span: Span) -> dict[str, Any]:
    args: dict[str, Any] = {}
    if span.task:
        args["task"] = span.task
    args.update(span.args)
    # Advisory only: rounded wall-clock µs, kept out of the timeline axes.
    args["wall_us"] = int(span.wall_s * 1e6)
    return args


def chrome_trace(
    spans: Sequence[Span],
    events: Sequence[TraceEvent] = (),
    *,
    job_name: str = "",
    metrics: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Render spans/events as a ``chrome://tracing``-loadable object."""
    pids = _pid_map(spans, events)
    trace_events: list[dict[str, Any]] = []
    for node, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": node or _COORDINATOR_NAME},
            }
        )
        trace_events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": pid},
            }
        )
    for span in spans:
        trace_events.append(
            {
                "name": span.name,
                "cat": span.cat or "span",
                "ph": "X",
                "ts": span.t0,
                "dur": max(1, span.t1 - span.t0),
                "pid": pids[span.node],
                "tid": 1,
                "args": _span_args(span),
            }
        )
    for event in events:
        args: dict[str, Any] = {}
        if event.task:
            args["task"] = event.task
        args.update(event.args)
        trace_events.append(
            {
                "name": event.name,
                "cat": event.cat or "event",
                "ph": "i",
                "s": "p",
                "ts": event.ts,
                "pid": pids[event.node],
                "tid": 1,
                "args": args,
            }
        )
    other: dict[str, Any] = {
        "job": job_name,
        "clock": "logical (1 tick = 1 record-equivalent of work, shown as 1us)",
    }
    if metrics:
        other["metrics"] = metrics
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def validate_chrome(obj: Any) -> list[str]:
    """Structural checks for a Chrome trace object; returns error strings."""
    errors: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    trace_events = obj.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["missing or non-list 'traceEvents'"]
    for i, ev in enumerate(trace_events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            errors.append(f"{where}: missing 'name'")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            errors.append(f"{where}: unsupported ph {ph!r}")
            continue
        if not isinstance(ev.get("pid"), int):
            errors.append(f"{where}: missing integer 'pid'")
        if not isinstance(ev.get("tid"), int):
            errors.append(f"{where}: missing integer 'tid'")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: missing non-negative 'ts'")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 1:
                errors.append(f"{where}: 'X' event needs 'dur' >= 1")
    return errors


def to_jsonl(
    spans: Sequence[Span],
    events: Sequence[TraceEvent] = (),
    *,
    metrics: dict[str, Any] | None = None,
    job_name: str = "",
) -> str:
    """One JSON object per line, ordered by logical start tick.

    With ``metrics`` (a ``Metrics.as_report()`` mapping) and/or
    ``job_name``, trailing ``metric``/leading ``meta`` records are
    emitted so the file round-trips through ``repro analyze`` with the
    full report intact.
    """
    records: list[tuple[int, int, dict[str, Any]]] = []
    for i, s in enumerate(spans):
        records.append(
            (
                s.t0,
                i,
                {
                    "type": "span",
                    "name": s.name,
                    "cat": s.cat,
                    "t0": s.t0,
                    "t1": s.t1,
                    "node": s.node,
                    "task": s.task,
                    "wall_us": int(s.wall_s * 1e6),
                    "args": s.args,
                },
            )
        )
    for i, e in enumerate(events):
        records.append(
            (
                e.ts,
                len(spans) + i,
                {
                    "type": "event",
                    "name": e.name,
                    "cat": e.cat,
                    "ts": e.ts,
                    "node": e.node,
                    "task": e.task,
                    "args": e.args,
                },
            )
        )
    records.sort(key=lambda r: (r[0], r[1]))
    lines = [json.dumps(r[2], sort_keys=True) for r in records]
    if job_name:
        lines.insert(0, json.dumps({"type": "meta", "job": job_name}, sort_keys=True))
    for name in sorted(metrics or ()):
        lines.append(
            json.dumps(
                {"type": "metric", "name": name, "metric": metrics[name]},
                sort_keys=True,
            )
        )
    return "\n".join(lines) + "\n"


def summary_text(
    spans: Sequence[Span],
    events: Sequence[TraceEvent] = (),
    *,
    job_name: str = "",
) -> str:
    """Human-oriented phase table + activity sparklines + recovery timeline."""
    from repro.obs.series import span_activity
    from repro.obs.timeline import phase_table, recovery_timeline

    from repro.analysis.series import sparkline

    lines: list[str] = []
    title = f"trace summary: {job_name}" if job_name else "trace summary"
    lines.append(phase_table(spans, title=title))
    cats = ("map", "sort", "spill", "merge", "shuffle", "reduce", "cache")
    active = [c for c in cats if any(s.cat == c for s in spans)]
    if active:
        lines.append("")
        lines.append("activity over logical time (fraction of ticks busy):")
        for cat in active:
            _centers, busy = span_activity(spans, cat=cat, bins=60)
            lines.append(f"  {cat:8s} {sparkline(busy, width=60)}")
    recovery = recovery_timeline(events)
    if recovery:
        lines.append("")
        lines.append(recovery)
    return "\n".join(lines) + "\n"


def write_trace(
    path: str,
    fmt: str,
    spans: Sequence[Span],
    events: Sequence[TraceEvent] = (),
    *,
    job_name: str = "",
    metrics: dict[str, Any] | None = None,
) -> None:
    """Serialise a trace to ``path`` in the requested format."""
    if fmt == "chrome":
        payload = json.dumps(
            chrome_trace(spans, events, job_name=job_name, metrics=metrics),
            sort_keys=True,
        )
        text = payload + "\n"
    elif fmt == "jsonl":
        text = to_jsonl(spans, events, metrics=metrics, job_name=job_name)
    elif fmt == "summary":
        text = summary_text(spans, events, job_name=job_name)
    else:
        raise ValueError(f"unknown trace format {fmt!r}; expected one of {TRACE_FORMATS}")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)

"""The span/event name registry: the tracing vocabulary, in one place.

Every span or event an engine records must use a name declared here —
the REP005 lint rule enforces it.  Exporters, the phase tables and the
CI trace-validation job all key on this vocabulary; an unregistered
name would silently fall out of every downstream view.

When instrumenting a new site, add its name here first (and to the
span-model table in ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

__all__ = ["EVENT_NAMES", "SPAN_NAMES"]

#: Closed-interval work attribution (``tracer.span``/``tracer.add_span``).
SPAN_NAMES = frozenset(
    {
        # per-task phases
        "map",
        "sort",
        "combine",
        "spill",
        "merge",
        "shuffle",
        "fetch",
        "push",
        "reduce",
        "snapshot",
        "checkpoint",
        "replay",
        # journal resume: committed output re-emitted without recompute
        "journal-replay",
        # partition-cache spill: cached block bytes re-encoded to local disk
        "batch.encode",
        # whole-phase envelopes (recorded via ``add_span``)
        "map-phase",
        "reduce-phase",
    }
)

#: Instantaneous occurrences (``tracer.event``).
EVENT_NAMES = frozenset(
    {
        "node.crash",
        "task.killed",
        "map.rerun",
        "hash.spill",
        "shuffle.fetch_failed",
        "checkpoint.saved",
        "checkpoint.restored",
        "speculative.launched",
        "speculative.win",
        "speculative.lost",
        # coordinator journal / crashpoint chaos
        "journal.resume",
        "journal.commit",
        "journal.truncated",
        "chaos.crashpoint",
        # chained-job partition cache
        "cache.register",
        "cache.spill",
    }
)

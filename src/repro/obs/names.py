"""The span/event/metric name registry: the tracing vocabulary, in one place.

Every span, event or metric an engine records must use a name declared
here — lint rules REP005/REP104 (spans/events) and REP008 (metrics)
enforce it.  Exporters, the phase tables, the analyzer and the CI
trace-validation job all key on this vocabulary; an unregistered name
would silently fall out of every downstream view.

When instrumenting a new site, add its name here first (and to the
span-model table in ``docs/OBSERVABILITY.md``).  The registry is also
audited the other way: ``tests/obs/test_names_registry.py`` runs the
engine matrix and fails on any registered name no code path emits, so
dead vocabulary cannot accumulate.
"""

from __future__ import annotations

__all__ = ["EVENT_NAMES", "METRIC_NAMES", "SPAN_NAMES"]

#: Closed-interval work attribution (``tracer.span``/``tracer.add_span``).
SPAN_NAMES = frozenset(
    {
        # per-task phases ("shuffle" and "checkpoint" are span *categories*
        # only, not names — the name audit removed them from this set)
        "map",
        "sort",
        "combine",
        "spill",
        "merge",
        "fetch",
        "push",
        "reduce",
        "snapshot",
        "replay",
        # journal resume: committed output re-emitted without recompute
        "journal-replay",
        # partition-cache spill: cached block bytes re-encoded to local disk
        "batch.encode",
        # whole-phase envelopes (recorded via ``add_span``)
        "map-phase",
        "reduce-phase",
    }
)

#: Instantaneous occurrences (``tracer.event``).
EVENT_NAMES = frozenset(
    {
        "node.crash",
        "task.killed",
        "map.rerun",
        "hash.spill",
        "shuffle.fetch_failed",
        "checkpoint.saved",
        "checkpoint.restored",
        "speculative.launched",
        "speculative.win",
        "speculative.lost",
        # coordinator journal / crashpoint chaos
        "journal.resume",
        "journal.commit",
        "journal.truncated",
        "chaos.crashpoint",
        # chained-job partition cache
        "cache.register",
        "cache.spill",
    }
)

#: Distribution/level metrics (``tracer.metrics.histogram``/``.gauge``);
#: validated at first use by :class:`repro.obs.metrics.Metrics` and
#: statically by lint rule REP008.
METRIC_NAMES = frozenset(
    {
        # histograms
        "map.sort.records",  # map-side buffer sort sizes (worker-side)
        "shuffle.segment.bytes",  # hadoop fetch segment sizes
        "push.chunk.bytes",  # pipelined push chunk sizes (hop/one-pass)
        # gauges (tick-keyed levels)
        "hash.resident.keys",  # one-pass incremental hash residency at finish
        "cache.resident.bytes",  # partition-cache residency after a spill
    }
)

"""Binned time series over the logical clock.

Reproduces the *shape* of the paper's Fig. 2(b-f) from real-engine spans:
per-bin busy fraction (the CPU-utilisation curves) and per-bin byte rates
(the disk/network I/O curves).  The x-axis is the deterministic logical
clock, so the same job yields the same curve on every executor; rendering
goes through :mod:`repro.analysis.series` (``sparkline`` and the shape
predicates such as ``find_valley``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.obs.tracer import Span

__all__ = ["span_activity", "bytes_rate"]


def _clip(spans: Sequence[Span], cat: str | None, node: str | None) -> list[Span]:
    out = []
    for s in spans:
        if cat is not None and s.cat != cat:
            continue
        if node is not None and s.node != node:
            continue
        out.append(s)
    return out


def _bin_edges(spans: Sequence[Span], bins: int) -> np.ndarray:
    t_end = max((s.t1 for s in spans), default=1)
    return np.linspace(0.0, float(max(t_end, 1)), bins + 1)


def span_activity(
    spans: Sequence[Span],
    *,
    cat: str | None = None,
    node: str | None = None,
    bins: int = 60,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-bin busy fraction: ``(bin_centers, busy)`` with busy in [0, 1+].

    Each span contributes the overlap of ``[t0, t1)`` with every bin;
    values can exceed 1 where spans of the category overlap (e.g. a phase
    envelope over its member spans) — the curve shape is what matters.
    """
    edges = _bin_edges(spans, bins)
    centers = (edges[:-1] + edges[1:]) / 2.0
    busy = np.zeros(bins)
    width = edges[1] - edges[0] if bins else 1.0
    for s in _clip(spans, cat, node):
        overlap = np.minimum(edges[1:], s.t1) - np.maximum(edges[:-1], s.t0)
        busy += np.clip(overlap, 0.0, None)
    return centers, busy / max(width, 1e-12)


def bytes_rate(
    spans: Sequence[Span],
    *,
    key: str = "bytes",
    cat: str | None = None,
    node: str | None = None,
    bins: int = 60,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-bin byte rate: span ``args[key]`` spread uniformly over its span.

    Returns ``(bin_centers, bytes_per_tick)``; spans without ``key`` in
    their args contribute nothing.
    """
    edges = _bin_edges(spans, bins)
    centers = (edges[:-1] + edges[1:]) / 2.0
    rate = np.zeros(bins)
    width = edges[1] - edges[0] if bins else 1.0
    for s in _clip(spans, cat, node):
        nbytes = float(s.args.get(key, 0) or 0)
        if nbytes <= 0:
            continue
        duration = max(s.t1 - s.t0, 1)
        overlap = np.minimum(edges[1:], s.t1) - np.maximum(edges[:-1], s.t0)
        rate += np.clip(overlap, 0.0, None) * (nbytes / duration)
    return centers, rate / max(width, 1e-12)

"""Assembling and rendering performance-analysis reports.

:func:`analyze_model` runs every analysis pass — phase attribution,
critical path, barrier/pipelining metrics, skew/straggler accounting,
metrics registry — over one :class:`~repro.obs.analyze.model.TraceModel`
and returns a single plain-data report (schema ``repro.analyze/v1``).
:func:`analyze_journal` produces the journal counterpart (schema
``repro.analyze.journal/v1``) from a job journal's *converged* committed
state — the same report whether the journal came from an uninterrupted
run or a crash-and-resume, which is exactly the exactly-once guarantee
the chaos harness proves.

Renderers: :func:`render_json` (canonical — sorted keys, the form CI
validates with :func:`validate_report`), :func:`render_text` (terminal),
:func:`render_html` (self-contained static page, uploaded as a CI
artifact).  No renderer touches wall-clock fields, so every output is
byte-identical across the Serial/Thread/MP executors and under seeded
fault plans.
"""

from __future__ import annotations

import json
from html import escape
from typing import Any, Mapping

from repro.obs.analyze.barriers import barrier_report
from repro.obs.analyze.critical_path import critical_path
from repro.obs.analyze.model import TraceModel, model_from_tracer
from repro.obs.analyze.skew import skew_report
from repro.obs.timeline import PHASE_ORDER

__all__ = [
    "SCHEMA",
    "JOURNAL_SCHEMA",
    "REPORT_FORMATS",
    "analyze_model",
    "analyze_tracer",
    "analyze_journal",
    "render_json",
    "render_text",
    "render_html",
    "validate_report",
]

SCHEMA = "repro.analyze/v1"
JOURNAL_SCHEMA = "repro.analyze.journal/v1"
REPORT_FORMATS = ("terminal", "json", "html")

#: Rows of the terminal critical-path table (the JSON keeps the full chain).
_CHAIN_ROWS = 15


def _phase_rank(cat: str) -> tuple[int, str]:
    try:
        return (PHASE_ORDER.index(cat), cat)
    except ValueError:
        return (len(PHASE_ORDER), cat)


def _phases(model: TraceModel) -> dict[str, dict[str, Any]]:
    """Per-category span counts/ticks/shares (wall-free, unlike phase_totals).

    Phase-envelope spans (``cat == "phase"``) cover the whole run and
    would dilute every share, so attribution is over work spans only and
    shares sum to 100%.
    """
    agg: dict[str, dict[str, int]] = {}
    for s in model.spans:
        if s.cat == "phase":
            continue
        row = agg.setdefault(s.cat or "other", {"spans": 0, "ticks": 0})
        row["spans"] += 1
        row["ticks"] += s.t1 - s.t0
    grand = sum(r["ticks"] for r in agg.values()) or 1
    return {
        cat: {
            "spans": agg[cat]["spans"],
            "ticks": agg[cat]["ticks"],
            "share": round(agg[cat]["ticks"] / grand, 4),
        }
        for cat in sorted(agg, key=_phase_rank)
    }


def analyze_model(model: TraceModel) -> dict[str, Any]:
    """The full performance report for one run's trace."""
    return {
        "schema": SCHEMA,
        "job": model.job_name,
        "makespan": model.makespan,
        "spans": len(model.spans),
        "events": len(model.events),
        "phases": _phases(model),
        "critical_path": critical_path(model.spans),
        "barriers": barrier_report(model.spans),
        "skew": skew_report(model.spans, model.events),
        "metrics": {name: model.metrics[name] for name in sorted(model.metrics)},
    }


def analyze_tracer(tracer: Any, *, job_name: str = "") -> dict[str, Any]:
    """Convenience: analyze a live tracer (``repro run --analyze``)."""
    return analyze_model(model_from_tracer(tracer, job_name=job_name))


def analyze_journal(journal_dir: str, *, detail: bool = False) -> dict[str, Any]:
    """Report a journal's committed state.

    Only *converged* quantities appear by default — the commits the
    exactly-once protocol guarantees identical between an uninterrupted
    run and any crash-and-resume of it.  ``detail=True`` adds the
    per-session log statistics (grants, checkpoints, truncated bytes),
    which legitimately differ between those histories.
    """
    from repro.mapreduce.journal import JobJournal

    journal = JobJournal(journal_dir)
    state = journal.resume_state()
    report: dict[str, Any] = {
        "schema": JOURNAL_SCHEMA,
        "engine": state.engine or "",
        "spec": state.spec or "",
        "run_config": state.run_config or {},
        "maps_committed": len(state.map_commits),
        "shuffles_committed": len(state.shuffle_commits),
        "reduce_commits": {
            f"{p:03d}": len(records)
            for p, records in sorted(state.reduce_commits.items())
        },
        "output": {
            "commits": state.output_commits,
            "records": sum(len(r) for r in state.reduce_commits.values()),
            "digest": state.output_digest or "",
        },
    }
    if detail:
        report["session"] = {
            "records": len(journal.records),
            "task_grants": len(state.task_grants),
            "checkpoints": len(state.checkpoints),
            "truncated_bytes": state.truncated_bytes,
        }
    return report


# -- rendering ----------------------------------------------------------------


def render_json(report: Mapping[str, Any]) -> str:
    """Canonical serialisation: sorted keys, two-space indent, newline."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def _pct(ratio: Any) -> str:
    return f"{100.0 * float(ratio):.2f}%"


def _trace_sections(report: Mapping[str, Any]) -> list[tuple[str, Any]]:
    """(title, table-ish payload) sections shared by text and HTML output.

    Payloads are either ``(headers, rows)`` tuples or ``{k: v}`` blocks.
    """
    phases = report["phases"]
    cp = report["critical_path"]
    barriers = report["barriers"]
    skew = report["skew"]

    sections: list[tuple[str, Any]] = []
    sections.append(
        (
            f"phase attribution ({report['spans']} spans, makespan "
            f"{report['makespan']} ticks)",
            (
                ("phase", "spans", "ticks", "share"),
                [
                    (cat, row["spans"], row["ticks"], _pct(row["share"]))
                    for cat, row in phases.items()
                ],
            ),
        )
    )
    chain = cp["chain"]
    shown = chain[:_CHAIN_ROWS]
    title = (
        f"critical path: {cp['total_ticks']} ticks "
        f"({_pct(cp['share'])} of makespan, {cp['spans_on_path']} spans"
        + (f", top {len(shown)} shown" if len(chain) > len(shown) else "")
        + ")"
    )
    sections.append(
        (
            title,
            (
                ("t0", "t1", "ticks", "span", "cat", "task", "node"),
                [
                    (
                        s["t0"],
                        s["t1"],
                        s["ticks"],
                        s["name"],
                        s["cat"],
                        s["task"] or "-",
                        s["node"] or "-",
                    )
                    for s in sorted(
                        shown, key=lambda s: -s["ticks"]
                    )
                ],
            ),
        )
    )
    sections.append(
        (
            "barriers & pipelining",
            {
                "map window": f"[{barriers['map_window'][0]}, {barriers['map_window'][1]}]",
                "reduce window": (
                    f"[{barriers['reduce_window'][0]}, {barriers['reduce_window'][1]}]"
                ),
                "map/reduce overlap": _pct(barriers["map_reduce_overlap"]),
                "pipelining efficiency": _pct(barriers["pipelining_efficiency"]),
                "barrier stall (ticks)": barriers["barrier_stall_ticks"],
                "sort-merge blocking (ticks)": barriers["sort_merge_ticks"],
                "sort-merge share": _pct(barriers["sort_merge_share"]),
            },
        )
    )
    skew_block: dict[str, Any] = {
        "partition CoV": skew["partition_cov"],
        "partition max/mean": skew["partition_max_over_mean"],
        "node imbalance (max/mean)": skew["node_imbalance"],
        "stragglers": ", ".join(skew["stragglers"]) or "none",
        "speculation launched/won/lost": (
            f"{skew['speculation']['launched']}/"
            f"{skew['speculation']['wins']}/{skew['speculation']['losses']}"
        ),
    }
    for name, count in skew["recovery_events"].items():
        skew_block[f"recovery: {name}"] = count
    sections.append(("skew & stragglers", skew_block))
    if report["metrics"]:
        rows = []
        for name in sorted(report["metrics"]):
            m = report["metrics"][name]
            if m["type"] == "histogram":
                rows.append(
                    (name, "histogram", m["count"], m["total"], len(m["buckets"]))
                )
            else:
                rows.append((name, "gauge", m["count"], m["last"], m["max"]))
        sections.append(
            (
                "metrics",
                (("metric", "type", "count", "total/last", "buckets/max"), rows),
            )
        )
    return sections


def _journal_sections(report: Mapping[str, Any]) -> list[tuple[str, Any]]:
    block: dict[str, Any] = {
        "engine": report["engine"] or "-",
        "job spec": report["spec"] or "-",
        "maps committed": report["maps_committed"],
        "shuffles committed": report["shuffles_committed"],
        "reduce partitions committed": len(report["reduce_commits"]),
        "output commits": report["output"]["commits"],
        "output records": report["output"]["records"],
        "output digest": report["output"]["digest"] or "-",
    }
    session = report.get("session")
    if session:
        block["journal records (this history)"] = session["records"]
        block["task grants (this history)"] = session["task_grants"]
        block["checkpoints (this history)"] = session["checkpoints"]
        block["truncated bytes (this history)"] = session["truncated_bytes"]
    sections: list[tuple[str, Any]] = [("journal committed state", block)]
    if report["reduce_commits"]:
        sections.append(
            (
                "committed reduce partitions",
                (
                    ("partition", "records"),
                    [(p, n) for p, n in report["reduce_commits"].items()],
                ),
            )
        )
    return sections


def _sections(report: Mapping[str, Any]) -> list[tuple[str, Any]]:
    if report.get("schema") == JOURNAL_SCHEMA:
        return _journal_sections(report)
    return _trace_sections(report)


def render_text(report: Mapping[str, Any]) -> str:
    """Terminal rendering: aligned tables, one section per analysis."""
    # Lazy: repro.analysis pulls in the engines (circular through obs).
    from repro.analysis.tables import format_kv, format_table

    head = "performance analysis"
    job = report.get("job") or report.get("engine")
    if job:
        head += f": {job}"
    parts = [head, "=" * len(head)]
    for title, payload in _sections(report):
        parts.append("")
        if isinstance(payload, tuple):
            headers, rows = payload
            parts.append(format_table(headers, rows, title=title))
        else:
            parts.append(format_kv(payload, title=title))
    return "\n".join(parts) + "\n"


_HTML_STYLE = (
    "body{font:14px/1.5 system-ui,sans-serif;margin:2rem;color:#1a2a33}"
    "h1{font-size:1.3rem}h2{font-size:1.05rem;margin-top:1.6rem}"
    "table{border-collapse:collapse;margin:.4rem 0}"
    "td,th{border:1px solid #c5d2d9;padding:.25rem .6rem;text-align:left}"
    "th{background:#eef4f7}tr:nth-child(even) td{background:#f7fafb}"
)


def render_html(report: Mapping[str, Any]) -> str:
    """A self-contained static HTML report (the CI artifact)."""
    job = report.get("job") or report.get("engine") or ""
    title = "performance analysis" + (f": {job}" if job else "")
    out = [
        "<!doctype html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>{escape(title)}</h1>",
        f"<p>schema <code>{escape(str(report.get('schema', '')))}</code></p>",
    ]
    for section_title, payload in _sections(report):
        out.append(f"<h2>{escape(section_title)}</h2>")
        out.append("<table>")
        if isinstance(payload, tuple):
            headers, rows = payload
            out.append(
                "<tr>" + "".join(f"<th>{escape(str(h))}</th>" for h in headers) + "</tr>"
            )
            for row in rows:
                out.append(
                    "<tr>"
                    + "".join(f"<td>{escape(str(v))}</td>" for v in row)
                    + "</tr>"
                )
        else:
            out.append("<tr><th>metric</th><th>value</th></tr>")
            for k, v in payload.items():
                out.append(
                    f"<tr><td>{escape(str(k))}</td><td>{escape(str(v))}</td></tr>"
                )
        out.append("</table>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


# -- validation (CI checks every JSON report against this) --------------------


def _expect(obj: Mapping[str, Any], key: str, types: tuple, errors: list[str], where: str) -> Any:
    value = obj.get(key)
    if not isinstance(value, types):
        expected = "/".join(t.__name__ for t in types)
        errors.append(f"{where}.{key}: expected {expected}, got {type(value).__name__}")
        return None
    return value


def validate_report(obj: Any) -> list[str]:
    """Structural checks for an analyzer report; returns error strings."""
    errors: list[str] = []
    if not isinstance(obj, Mapping):
        return [f"top level must be an object, got {type(obj).__name__}"]
    schema = obj.get("schema")
    if schema == JOURNAL_SCHEMA:
        for key, types in (
            ("engine", (str,)),
            ("maps_committed", (int,)),
            ("reduce_commits", (Mapping,)),
            ("output", (Mapping,)),
        ):
            _expect(obj, key, types, errors, "report")
        output = obj.get("output")
        if isinstance(output, Mapping):
            for key in ("commits", "records"):
                _expect(output, key, (int,), errors, "output")
        return errors
    if schema != SCHEMA:
        return [f"unknown schema {schema!r} (expected {SCHEMA} or {JOURNAL_SCHEMA})"]
    for key, types in (
        ("job", (str,)),
        ("makespan", (int,)),
        ("spans", (int,)),
        ("events", (int,)),
        ("phases", (Mapping,)),
        ("critical_path", (Mapping,)),
        ("barriers", (Mapping,)),
        ("skew", (Mapping,)),
        ("metrics", (Mapping,)),
    ):
        _expect(obj, key, types, errors, "report")
    phases = obj.get("phases")
    if isinstance(phases, Mapping):
        for cat, row in phases.items():
            if not isinstance(row, Mapping):
                errors.append(f"phases[{cat!r}]: not an object")
                continue
            for key in ("spans", "ticks"):
                _expect(row, key, (int,), errors, f"phases[{cat!r}]")
            _expect(row, "share", (int, float), errors, f"phases[{cat!r}]")
    cp = obj.get("critical_path")
    if isinstance(cp, Mapping):
        for key in ("total_ticks", "makespan", "spans_on_path"):
            _expect(cp, key, (int,), errors, "critical_path")
        chain = _expect(cp, "chain", (list,), errors, "critical_path")
        if chain is not None:
            for i, step in enumerate(chain):
                if not isinstance(step, Mapping):
                    errors.append(f"critical_path.chain[{i}]: not an object")
                    continue
                for key in ("t0", "t1", "ticks"):
                    _expect(step, key, (int,), errors, f"chain[{i}]")
                _expect(step, "name", (str,), errors, f"chain[{i}]")
    barriers = obj.get("barriers")
    if isinstance(barriers, Mapping):
        for key in (
            "window_overlap_ticks",
            "pipelined_reduce_ticks",
            "barrier_stall_ticks",
            "sort_merge_ticks",
            "work_ticks",
        ):
            _expect(barriers, key, (int,), errors, "barriers")
        for key in ("map_reduce_overlap", "pipelining_efficiency", "sort_merge_share"):
            _expect(barriers, key, (int, float), errors, "barriers")
    skew = obj.get("skew")
    if isinstance(skew, Mapping):
        _expect(skew, "partitions", (Mapping,), errors, "skew")
        _expect(skew, "stragglers", (list,), errors, "skew")
        _expect(skew, "speculation", (Mapping,), errors, "skew")
        _expect(skew, "partition_cov", (int, float), errors, "skew")
    return errors

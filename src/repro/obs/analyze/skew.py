"""Skew and straggler attribution from spans and recovery events.

Three independent views of imbalance:

* **partition skew** — total logical ticks charged to each reduce
  partition; the coefficient of variation (population stddev / mean)
  summarises how lopsided the key distribution was, and partitions
  beyond 1.5x the mean are flagged as stragglers;
* **node imbalance** — busy ticks per simulated node (max / mean), the
  cluster-level symptom partition skew causes;
* **speculation accounting** — how many backup attempts launched and
  how many actually won, from the recovery events the engines emit.

Deterministic by construction: tick sums are integers, derived ratios
round to four decimals, and all listings sort on stable keys.
"""

from __future__ import annotations

from math import sqrt
from typing import Any, Sequence

from repro.obs.tracer import Span, TraceEvent

__all__ = ["skew_report"]

#: A partition is a straggler when its ticks exceed mean by this factor.
STRAGGLER_FACTOR = 1.5


def _cov(values: Sequence[int]) -> float:
    """Population coefficient of variation, rounded for report stability."""
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return round(sqrt(var) / mean, 4)


def skew_report(
    spans: Sequence[Span], events: Sequence[TraceEvent] = ()
) -> dict[str, Any]:
    """Partition/node/speculation imbalance, as a report fragment."""
    work = [s for s in spans if s.cat != "phase"]

    partition_ticks: dict[str, int] = {}
    partition_bytes: dict[str, int] = {}
    for s in work:
        if not s.task.startswith("reduce:"):
            continue
        partition_ticks[s.task] = partition_ticks.get(s.task, 0) + (s.t1 - s.t0)
        nbytes = s.args.get("bytes")
        if isinstance(nbytes, int):
            partition_bytes[s.task] = partition_bytes.get(s.task, 0) + nbytes

    node_ticks: dict[str, int] = {}
    for s in work:
        if s.node:
            node_ticks[s.node] = node_ticks.get(s.node, 0) + (s.t1 - s.t0)

    ticks = [partition_ticks[t] for t in sorted(partition_ticks)]
    mean_ticks = sum(ticks) / len(ticks) if ticks else 0.0
    stragglers = sorted(
        task
        for task, t in partition_ticks.items()
        if mean_ticks and t > STRAGGLER_FACTOR * mean_ticks
    )

    node_values = [node_ticks[n] for n in sorted(node_ticks)]
    node_imbalance = (
        round(max(node_values) / (sum(node_values) / len(node_values)), 4)
        if node_values and sum(node_values)
        else 0.0
    )

    launched = sum(1 for e in events if e.name == "speculative.launched")
    wins = [e for e in events if e.name == "speculative.win"]
    losses = sum(1 for e in events if e.name == "speculative.lost")

    recovery_events: dict[str, int] = {}
    for e in events:
        if e.cat == "recovery":
            recovery_events[e.name] = recovery_events.get(e.name, 0) + 1

    return {
        "partitions": {
            task: {
                "ticks": partition_ticks[task],
                "bytes": partition_bytes.get(task, 0),
            }
            for task in sorted(partition_ticks)
        },
        "partition_cov": _cov(ticks),
        "partition_max_over_mean": (
            round(max(ticks) / mean_ticks, 4) if mean_ticks else 0.0
        ),
        "stragglers": stragglers,
        "nodes": {n: node_ticks[n] for n in sorted(node_ticks)},
        "node_imbalance": node_imbalance,
        "speculation": {
            "launched": launched,
            "wins": len(wins),
            "losses": losses,
            "winning_tasks": sorted({e.task for e in wins if e.task}),
        },
        "recovery_events": dict(sorted(recovery_events.items())),
    }

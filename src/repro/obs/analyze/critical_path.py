"""Critical-path extraction over the span DAG.

Spans form a dependency DAG:

* **program order** within one task attempt — a task's spans execute
  sequentially on its logical timeline, so each span depends on the
  latest span of the same task that finished at or before its start;
* **shuffle edges** across tasks — a Hadoop ``fetch`` span and a
  one-pass ``push`` span carry the producing map task id in their
  ``map_task`` arg; a HOP ``push`` span carries the reduce partitions
  it fed in its ``partitions`` arg.  Both become edges from producer to
  consumer;
* **barrier edges** fall out of the above: the sort-merge reduce phase
  depends on every map task through its fetch spans, so a blocking
  barrier shows up as a critical path threading the slowest map.

The critical path is the longest chain by logical ticks.  Every node
also gets a **slack**: how many ticks its duration could grow before it
lands on the critical path (zero for spans already on it).  All
arithmetic is integer tick math over the deterministic logical clock;
ties break on the smallest span index, so the result is byte-identical
across executors.

Phase-envelope spans (``cat == "phase"``) cover whole phases and would
trivially dominate any chain, so they are excluded from the DAG.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.obs.tracer import Span

__all__ = ["critical_path"]


class _Node:
    __slots__ = ("idx", "span", "preds", "succs", "finish", "tail", "best_pred")

    def __init__(self, idx: int, span: Span) -> None:
        self.idx = idx
        self.span = span
        self.preds: list[int] = []
        self.succs: list[int] = []
        self.finish = 0  # longest-chain ticks ending at (and including) this span
        self.tail = 0  # longest-chain ticks starting at (and including) this span
        self.best_pred: int | None = None

    @property
    def ticks(self) -> int:
        return self.span.t1 - self.span.t0


def _build_dag(spans: Sequence[Span]) -> list[_Node]:
    nodes = [
        _Node(i, s) for i, s in enumerate(spans) if s.cat != "phase"
    ]
    # Topological + deterministic: every edge u -> v satisfies
    # u.t1 <= v.t0 and u.t0 < u.t1, hence u.t0 < v.t0 — sorting by
    # (t0, t1, idx) is a valid processing order.
    nodes.sort(key=lambda n: (n.span.t0, n.span.t1, n.idx))
    order = {n.idx: pos for pos, n in enumerate(nodes)}

    by_task: dict[str, list[_Node]] = {}
    for n in nodes:
        if n.span.task:
            by_task.setdefault(n.span.task, []).append(n)

    def link(u: _Node, v: _Node) -> None:
        if u is v:
            return
        v.preds.append(order[u.idx])
        u.succs.append(order[v.idx])

    def latest_before(task: str, tick: int) -> _Node | None:
        """The task's latest-finishing span with t1 <= tick (max t1, max idx)."""
        best: _Node | None = None
        for cand in by_task.get(task, ()):
            if cand.span.t1 <= tick and (
                best is None
                or (cand.span.t1, cand.idx) > (best.span.t1, best.idx)
            ):
                best = cand
        return best

    for v in nodes:
        span = v.span
        # program order within the task attempt
        if span.task:
            pred = latest_before(span.task, span.t0)
            if pred is not None:
                link(pred, v)
        # shuffle edge: consumer span names its producing map task
        map_task = span.args.get("map_task")
        if isinstance(map_task, int):
            producer = latest_before(f"map:{map_task:05d}", span.t0)
            if producer is not None:
                link(producer, v)
        # pipelined push edge: producer span names the partitions it fed
        partitions = span.args.get("partitions")
        if isinstance(partitions, (list, tuple)):
            for p in partitions:
                consumer = _first_after(by_task.get(f"reduce:{int(p):03d}", ()), span.t1)
                if consumer is not None:
                    link(v, consumer)
    return nodes


def _first_after(candidates: Sequence[_Node], tick: int) -> _Node | None:
    """The earliest-starting span with t0 >= tick (min t0, min idx)."""
    best: _Node | None = None
    for cand in candidates:
        if cand.span.t0 >= tick and (
            best is None or (cand.span.t0, cand.idx) < (best.span.t0, best.idx)
        ):
            best = cand
    return best


def critical_path(spans: Sequence[Span], *, max_chain: int | None = None) -> dict[str, Any]:
    """Longest dependency chain and per-span slack, as a report fragment.

    Returns a plain-data dict (JSON-ready)::

        {"total_ticks", "makespan", "share", "spans_on_path",
         "by_cat": {cat: ticks on the path},
         "chain": [{"name","cat","task","node","t0","t1","ticks"}...],
         "slack": {"zero", "mean", "max"}}
    """
    nodes = _build_dag(spans)
    if not nodes:
        return {
            "total_ticks": 0,
            "makespan": 0,
            "share": 0.0,
            "spans_on_path": 0,
            "by_cat": {},
            "chain": [],
            "slack": {"zero": 0, "mean": 0.0, "max": 0},
        }

    for pos, node in enumerate(nodes):
        best = 0
        best_pred: int | None = None
        for ppos in node.preds:
            pf = nodes[ppos].finish
            if pf > best or (pf == best and best_pred is not None and ppos < best_pred):
                best = pf
                best_pred = ppos
        node.finish = best + node.ticks
        node.best_pred = best_pred
    for node in reversed(nodes):
        best = 0
        for spos in node.succs:
            best = max(best, nodes[spos].tail)
        node.tail = best + node.ticks

    total = max(n.finish for n in nodes)
    end = min((n for n in nodes if n.finish == total), key=lambda n: n.idx)

    chain: list[_Node] = []
    cur: _Node | None = end
    while cur is not None:
        chain.append(cur)
        cur = nodes[cur.best_pred] if cur.best_pred is not None else None
    chain.reverse()

    slacks = [total - (n.finish + n.tail - n.ticks) for n in nodes]
    makespan = max(n.span.t1 for n in nodes)
    by_cat: dict[str, int] = {}
    for n in chain:
        cat = n.span.cat or "other"
        by_cat[cat] = by_cat.get(cat, 0) + n.ticks

    steps = chain if max_chain is None else chain[:max_chain]
    return {
        "total_ticks": total,
        "makespan": makespan,
        "share": round(total / makespan, 4) if makespan else 0.0,
        "spans_on_path": len(chain),
        "by_cat": dict(sorted(by_cat.items())),
        "chain": [
            {
                "name": n.span.name,
                "cat": n.span.cat,
                "task": n.span.task,
                "node": n.span.node,
                "t0": n.span.t0,
                "t1": n.span.t1,
                "ticks": n.ticks,
            }
            for n in steps
        ],
        "slack": {
            "zero": sum(1 for s in slacks if s == 0),
            "mean": round(sum(slacks) / len(slacks), 4),
            "max": max(slacks),
        },
    }

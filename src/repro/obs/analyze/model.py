"""Loading traces into an analyzable form.

The analyzer consumes the same artifacts the exporters produce: a live
:class:`repro.obs.Tracer`, a JSONL trace file (``--trace-format jsonl``)
or a Chrome trace-event file (``--trace-format chrome``).  All three
reconstruct to the same :class:`TraceModel` — spans and events on the
logical clock plus the metrics report — so ``repro analyze`` on a file
produces byte-identical reports to ``repro run --analyze`` on the live
run that wrote it.

Wall-clock fields (``wall_s``/``wall_us``) are parsed but never used:
every analyzer quantity is logical-clock arithmetic, which is what makes
reports comparable across the Serial/Thread/MP executors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.obs.tracer import Span, TraceEvent

__all__ = ["TraceModel", "load_trace", "model_from_tracer"]


@dataclass(slots=True)
class TraceModel:
    """One run's trace, normalised for analysis."""

    spans: list[Span] = field(default_factory=list)
    events: list[TraceEvent] = field(default_factory=list)
    #: Plain-data metrics view (``Metrics.as_report()`` shape).
    metrics: dict[str, dict[str, Any]] = field(default_factory=dict)
    job_name: str = ""

    @property
    def makespan(self) -> int:
        """The logical span of the run: the largest tick any span reaches."""
        ends = [s.t1 for s in self.spans] + [e.ts for e in self.events]
        return max(ends) if ends else 0


def model_from_tracer(tracer: Any, *, job_name: str = "") -> TraceModel:
    """Wrap a live tracer (no copying; the tracer stays usable)."""
    return TraceModel(
        spans=list(tracer.spans),
        events=list(tracer.events),
        metrics=tracer.metrics.as_report() if tracer.enabled else {},
        job_name=job_name,
    )


def _span_from_jsonl(obj: dict[str, Any]) -> Span:
    return Span(
        name=obj["name"],
        cat=obj.get("cat", ""),
        t0=int(obj["t0"]),
        t1=int(obj["t1"]),
        node=obj.get("node", ""),
        task=obj.get("task", ""),
        wall_s=float(obj.get("wall_us", 0)) / 1e6,
        args=dict(obj.get("args", {})),
    )


def _event_from_jsonl(obj: dict[str, Any]) -> TraceEvent:
    return TraceEvent(
        name=obj["name"],
        cat=obj.get("cat", ""),
        ts=int(obj["ts"]),
        node=obj.get("node", ""),
        task=obj.get("task", ""),
        args=dict(obj.get("args", {})),
    )


def _load_jsonl(text: str) -> TraceModel:
    model = TraceModel()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        kind = obj.get("type")
        if kind == "span":
            model.spans.append(_span_from_jsonl(obj))
        elif kind == "event":
            model.events.append(_event_from_jsonl(obj))
        elif kind == "metric":
            model.metrics[obj["name"]] = obj["metric"]
        elif kind == "meta":
            model.job_name = obj.get("job", "")
        else:
            raise ValueError(f"unknown jsonl record type {kind!r}")
    return model


def _load_chrome(obj: dict[str, Any]) -> TraceModel:
    events: Sequence[dict[str, Any]] = obj.get("traceEvents", ())
    # pid -> node name, from the process_name metadata rows.
    nodes: dict[int, str] = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            name = ev.get("args", {}).get("name", "")
            nodes[ev["pid"]] = "" if name == "coordinator" else name
    model = TraceModel(job_name=obj.get("otherData", {}).get("job", ""))
    raw_metrics = obj.get("otherData", {}).get("metrics")
    if isinstance(raw_metrics, dict):
        model.metrics = raw_metrics
    for ev in events:
        ph = ev.get("ph")
        args = dict(ev.get("args", {}))
        task = args.pop("task", "")
        if ph == "X":
            wall_us = args.pop("wall_us", 0)
            t0 = int(ev["ts"])
            model.spans.append(
                Span(
                    name=ev["name"],
                    cat=ev.get("cat", ""),
                    t0=t0,
                    t1=t0 + int(ev.get("dur", 1)),
                    node=nodes.get(ev.get("pid"), ""),
                    task=task,
                    wall_s=float(wall_us) / 1e6,
                    args=args,
                )
            )
        elif ph == "i":
            model.events.append(
                TraceEvent(
                    name=ev["name"],
                    cat=ev.get("cat", ""),
                    ts=int(ev["ts"]),
                    node=nodes.get(ev.get("pid"), ""),
                    task=task,
                    args=args,
                )
            )
    return model


def load_trace(path: str) -> TraceModel:
    """Load a trace file written by ``write_trace`` (jsonl or chrome).

    The format is sniffed from the content: a JSON object with
    ``traceEvents`` is a Chrome trace, otherwise each line must be one
    JSONL span/event/metric record.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        first_line = stripped.splitlines()[0]
        obj: Any = None
        try:
            obj = json.loads(first_line)
        except json.JSONDecodeError:
            obj = json.loads(text)  # pretty-printed chrome trace
        if isinstance(obj, dict) and "traceEvents" in obj:
            return _load_chrome(obj)
        return _load_jsonl(text)
    raise ValueError(
        f"{path}: not a jsonl or chrome trace (write one with "
        "'repro run --trace PATH --trace-format jsonl|chrome')"
    )

"""Barrier-stall and pipelining metrics — the paper's Fig. 4 as a report.

The paper's central comparison: sort-merge MapReduce serialises map,
sort/merge and reduce behind a blocking barrier, while pipelined (HOP)
and one-pass engines overlap them.  These quantities fall straight out
of the span intervals:

* **map/reduce overlap** — how much of the map-task window the
  reduce-side tasks were also busy in;
* **barrier stall** — ticks between the last map finishing and the
  first application of the reduce function (the sort/merge/shuffle
  wedge the one-pass engine deletes);
* **sort-merge blocking** — total ticks spent in the ``sort``, ``spill``
  and ``merge`` categories;
* **pipelining efficiency** — the fraction of reduce-side work ticks
  that land *inside* the map window.  The logical clock serialises all
  work onto one axis, so "overlap" means interleaving: a pipelined
  engine pushes/accepts reduce-side chunks between map tasks (high
  efficiency), while a blocking barrier defers all reduce-side work
  until the maps are done (low efficiency).

Everything is integer interval arithmetic on the logical clock; ratios
are rounded to four decimals at the edge, so reports stay byte-identical
across executors.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.obs.tracer import Span

__all__ = ["barrier_report", "interval_union", "union_length"]

#: The framework overhead categories sort-merge pays and one-pass deletes.
BLOCKING_CATS = ("sort", "spill", "merge")


def interval_union(intervals: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge possibly-overlapping ``(t0, t1)`` intervals (sorted, disjoint)."""
    merged: list[tuple[int, int]] = []
    for t0, t1 in sorted(intervals):
        if merged and t0 <= merged[-1][1]:
            last0, last1 = merged[-1]
            merged[-1] = (last0, max(last1, t1))
        else:
            merged.append((t0, t1))
    return merged


def union_length(intervals: Iterable[tuple[int, int]]) -> int:
    return sum(t1 - t0 for t0, t1 in interval_union(intervals))


def _ratio(num: int, den: int) -> float:
    return round(num / den, 4) if den else 0.0


def barrier_report(spans: Sequence[Span]) -> dict[str, Any]:
    """Barrier/pipelining quantities for one run, as a report fragment."""
    work = [s for s in spans if s.cat != "phase"]
    map_iv = [(s.t0, s.t1) for s in work if s.task.startswith("map:")]
    red_iv = [(s.t0, s.t1) for s in work if s.task.startswith("reduce:")]
    map_union = interval_union(map_iv)
    red_union = interval_union(red_iv)
    map_window = (map_union[0][0], map_union[-1][1]) if map_union else (0, 0)
    red_window = (red_union[0][0], red_union[-1][1]) if red_union else (0, 0)

    window_overlap = max(
        0, min(map_window[1], red_window[1]) - max(map_window[0], red_window[0])
    )
    # Reduce-side work interleaved into the map window: the pipelining
    # signature.  Clamp each reduce-side span to the map window and sum.
    m0, m1 = map_window
    pipelined = sum(
        max(0, min(t1, m1) - max(t0, m0)) for t0, t1 in red_iv
    )
    reduce_work = sum(t1 - t0 for t0, t1 in red_iv)

    reduce_fn_starts = [s.t0 for s in work if s.cat == "reduce"]
    first_reduce = min(reduce_fn_starts) if reduce_fn_starts else 0
    barrier_stall = max(0, first_reduce - map_window[1]) if reduce_fn_starts else 0

    total_ticks = sum(s.t1 - s.t0 for s in work)
    blocking = sum(s.t1 - s.t0 for s in work if s.cat in BLOCKING_CATS)

    return {
        "map_window": list(map_window),
        "reduce_window": list(red_window),
        "window_overlap_ticks": window_overlap,
        "map_reduce_overlap": _ratio(
            window_overlap, red_window[1] - red_window[0]
        ),
        "pipelined_reduce_ticks": pipelined,
        "pipelining_efficiency": _ratio(pipelined, reduce_work),
        "barrier_stall_ticks": barrier_stall,
        "sort_merge_ticks": blocking,
        "sort_merge_share": _ratio(blocking, total_ticks),
        "work_ticks": total_ticks,
    }

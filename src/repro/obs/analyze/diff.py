"""Trace-diff with per-phase regression attribution.

Comparing two runs — tuple vs batch, clean vs faulty, sort-merge vs
one-pass, current vs committed perfguard baseline — reduces to the same
primitive: two ``{key: value}`` maps and their deltas, sorted so the
biggest regression leads.  :func:`delta_rows` is that primitive;
:func:`diff_reports` applies it to two analyzer reports phase by phase,
and ``benchmarks/perfguard.py`` applies it to per-phase kernel scores so
a gate failure names *which phase* regressed instead of a bare ratio.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.obs.tracer import Span

__all__ = [
    "phase_ticks",
    "delta_rows",
    "attribute_regression",
    "diff_reports",
    "render_delta_table",
]


def phase_ticks(spans: Sequence[Span]) -> dict[str, int]:
    """Logical ticks per span category (phase envelopes excluded)."""
    out: dict[str, int] = {}
    for s in spans:
        if s.cat == "phase":
            continue
        cat = s.cat or "other"
        out[cat] = out.get(cat, 0) + (s.t1 - s.t0)
    return dict(sorted(out.items()))


def delta_rows(
    base: Mapping[str, float], new: Mapping[str, float]
) -> list[dict[str, Any]]:
    """Per-key deltas between two numeric maps, biggest regression first.

    Each row: ``{"key", "base", "new", "delta", "ratio"}`` where ratio is
    ``new / base`` (0.0 when base is 0).  Rows sort by descending delta
    then key, so the dominant regression is row one and the ordering is
    deterministic.
    """
    rows = []
    for key in sorted(set(base) | set(new)):
        b = base.get(key, 0)
        n = new.get(key, 0)
        rows.append(
            {
                "key": key,
                "base": b,
                "new": n,
                "delta": round(n - b, 4),
                "ratio": round(n / b, 4) if b else 0.0,
            }
        )
    rows.sort(key=lambda r: (-r["delta"], r["key"]))
    return rows


def attribute_regression(
    base: Mapping[str, float], new: Mapping[str, float]
) -> str | None:
    """The key with the largest positive delta, or None if nothing grew."""
    rows = delta_rows(base, new)
    if rows and rows[0]["delta"] > 0:
        return rows[0]["key"]
    return None


def diff_reports(base: Mapping[str, Any], new: Mapping[str, Any]) -> dict[str, Any]:
    """Diff two analyzer reports (see ``report.analyze_model``).

    Phase ticks carry the attribution; headline scalars (makespan,
    critical-path length, barrier stall, sort-merge blocking) ride along
    so a regression in shape shows even when totals match.
    """
    base_phases = {k: v["ticks"] for k, v in base.get("phases", {}).items()}
    new_phases = {k: v["ticks"] for k, v in new.get("phases", {}).items()}
    headline_keys = (
        ("makespan", ("makespan",)),
        ("critical_path_ticks", ("critical_path", "total_ticks")),
        ("barrier_stall_ticks", ("barriers", "barrier_stall_ticks")),
        ("sort_merge_ticks", ("barriers", "sort_merge_ticks")),
    )

    def dig(report: Mapping[str, Any], path: tuple[str, ...]) -> float:
        cur: Any = report
        for key in path:
            cur = cur.get(key, {}) if isinstance(cur, Mapping) else {}
        return cur if isinstance(cur, (int, float)) else 0

    headlines = {
        name: {"base": dig(base, path), "new": dig(new, path)}
        for name, path in headline_keys
    }
    return {
        "schema": "repro.analyze.diff/v1",
        "base_job": base.get("job", ""),
        "new_job": new.get("job", ""),
        "phases": delta_rows(base_phases, new_phases),
        "headlines": headlines,
        "regressed_phase": attribute_regression(base_phases, new_phases),
    }


def render_delta_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    title: str = "per-phase delta",
    key_header: str = "phase",
    unit: str = "ticks",
) -> str:
    """Render ``delta_rows`` output as an aligned terminal table."""
    # Lazy: repro.analysis pulls in the engines (circular through obs).
    from repro.analysis.tables import format_table

    def fmt(v: float) -> str:
        return f"{v:g}"

    table_rows = [
        (
            r["key"],
            fmt(r["base"]),
            fmt(r["new"]),
            ("+" if r["delta"] > 0 else "") + fmt(r["delta"]),
            f"{r['ratio']:.2f}x" if r["base"] else "new",
        )
        for r in rows
    ]
    return format_table(
        (key_header, f"base ({unit})", f"new ({unit})", "delta", "ratio"),
        table_rows,
        title=title,
    )

"""Trace-derived performance analysis (``repro analyze``).

Deterministic interpretation of the PR 3 tracer's output: critical-path
extraction over the span dependency DAG, barrier-stall and pipelining
metrics (the paper's Fig. 4 as a computed report), skew and straggler
attribution, the clock-keyed metrics registry view, and trace-diff with
per-phase regression attribution.  See the "Performance analysis"
section of ``docs/OBSERVABILITY.md``.
"""

from repro.obs.analyze.barriers import barrier_report, interval_union, union_length
from repro.obs.analyze.critical_path import critical_path
from repro.obs.analyze.diff import (
    attribute_regression,
    delta_rows,
    diff_reports,
    phase_ticks,
    render_delta_table,
)
from repro.obs.analyze.model import TraceModel, load_trace, model_from_tracer
from repro.obs.analyze.report import (
    JOURNAL_SCHEMA,
    REPORT_FORMATS,
    SCHEMA,
    analyze_journal,
    analyze_model,
    analyze_tracer,
    render_html,
    render_json,
    render_text,
    validate_report,
)
from repro.obs.analyze.skew import skew_report

__all__ = [
    "SCHEMA",
    "JOURNAL_SCHEMA",
    "REPORT_FORMATS",
    "TraceModel",
    "load_trace",
    "model_from_tracer",
    "analyze_model",
    "analyze_tracer",
    "analyze_journal",
    "critical_path",
    "barrier_report",
    "interval_union",
    "union_length",
    "skew_report",
    "phase_ticks",
    "delta_rows",
    "attribute_regression",
    "diff_reports",
    "render_delta_table",
    "render_json",
    "render_text",
    "render_html",
    "validate_report",
]

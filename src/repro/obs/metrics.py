"""Deterministic metrics: fixed-bucket histograms and clock-keyed gauges.

Counters answer "how much, in total"; spans answer "when, and for how
long".  The metrics registry fills the gap between them: *distributions*
(how large were the shuffle segments?) and *sampled levels* (how many
keys were resident in the hash table when the partition finished?),
recorded without ever touching wall time so the values are byte-stable
across the Serial/Thread/MP executors.

* :class:`Histogram` — fixed power-of-two bucket bounds shared by every
  instance of a name, so worker-side and coordinator-side observations
  merge by elementwise count addition.
* :class:`Gauge` — ``(tick, value)`` samples keyed on the **logical
  clock** of the owning tracer; absorbing a worker export rebases the
  ticks exactly like span times.

Metrics ride the tracer: every :class:`repro.obs.tracer.Tracer` owns a
:class:`Metrics` instance, ships it inside ``tracer.export()`` and
merges it in :meth:`Tracer.absorb` — the kernel split needs no extra
plumbing.  Metric names are a closed vocabulary
(:data:`repro.obs.names.METRIC_NAMES`), validated here at first use and
statically by lint rule REP008, mirroring how REP004/REP005 guard
counter and span names.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any

from repro.obs.names import METRIC_NAMES

__all__ = [
    "DEFAULT_BOUNDS",
    "Histogram",
    "Gauge",
    "Metrics",
    "NullMetrics",
    "NULL_METRICS",
    "MetricsExport",
]

#: Shared histogram bucket upper bounds (powers of four up to ~1G), plus
#: an implicit overflow bucket.  Fixed per process *and* per repository:
#: merging requires identical bounds, and a committed trace must bucket
#: the same way forever.
DEFAULT_BOUNDS: tuple[int, ...] = tuple(4**i for i in range(16))

#: The picklable wire form: ``(histograms, gauges)`` where histograms
#: map name -> (bounds, counts, count, total) and gauges map
#: name -> [(tick, value), ...].
MetricsExport = tuple[dict[str, tuple], dict[str, list]]


class Histogram:
    """Fixed-bucket distribution of non-negative integer observations."""

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, bounds: tuple[int, ...] = DEFAULT_BOUNDS) -> None:
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0

    def observe(self, value: int) -> None:
        """Record one observation (records, bytes, ...)."""
        value = int(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value


class Gauge:
    """A level sampled at points on the logical clock."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: list[tuple[int, int]] = []

    def record(self, tick: int, value: int) -> None:
        """Record the level ``value`` at logical time ``tick``."""
        self.samples.append((int(tick), int(value)))


class Metrics:
    """Registry of named histograms and gauges on one tracer."""

    __slots__ = ("_histograms", "_gauges")

    def __init__(self) -> None:
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, Gauge] = {}

    @staticmethod
    def _check_name(name: str) -> str:
        if name not in METRIC_NAMES:
            raise ValueError(
                f"metric name {name!r} is not registered in repro/obs/names.py "
                "(METRIC_NAMES); register it first — lint rule REP008 enforces "
                "this statically"
            )
        return name

    def histogram(self, name: str) -> Histogram:
        """The histogram registered as ``name`` (created on first use)."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(self._check_name(name))
        return hist

    def gauge(self, name: str) -> Gauge:
        """The gauge registered as ``name`` (created on first use)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(self._check_name(name))
        return gauge

    def __bool__(self) -> bool:
        return bool(self._histograms or self._gauges)

    # -- composition --------------------------------------------------------

    def export(self) -> MetricsExport | None:
        """The picklable wire form, or ``None`` when nothing was recorded."""
        if not self:
            return None
        return (
            {
                name: (h.bounds, h.counts, h.count, h.total)
                for name, h in self._histograms.items()
            },
            {name: g.samples for name, g in self._gauges.items()},
        )

    def absorb(self, export: MetricsExport | None, base: int = 0) -> None:
        """Merge a task-local export; gauge ticks are rebased by ``base``.

        Called (via :meth:`Tracer.absorb`) in deterministic task order,
        exactly like spans — histogram counts add, gauge samples splice
        in with their local ticks shifted onto the global clock.
        """
        if export is None:
            return
        histograms, gauges = export
        for name, (bounds, counts, count, total) in histograms.items():
            hist = self.histogram(name)
            if tuple(bounds) != hist.bounds:
                raise ValueError(
                    f"histogram {name!r}: bucket bounds mismatch on merge"
                )
            for i, c in enumerate(counts):
                hist.counts[i] += c
            hist.count += count
            hist.total += total
        for name, samples in gauges.items():
            gauge = self.gauge(name)
            for tick, value in samples:
                gauge.samples.append((tick + base, value))

    def as_report(self) -> dict[str, dict[str, Any]]:
        """Deterministic plain-data view for analyzer reports (sorted names).

        Histogram buckets are reported sparsely (only non-empty ones) as
        ``{"le": bound-or-"inf", "n": count}`` rows.
        """
        out: dict[str, dict[str, Any]] = {}
        for name in sorted(self._histograms):
            h = self._histograms[name]
            buckets = [
                {"le": h.bounds[i] if i < len(h.bounds) else "inf", "n": n}
                for i, n in enumerate(h.counts)
                if n
            ]
            out[name] = {
                "type": "histogram",
                "count": h.count,
                "total": h.total,
                "buckets": buckets,
            }
        for name in sorted(self._gauges):
            g = self._gauges[name]
            samples = g.samples
            out[name] = {
                "type": "gauge",
                "count": len(samples),
                "min": min(v for _, v in samples) if samples else 0,
                "max": max(v for _, v in samples) if samples else 0,
                "last": samples[-1][1] if samples else 0,
                "samples": [[t, v] for t, v in samples],
            }
        return {name: out[name] for name in sorted(out)}


class _NullHistogram:
    """Shared do-nothing histogram handed out when tracing is off."""

    __slots__ = ()

    def observe(self, value: int) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def record(self, tick: int, value: int) -> None:
        pass


_NULL_HISTOGRAM = _NullHistogram()
_NULL_GAUGE = _NullGauge()


class NullMetrics:
    """The zero-overhead default riding :data:`repro.obs.tracer.NULL_TRACER`."""

    __slots__ = ()

    def histogram(self, name: str) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def __bool__(self) -> bool:
        return False

    def export(self) -> None:
        return None

    def absorb(self, export: Any, base: int = 0) -> None:
        pass

    def as_report(self) -> dict[str, dict[str, Any]]:
        return {}


NULL_METRICS = NullMetrics()

"""Observability: deterministic tracing, exporters, timelines, logging.

See ``docs/OBSERVABILITY.md`` for the span model and how the exporters
map onto the paper's figures and tables.
"""

from repro.obs.export import (
    TRACE_FORMATS,
    chrome_trace,
    summary_text,
    to_jsonl,
    validate_chrome,
    write_trace,
)
from repro.obs.log import get_logger, set_level
from repro.obs.names import EVENT_NAMES, SPAN_NAMES
from repro.obs.series import bytes_rate, span_activity
from repro.obs.timeline import phase_table, phase_totals, recovery_timeline
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
    byte_cost,
    task_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "TraceEvent",
    "SPAN_NAMES",
    "EVENT_NAMES",
    "byte_cost",
    "task_tracer",
    "chrome_trace",
    "validate_chrome",
    "to_jsonl",
    "summary_text",
    "write_trace",
    "TRACE_FORMATS",
    "phase_totals",
    "phase_table",
    "recovery_timeline",
    "span_activity",
    "bytes_rate",
    "get_logger",
    "set_level",
]

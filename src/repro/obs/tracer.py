"""Deterministic span tracing with logical clocks.

Every engine in this repository is deterministic: same job, same seed,
same fault plan — same bytes out.  Wall-clock timestamps would destroy
that property the moment they entered a trace, so spans here are placed
on a **logical clock**: a counter that advances by one tick when a span
opens and by the span's declared *cost* (records processed, or a byte
proxy) when it closes.  The resulting timeline is a pure function of the
work performed, which is what makes traces byte-comparable across the
Serial/Thread/MP executors.  Wall-clock durations are still captured,
but only as *advisory* span attributes (:attr:`Span.wall_s`) that
exporters keep clearly separated from the logical schedule.

Parallel execution and determinism are reconciled the same way the
counters are: kernels running in worker processes record spans on their
own task-local :class:`Tracer` (clock starting at zero), ship the
picklable export back with the task result, and the coordinator
:meth:`Tracer.absorb`\\ s each export *in task order* — rebasing the
local ticks onto the global clock.  The merged trace is therefore
identical whether the kernels ran inline, on threads, or on a fork pool.

The default tracer everywhere is :data:`NULL_TRACER`, whose methods are
no-ops returning a shared null span; instrumentation sites pay one
attribute lookup and one call at *task/phase* granularity (never inside
per-record loops), keeping the subsystem zero-overhead when off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import NULL_METRICS, Metrics

__all__ = [
    "Span",
    "TraceEvent",
    "TraceExport",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "byte_cost",
    "task_tracer",
]

#: Approximate framed bytes per record; converts byte-denominated work
#: (spill/merge/shuffle traffic) into the record-denominated tick unit.
_BYTES_PER_TICK = 64


def byte_cost(nbytes: int) -> int:
    """Logical cost of moving ``nbytes`` (>= 1 tick)."""
    return max(1, int(nbytes) // _BYTES_PER_TICK)


@dataclass(slots=True)
class Span:
    """One closed interval of attributed work on the logical clock."""

    name: str
    cat: str
    t0: int
    t1: int
    node: str = ""
    task: str = ""
    #: Advisory wall-clock duration (seconds); never part of determinism
    #: comparisons and exported separately from the logical schedule.
    wall_s: float = 0.0
    args: dict[str, Any] = field(default_factory=dict)


@dataclass(slots=True)
class TraceEvent:
    """One instantaneous occurrence (retry, crash, spill threshold, ...)."""

    name: str
    cat: str
    ts: int
    node: str = ""
    task: str = ""
    args: dict[str, Any] = field(default_factory=dict)


#: The picklable wire form a worker-side tracer ships to the coordinator:
#: ``(spans, events, clock, metrics_export)``.  :meth:`Tracer.absorb`
#: also accepts the historical 3-tuple without the metrics element.
TraceExport = tuple[list[Span], list[TraceEvent], int, Any]


class _SpanHandle:
    """Context manager recording one span on its tracer."""

    __slots__ = ("_tracer", "_span", "_cost", "_wall0")

    def __init__(self, tracer: "Tracer", span: Span, cost: int) -> None:
        self._tracer = tracer
        self._span = span
        self._cost = cost

    def set_cost(self, cost: int) -> None:
        """Declare the span's logical cost (clock advance at close)."""
        self._cost = max(1, int(cost))

    def set(self, **args: Any) -> None:
        """Attach deterministic attributes to the span."""
        self._span.args.update(args)

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        tracer._clock += 1
        self._span.t0 = tracer._clock
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        tracer = self._tracer
        span = self._span
        span.wall_s = time.perf_counter() - self._wall0
        tracer._clock += self._cost
        span.t1 = tracer._clock
        tracer.spans.append(span)


class _NullSpan:
    """Shared do-nothing span handle returned by :class:`NullTracer`."""

    __slots__ = ()

    def set_cost(self, cost: int) -> None:
        pass

    def set(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Records spans, events and metrics on one logical clock."""

    __slots__ = ("spans", "events", "metrics", "_clock")

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self.metrics = Metrics()
        self._clock = 0

    @property
    def clock(self) -> int:
        return self._clock

    def span(
        self,
        name: str,
        cat: str = "",
        *,
        node: str = "",
        task: str = "",
        cost: int = 1,
        **args: Any,
    ) -> _SpanHandle:
        """Open a span; use as ``with tracer.span(...) as sp``.

        ``cost`` (overridable via ``sp.set_cost``) is how far the logical
        clock advances when the span closes — records processed where
        known, :func:`byte_cost` of the bytes moved otherwise.
        """
        return _SpanHandle(
            self, Span(name, cat, 0, 0, node, task, 0.0, args), max(1, cost)
        )

    def event(
        self,
        name: str,
        cat: str = "",
        *,
        node: str = "",
        task: str = "",
        **args: Any,
    ) -> None:
        """Record an instantaneous event at the next clock tick."""
        self._clock += 1
        self.events.append(TraceEvent(name, cat, self._clock, node, task, args))

    def add_span(
        self,
        name: str,
        cat: str,
        t0: int,
        t1: int,
        *,
        node: str = "",
        task: str = "",
        wall_s: float = 0.0,
        **args: Any,
    ) -> None:
        """Append a span over an already-elapsed clock interval.

        Used for phase envelopes: the engine reads the clock at phase
        entry and exit and records the interval without advancing the
        clock itself.
        """
        self.spans.append(Span(name, cat, t0, max(t1, t0 + 1), node, task, wall_s, args))

    # -- composition ----------------------------------------------------------

    def export(self) -> TraceExport:
        """The picklable form: ``(spans, events, clock, metrics)``."""
        return (self.spans, self.events, self._clock, self.metrics.export())

    def absorb(self, trace: TraceExport | None, *, args: dict[str, Any] | None = None) -> None:
        """Splice a task-local export onto this clock, preserving order.

        The child's ticks (``1..clock``) are rebased to start at the
        current global clock; the global clock then advances by the
        child's total.  Called in deterministic task order by the
        coordinator, this yields identical merged traces across
        executors.  ``args`` (e.g. ``{"attempt": 2}``) is merged into
        every absorbed span and event.  Metric exports merge into
        :attr:`metrics` with gauge ticks rebased the same way.
        """
        if not trace:
            return
        spans, events, clock, *rest = trace
        base = self._clock
        if rest and rest[0] is not None:
            self.metrics.absorb(rest[0], base)
        for s in spans:
            s.t0 += base
            s.t1 += base
            if args:
                s.args.update(args)
            self.spans.append(s)
        for e in events:
            e.ts += base
            if args:
                e.args.update(args)
            self.events.append(e)
        self._clock = base + clock


class NullTracer:
    """The zero-overhead default: every operation is a no-op."""

    __slots__ = ()

    enabled = False
    spans: tuple = ()
    events: tuple = ()
    clock = 0
    metrics = NULL_METRICS

    def span(self, *args: Any, **kwargs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, *args: Any, **kwargs: Any) -> None:
        pass

    def add_span(self, *args: Any, **kwargs: Any) -> None:
        pass

    def export(self) -> None:
        return None

    def absorb(self, trace: Any, *, args: Any = None) -> None:
        pass


NULL_TRACER = NullTracer()


def task_tracer(on: bool) -> Tracer | NullTracer:
    """A fresh task-local tracer when tracing is on, the null one otherwise.

    The kernel-side entry point: worker processes call this with the
    ``trace`` flag from the job context, record task spans locally, and
    return ``tracer.export()`` with the task result.
    """
    return Tracer() if on else NULL_TRACER

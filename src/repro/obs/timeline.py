"""Phase timelines derived from spans.

:func:`phase_table` is the span-derived successor to the ad-hoc
``time.*`` counter report: the same per-phase breakdown the paper's
Table II gives (map function vs. framework sorting vs. merge vs.
shuffle vs. reduce), but computed from the recorded spans so logical
cost and advisory wall-clock stay side by side.  :func:`recovery_timeline`
orders a fault run's crash/retry/speculation events on the logical
clock — *when* recovery happened, not just how much.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.obs.tracer import Span, TraceEvent

__all__ = ["PHASE_ORDER", "phase_totals", "phase_table", "recovery_timeline"]

#: Canonical presentation order; categories outside this list sort after,
#: alphabetically.  Mirrors the paper's Table II row order (map fn, sort,
#: combine, spill, merge, shuffle, reduce) plus this repo's extras.
PHASE_ORDER = (
    "map",
    "sort",
    "combine",
    "spill",
    "merge",
    "shuffle",
    "reduce",
    "cache",
    "snapshot",
    "checkpoint",
    "recovery",
    "phase",
)


def phase_totals(spans: Sequence[Span]) -> dict[str, dict[str, float]]:
    """Aggregate spans by category: span count, logical ticks, wall seconds."""
    totals: dict[str, dict[str, float]] = defaultdict(
        lambda: {"spans": 0, "ticks": 0, "wall_s": 0.0}
    )
    for span in spans:
        row = totals[span.cat or "other"]
        row["spans"] += 1
        row["ticks"] += span.t1 - span.t0
        row["wall_s"] += span.wall_s
    return dict(totals)


def _phase_rank(cat: str) -> tuple[int, str]:
    try:
        return (PHASE_ORDER.index(cat), cat)
    except ValueError:
        return (len(PHASE_ORDER), cat)


def phase_table(spans: Sequence[Span], *, title: str = "") -> str:
    """Render the per-phase breakdown as an aligned table."""
    # Imported lazily: ``repro.analysis`` pulls in the engines, which are
    # themselves traced — a module-level import would be circular.
    from repro.analysis.tables import format_table

    totals = phase_totals(spans)
    grand_ticks = sum(row["ticks"] for row in totals.values()) or 1
    rows = []
    for cat in sorted(totals, key=_phase_rank):
        row = totals[cat]
        rows.append(
            (
                cat,
                int(row["spans"]),
                int(row["ticks"]),
                f"{100.0 * row['ticks'] / grand_ticks:.1f}%",
                f"{row['wall_s'] * 1e3:.1f} ms",
            )
        )
    return format_table(
        ("phase", "spans", "ticks", "share", "wall (advisory)"), rows, title=title
    )


def recovery_timeline(events: Sequence[TraceEvent], *, title: str = "recovery timeline") -> str:
    """Render crash/retry/speculation events ordered on the logical clock.

    Returns ``""`` when the run had no recovery events (clean run).
    """
    from repro.analysis.tables import format_table

    rows = []
    for event in sorted(
        (e for e in events if e.cat == "recovery"), key=lambda e: e.ts
    ):
        detail = " ".join(f"{k}={v}" for k, v in sorted(event.args.items()))
        rows.append((event.ts, event.name, event.node or "-", event.task or "-", detail))
    if not rows:
        return ""
    return format_table(("tick", "event", "node", "task", "detail"), rows, title=title)

"""Workload generators and the paper's four benchmark jobs.

Click-stream analysis (sessionization, page frequency, per-user count)
and web-document analysis (inverted index), each available in sort-merge
(:class:`~repro.mapreduce.api.MapReduceJob`) and one-pass
(:class:`~repro.core.engine.OnePassJob`) form, plus reference
implementations for correctness checks.
"""

from repro.workloads.clickstream import (
    ClickStreamConfig,
    click_text_codec,
    generate_clicks,
    url_of,
)
from repro.workloads.counting import (
    count_map_fn,
    counting_job,
    counting_onepass_job,
    reference_counts,
    sum_combine,
    sum_reduce,
)
from repro.workloads.documents import (
    DocumentConfig,
    document_text_codec,
    generate_documents,
    word_of,
)
from repro.workloads.inverted_index import (
    index_map,
    index_reduce,
    inverted_index_job,
    inverted_index_onepass_job,
    reference_index,
)
from repro.workloads.page_frequency import (
    page_frequency_job,
    page_frequency_onepass_job,
    reference_page_counts,
    url_of_click,
)
from repro.workloads.per_user_count import (
    per_user_count_job,
    per_user_count_onepass_job,
    reference_user_counts,
    user_of_click,
)
from repro.workloads.sessionization import (
    reference_sessions,
    session_map,
    session_reduce,
    sessionization_job,
    sessionization_onepass_job,
)
from repro.workloads.graph import (
    GraphConfig,
    adjacency_onepass_job,
    count_triangles,
    degree_count_job,
    degree_count_onepass_job,
    generate_edges,
    reference_degrees,
    reference_triangles,
)
from repro.workloads.twitter import (
    TweetConfig,
    generate_tweets,
    hashtag_cooccurrence_job,
    hashtag_cooccurrence_onepass_job,
    hashtag_count_job,
    hashtag_count_onepass_job,
    hashtag_of,
    reference_cooccurrence,
    reference_hashtag_counts,
    reference_user_top_hashtags,
    user_top_hashtags_onepass_job,
)
from repro.workloads.zipf import ZipfSampler, zipf_pmf

__all__ = [
    "ZipfSampler",
    "zipf_pmf",
    "ClickStreamConfig",
    "generate_clicks",
    "click_text_codec",
    "url_of",
    "DocumentConfig",
    "generate_documents",
    "document_text_codec",
    "word_of",
    "count_map_fn",
    "sum_combine",
    "sum_reduce",
    "counting_job",
    "counting_onepass_job",
    "reference_counts",
    "sessionization_job",
    "sessionization_onepass_job",
    "session_map",
    "session_reduce",
    "reference_sessions",
    "page_frequency_job",
    "page_frequency_onepass_job",
    "reference_page_counts",
    "url_of_click",
    "per_user_count_job",
    "per_user_count_onepass_job",
    "reference_user_counts",
    "user_of_click",
    "inverted_index_job",
    "inverted_index_onepass_job",
    "index_map",
    "index_reduce",
    "reference_index",
    "TweetConfig",
    "generate_tweets",
    "hashtag_of",
    "hashtag_count_job",
    "hashtag_count_onepass_job",
    "user_top_hashtags_onepass_job",
    "hashtag_cooccurrence_job",
    "hashtag_cooccurrence_onepass_job",
    "reference_hashtag_counts",
    "reference_user_top_hashtags",
    "reference_cooccurrence",
    "GraphConfig",
    "generate_edges",
    "degree_count_job",
    "degree_count_onepass_job",
    "adjacency_onepass_job",
    "count_triangles",
    "reference_degrees",
    "reference_triangles",
]

"""Per-user click counting.

The second counting variant in the paper: "A similar task counts the
number of clicks that each user has made."  Its map function is even
lighter than sessionization's — it "simply emits pairs in the form of
(user id, 1)" — which is why sorting takes up to 48% of map-phase CPU for
this workload in Table II: there is almost no map work to hide behind.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.engine import OnePassConfig, OnePassJob
from repro.mapreduce.api import JobConfig, MapReduceJob
from repro.workloads.counting import counting_job, counting_onepass_job, reference_counts

__all__ = [
    "user_of_click",
    "per_user_count_job",
    "per_user_count_onepass_job",
    "reference_user_counts",
]


def user_of_click(click: tuple[float, int, str]) -> int:
    """Key extractor: the clicking user."""
    return click[1]


def per_user_count_job(
    input_path: str,
    output_path: str,
    *,
    config: JobConfig | None = None,
    with_combiner: bool = True,
) -> MapReduceJob:
    return counting_job(
        "per-user-count",
        user_of_click,
        input_path,
        output_path,
        config=config,
        with_combiner=with_combiner,
    )


def per_user_count_onepass_job(
    input_path: str,
    output_path: str,
    *,
    config: OnePassConfig | None = None,
) -> OnePassJob:
    return counting_onepass_job(
        "per-user-count-onepass",
        user_of_click,
        input_path,
        output_path,
        config=config,
    )


def reference_user_counts(clicks: Iterable[tuple[float, int, str]]) -> dict[int, int]:
    return reference_counts(clicks, user_of_click)

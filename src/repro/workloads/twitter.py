"""Twitter-feed analysis — the paper's "ongoing work" benchmark extension.

§III.A: "In ongoing work, we are extending our benchmark to Twitter feed
analysis and complex queries such as top-k."  This module supplies that
extension:

* a synthetic tweet generator (timestamped, Zipf-skewed authors and
  hashtags, several hashtags per tweet);
* **hashtag counting** (the streaming-trend primitive) in sort-merge and
  one-pass form;
* **per-user top hashtags** — a top-k query answered with the
  :func:`~repro.core.aggregates.top_by_count` combiner, the paper's §IV.3
  open question made concrete;
* **hashtag co-occurrence** — pairs of hashtags appearing in the same
  tweet, a quadratic-fanout map that stresses intermediate data the way
  graph-edge workloads do.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Iterator

import numpy as np

from repro.core.aggregates import SUM, top_by_count
from repro.core.engine import OnePassConfig, OnePassJob
from repro.mapreduce.api import JobConfig, MapReduceJob
from repro.workloads.counting import sum_combine, sum_reduce
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "TweetConfig",
    "generate_tweets",
    "hashtag_of",
    "hashtag_map",
    "hashtag_count_job",
    "hashtag_count_onepass_job",
    "user_top_hashtags_onepass_job",
    "cooccurrence_map",
    "hashtag_cooccurrence_job",
    "hashtag_cooccurrence_onepass_job",
    "reference_hashtag_counts",
    "reference_user_top_hashtags",
    "reference_cooccurrence",
]

TweetRecord = tuple[float, int, str]


@dataclass(frozen=True, slots=True)
class TweetConfig:
    """Shape of the synthetic feed."""

    num_tweets: int = 20_000
    num_users: int = 2_000
    num_hashtags: int = 500
    user_skew: float = 1.1
    hashtag_skew: float = 1.2
    mean_hashtags: float = 2.0
    mean_interarrival: float = 0.02
    seed: int = 13

    def __post_init__(self) -> None:
        if min(self.num_tweets, self.num_users, self.num_hashtags) < 1:
            raise ValueError("counts must be >= 1")
        if self.mean_hashtags <= 0 or self.mean_interarrival <= 0:
            raise ValueError("means must be positive")


def hashtag_of(rank: int) -> str:
    return f"#tag{rank:05d}"


_FILLER = ("just", "saw", "the", "match", "so", "good", "cant", "believe", "it")


def generate_tweets(config: TweetConfig) -> Iterator[TweetRecord]:
    """Yield ``(timestamp, user, text)`` in timestamp order.

    Each tweet carries 1+Poisson hashtags drawn from the Zipf sampler
    (deduplicated within the tweet) mixed into filler words.
    """
    users = ZipfSampler(config.num_users, config.user_skew, seed=config.seed)
    tags = ZipfSampler(config.num_hashtags, config.hashtag_skew, seed=config.seed + 1)
    rng = np.random.default_rng(config.seed + 2)
    now = 0.0
    for _ in range(config.num_tweets):
        now += float(rng.exponential(config.mean_interarrival))
        user = int(users.draw_one())
        n_tags = 1 + int(rng.poisson(max(config.mean_hashtags - 1, 0.0)))
        tag_ranks = sorted({int(r) for r in tags.draw(n_tags)})
        words = list(rng.choice(_FILLER, size=3))
        words.extend(hashtag_of(r) for r in tag_ranks)
        yield (now, user, " ".join(words))


def hashtags_in(text: str) -> list[str]:
    """The hashtags of one tweet (order preserved, already unique)."""
    return [w for w in text.split() if w.startswith("#")]


def hashtag_map(tweet: TweetRecord) -> Iterator[tuple[str, int]]:
    """Emit ``(hashtag, 1)`` per hashtag occurrence."""
    for tag in hashtags_in(tweet[2]):
        yield (tag, 1)


def hashtag_count_job(
    input_path: str, output_path: str, *, config: JobConfig | None = None
) -> MapReduceJob:
    return MapReduceJob(
        "hashtag-count",
        hashtag_map,
        sum_reduce,
        combine_fn=sum_combine,
        config=config or JobConfig(),
        input_path=input_path,
        output_path=output_path,
    )


def hashtag_count_onepass_job(
    input_path: str, output_path: str, *, config: OnePassConfig | None = None
) -> OnePassJob:
    return OnePassJob(
        "hashtag-count-onepass",
        hashtag_map,
        aggregator=SUM,
        config=config or OnePassConfig(),
        input_path=input_path,
        output_path=output_path,
    )


def _user_tag_map(tweet: TweetRecord) -> Iterator[tuple[int, str]]:
    _ts, user, text = tweet
    for tag in hashtags_in(text):
        yield (user, tag)


def user_top_hashtags_onepass_job(
    input_path: str,
    output_path: str,
    *,
    k: int = 3,
    config: OnePassConfig | None = None,
) -> OnePassJob:
    """Per-user top-``k`` hashtags: the §IV.3 top-k combiner in action.

    The per-user state is a value→count table (sublinear in the user's
    tweet volume), so incremental and hot-set modes both apply.
    """
    return OnePassJob(
        f"user-top{k}-hashtags",
        _user_tag_map,
        aggregator=top_by_count(k),
        config=config or OnePassConfig(map_side_combine=False),
        input_path=input_path,
        output_path=output_path,
    )


def cooccurrence_map(tweet: TweetRecord) -> Iterator[tuple[tuple[str, str], int]]:
    """Emit one pair per unordered hashtag pair in the tweet."""
    tags = sorted(set(hashtags_in(tweet[2])))
    for a, b in combinations(tags, 2):
        yield ((a, b), 1)


def hashtag_cooccurrence_job(
    input_path: str, output_path: str, *, config: JobConfig | None = None
) -> MapReduceJob:
    return MapReduceJob(
        "hashtag-cooccurrence",
        cooccurrence_map,
        sum_reduce,
        combine_fn=sum_combine,
        config=config or JobConfig(),
        input_path=input_path,
        output_path=output_path,
    )


def hashtag_cooccurrence_onepass_job(
    input_path: str, output_path: str, *, config: OnePassConfig | None = None
) -> OnePassJob:
    return OnePassJob(
        "hashtag-cooccurrence-onepass",
        cooccurrence_map,
        aggregator=SUM,
        config=config or OnePassConfig(),
        input_path=input_path,
        output_path=output_path,
    )


# -- references -----------------------------------------------------------------


def reference_hashtag_counts(tweets: Iterable[TweetRecord]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for tweet in tweets:
        for tag, _one in hashtag_map(tweet):
            counts[tag] = counts.get(tag, 0) + 1
    return counts


def reference_user_top_hashtags(
    tweets: Iterable[TweetRecord], k: int = 3
) -> dict[int, list[tuple[str, int]]]:
    per_user: dict[int, dict[str, int]] = {}
    for tweet in tweets:
        for user, tag in _user_tag_map(tweet):
            bucket = per_user.setdefault(user, {})
            bucket[tag] = bucket.get(tag, 0) + 1
    return {
        user: sorted(tags.items(), key=lambda tc: (-tc[1], repr(tc[0])))[:k]
        for user, tags in per_user.items()
    }


def reference_cooccurrence(
    tweets: Iterable[TweetRecord],
) -> dict[tuple[str, str], int]:
    counts: dict[tuple[str, str], int] = {}
    for tweet in tweets:
        for pair, _one in cooccurrence_map(tweet):
            counts[pair] = counts.get(pair, 0) + 1
    return counts

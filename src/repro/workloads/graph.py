"""Graph queries over edge streams — the paper's other "complex query".

§III.A and §IV both name "graph queries" next to top-k as the complex
tasks a one-pass platform must eventually handle.  This module supplies a
graph workload family over synthetic skewed graphs:

* **degree counting** — a counting job over the edge stream (each edge
  increments both endpoints), fully incremental;
* **adjacency-list construction** — the graph analogue of the inverted
  index (holistic per-vertex state);
* **triangle counting** — a classic two-round MapReduce program composed
  from this repository's engines: round 1 builds adjacency lists, round 2
  joins wedges (neighbour pairs) against the edge set.  The driver
  :func:`count_triangles` shows multi-job composition over one cluster.

References are computed with ``networkx`` in the tests, keeping the
reproduction honest against an independent implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Iterator

import numpy as np

from repro.core.aggregates import SUM
from repro.core.engine import OnePassConfig, OnePassEngine, OnePassJob
from repro.mapreduce.api import JobConfig, MapReduceJob
from repro.workloads.counting import sum_combine, sum_reduce
from repro.workloads.zipf import ZipfSampler

__all__ = [
    "GraphConfig",
    "generate_edges",
    "degree_map",
    "degree_count_job",
    "degree_count_onepass_job",
    "adjacency_onepass_job",
    "count_triangles",
    "reference_degrees",
    "reference_triangles",
]

Edge = tuple[int, int]


@dataclass(frozen=True, slots=True)
class GraphConfig:
    """A skewed random multigraph-free edge set.

    Endpoints are drawn from a Zipf sampler (hubs emerge naturally, as in
    web/social graphs); self-loops are rejected and duplicate edges are
    deduplicated, so the result is a simple undirected graph.
    """

    num_vertices: int = 500
    num_edges: int = 2_000
    skew: float = 0.8
    seed: int = 21

    def __post_init__(self) -> None:
        if self.num_vertices < 2:
            raise ValueError("num_vertices must be >= 2")
        if self.num_edges < 1:
            raise ValueError("num_edges must be >= 1")


def generate_edges(config: GraphConfig) -> list[Edge]:
    """Generate the edge list (canonically ordered, deduplicated)."""
    sampler = ZipfSampler(config.num_vertices, config.skew, seed=config.seed)
    rng = np.random.default_rng(config.seed + 1)
    edges: set[Edge] = set()
    max_possible = config.num_vertices * (config.num_vertices - 1) // 2
    target = min(config.num_edges, max_possible)
    while len(edges) < target:
        need = (target - len(edges)) * 2 + 16
        us = sampler.draw(need)
        vs = sampler.draw(need)
        # A dash of uniform endpoints keeps the tail connected.
        uniform = rng.integers(0, config.num_vertices, need)
        vs = np.where(rng.random(need) < 0.3, uniform, vs)
        for u, v in zip(us, vs):
            a, b = int(min(u, v)), int(max(u, v))
            if a != b:
                edges.add((a, b))
            if len(edges) >= target:
                break
    return sorted(edges)


# -- degree counting -------------------------------------------------------------


def degree_map(edge: Edge) -> Iterator[tuple[int, int]]:
    """Each edge contributes one degree to both endpoints."""
    u, v = edge
    yield (u, 1)
    yield (v, 1)


def degree_count_job(
    input_path: str, output_path: str, *, config: JobConfig | None = None
) -> MapReduceJob:
    return MapReduceJob(
        "degree-count",
        degree_map,
        sum_reduce,
        combine_fn=sum_combine,
        config=config or JobConfig(),
        input_path=input_path,
        output_path=output_path,
    )


def degree_count_onepass_job(
    input_path: str, output_path: str, *, config: OnePassConfig | None = None
) -> OnePassJob:
    return OnePassJob(
        "degree-count-onepass",
        degree_map,
        aggregator=SUM,
        config=config or OnePassConfig(),
        input_path=input_path,
        output_path=output_path,
    )


# -- adjacency lists -----------------------------------------------------------------


def _adjacency_map(edge: Edge) -> Iterator[tuple[int, int]]:
    u, v = edge
    yield (u, v)
    yield (v, u)


def adjacency_onepass_job(
    input_path: str, output_path: str, *, config: OnePassConfig | None = None
) -> OnePassJob:
    """Build ``(vertex, sorted neighbour tuple)`` records."""
    from repro.core.aggregates import COLLECT

    def finalize(vertex: int, neighbours: list[int]) -> Iterator[tuple[int, tuple[int, ...]]]:
        yield (vertex, tuple(sorted(set(neighbours))))

    return OnePassJob(
        "adjacency-onepass",
        _adjacency_map,
        aggregator=COLLECT,
        finalize=finalize,
        config=config or OnePassConfig(mode="hybrid", map_side_combine=False),
        input_path=input_path,
        output_path=output_path,
    )


# -- triangle counting -----------------------------------------------------------------


def _wedge_or_edge_map(record) -> Iterator[tuple[Edge, int]]:
    """Round-2 map over the tagged union of adjacency lists and edges.

    Adjacency records ``("A", vertex, neighbours)`` expand into wedges:
    every neighbour pair is a *candidate* closing edge, weighted +1.
    Edge records ``("E", u, v)`` mark the pair as a real edge with a
    sentinel weight.  A triangle {a, b, c} produces exactly one wedge per
    apex, so each closed pair contributes its wedge count and the reduce
    divides the global total by 3.
    """
    tag = record[0]
    if tag == "A":
        _tag, _vertex, neighbours = record
        for a, b in combinations(neighbours, 2):
            yield ((a, b), 1)
    else:
        _tag, u, v = record
        yield ((u, v), _EDGE_MARK)


_EDGE_MARK = -(10**9)


def _closed_wedge_reduce(pair: Edge, values: Iterator[int]) -> Iterator[tuple[Edge, int]]:
    wedges = 0
    is_edge = False
    for value in values:
        if value == _EDGE_MARK:
            is_edge = True
        else:
            wedges += value
    if is_edge and wedges > 0:
        yield (pair, wedges)


def count_triangles(cluster, edges_path: str, *, workdir: str = "triangles") -> int:
    """Two-round triangle count on one cluster, composed from real jobs.

    Round 1 (one-pass engine): adjacency lists.  Round 2 (one-pass
    grouping): wedges joined against the edge set.  Every closed wedge is
    counted at one apex, and each triangle has three apexes — hence the
    division by 3 over per-pair closures summed... concretely, each
    triangle contributes one closed wedge per apex vertex, i.e. a global
    closed-wedge total of exactly ``3 × triangles``.
    """
    engine = OnePassEngine(cluster)
    adjacency_path = f"{workdir}/adjacency"
    engine.run(adjacency_onepass_job(edges_path, adjacency_path))

    # Tagged union input for round 2.
    union_path = f"{workdir}/union"
    tagged: list = [
        ("A", vertex, neighbours)
        for vertex, neighbours in cluster.hdfs.read_records(adjacency_path)
    ]
    tagged.extend(("E", u, v) for u, v in cluster.hdfs.read_records(edges_path))
    cluster.hdfs.write_records(union_path, tagged)

    round2 = OnePassJob(
        "triangle-join",
        _wedge_or_edge_map,
        reduce_fn=_closed_wedge_reduce,
        config=OnePassConfig(mode="hybrid", map_side_combine=False),
        input_path=union_path,
        output_path=f"{workdir}/closed",
    )
    engine.run(round2)
    closed_total = sum(
        wedges for _pair, wedges in cluster.hdfs.read_records(f"{workdir}/closed")
    )
    assert closed_total % 3 == 0, "each triangle must close exactly 3 wedges"
    return closed_total // 3


# -- references -----------------------------------------------------------------


def reference_degrees(edges: Iterable[Edge]) -> dict[int, int]:
    degrees: dict[int, int] = {}
    for u, v in edges:
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1
    return degrees


def reference_triangles(edges: Iterable[Edge]) -> int:
    """Triangle count via networkx (independent oracle)."""
    import networkx as nx

    graph = nx.Graph()
    graph.add_edges_from(edges)
    return sum(nx.triangles(graph).values()) // 3

"""Sessionization: the paper's heaviest click-stream workload.

"Reorders click logs into individual user sessions": map extracts the user
id, group-by user, and the reduce function splits each user's clicks into
sessions at gaps above a threshold.  Its defining property (Table I) is an
intermediate/input ratio around 2.5x — every click is re-emitted keyed by
user, and the reduce side re-spills it during the multi-pass merge.

Output records have the shape ``(user, session_start, (url, ...))`` — one
record per session.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.core.engine import OnePassConfig, OnePassJob
from repro.core.aggregates import sessionize
from repro.mapreduce.api import JobConfig, MapReduceJob

__all__ = [
    "session_map",
    "session_reduce",
    "sessionization_job",
    "sessionization_onepass_job",
    "reference_sessions",
    "user_of_session",
    "session_count_job",
    "session_count_onepass_job",
    "session_log_reduce",
    "session_log_job",
    "session_log_onepass_job",
]

DEFAULT_GAP = 1800.0


def session_map(click: tuple[float, int, str]) -> Iterator[tuple[int, tuple[float, str]]]:
    """Extract ``(user, (timestamp, url))`` from one click record."""
    timestamp, user, url = click
    yield (user, (timestamp, url))


def _split_sessions(
    clicks: Iterable[tuple[float, str]], gap: float
) -> list[list[tuple[float, str]]]:
    ordered = sorted(clicks, key=lambda c: c[0])
    if not ordered:
        return []
    sessions: list[list[tuple[float, str]]] = [[ordered[0]]]
    for click in ordered[1:]:
        if click[0] - sessions[-1][-1][0] > gap:
            sessions.append([click])
        else:
            sessions[-1].append(click)
    return sessions


def session_reduce(
    user: int, clicks: Iterator[tuple[float, str]], *, gap: float = DEFAULT_GAP
) -> Iterator[tuple[int, float, tuple[str, ...]]]:
    """Emit one ``(user, session_start, urls)`` record per session."""
    for session in _split_sessions(clicks, gap):
        yield (user, session[0][0], tuple(url for _ts, url in session))


def sessionization_job(
    input_path: str,
    output_path: str,
    *,
    gap: float = DEFAULT_GAP,
    config: JobConfig | None = None,
) -> MapReduceJob:
    """The sort-merge form of the workload (no effective combiner)."""

    def reduce_fn(user: int, clicks: Iterator[tuple[float, str]]) -> Iterable[Any]:
        return session_reduce(user, clicks, gap=gap)

    return MapReduceJob(
        name="sessionization",
        map_fn=session_map,
        reduce_fn=reduce_fn,
        combine_fn=None,
        config=config or JobConfig(),
        input_path=input_path,
        output_path=output_path,
    )


def sessionization_onepass_job(
    input_path: str,
    output_path: str,
    *,
    gap: float = DEFAULT_GAP,
    config: OnePassConfig | None = None,
) -> OnePassJob:
    """The one-pass form: a linear session state per user, no sorting.

    The per-user state is holistic (it must hold all clicks), so the right
    mode is ``hybrid`` grouping — what the paper's prototype runs for this
    workload — but the aggregate form also runs under ``hotset`` when hot
    users matter more than cold ones.
    """
    cfg = config or OnePassConfig(mode="hybrid", map_side_combine=False)

    def finalize(user: int, sessions: list[list[tuple[float, str]]]) -> Iterator[Any]:
        for session in sessions:
            yield (user, session[0][0], tuple(url for _ts, url in session))

    return OnePassJob(
        name="sessionization-onepass",
        map_fn=session_map,
        aggregator=sessionize(gap),
        finalize=finalize,
        config=cfg,
        input_path=input_path,
        output_path=output_path,
    )


def user_of_session(record: tuple[int, float, tuple[str, ...]]) -> int:
    """Key extractor for chaining: the user of one session record."""
    return record[0]


def session_log_reduce(
    user: int, clicks: Iterator[tuple[float, str]], *, gap: float = DEFAULT_GAP
) -> Iterator[tuple[int, float, float, str]]:
    """Emit the *reordered click log*: one record per click, session-tagged.

    This is the paper's literal sessionization output ("reorders click
    logs into individual user sessions"): the input click stream, grouped
    by user and stamped with its session start — so the output is the
    same cardinality as the input, which is what makes it the natural
    stage one of a chained pipeline.
    """
    for session in _split_sessions(clicks, gap):
        start = session[0][0]
        for timestamp, url in session:
            yield (user, start, timestamp, url)


def session_log_job(
    input_path: str,
    output_path: str,
    *,
    gap: float = DEFAULT_GAP,
    config: JobConfig | None = None,
) -> MapReduceJob:
    """Sort-merge form of the reordered-click-log variant."""

    def reduce_fn(user: int, clicks: Iterator[tuple[float, str]]) -> Iterable[Any]:
        return session_log_reduce(user, clicks, gap=gap)

    return MapReduceJob(
        name="session-log",
        map_fn=session_map,
        reduce_fn=reduce_fn,
        combine_fn=None,
        config=config or JobConfig(),
        input_path=input_path,
        output_path=output_path,
    )


def session_log_onepass_job(
    input_path: str,
    output_path: str,
    *,
    gap: float = DEFAULT_GAP,
    config: OnePassConfig | None = None,
) -> OnePassJob:
    """One-pass form of the reordered-click-log variant (hybrid grouping)."""
    cfg = config or OnePassConfig(mode="hybrid", map_side_combine=False)

    def finalize(user: int, sessions: list[list[tuple[float, str]]]) -> Iterator[Any]:
        for session in sessions:
            start = session[0][0]
            for timestamp, url in session:
                yield (user, start, timestamp, url)

    return OnePassJob(
        name="session-log-onepass",
        map_fn=session_map,
        aggregator=sessionize(gap),
        finalize=finalize,
        config=cfg,
        input_path=input_path,
        output_path=output_path,
    )


def session_count_job(
    input_path: str,
    output_path: str,
    *,
    config: JobConfig | None = None,
) -> MapReduceJob:
    """Stage two of the chained pipeline: sessions per user (sort-merge).

    Consumes the ``(user, session_start, urls)`` records stage one emits —
    the canonical two-job chain the partition cache
    (:mod:`repro.mapreduce.chain`) accelerates.
    """
    from repro.workloads.counting import counting_job

    return counting_job(
        "session-count", user_of_session, input_path, output_path, config=config
    )


def session_count_onepass_job(
    input_path: str,
    output_path: str,
    *,
    config: OnePassConfig | None = None,
) -> OnePassJob:
    """Stage two of the chained pipeline, one-pass form (SUM states)."""
    from repro.workloads.counting import counting_onepass_job

    return counting_onepass_job(
        "session-count-onepass",
        user_of_session,
        input_path,
        output_path,
        config=config,
    )


def reference_sessions(
    clicks: Iterable[tuple[float, int, str]], *, gap: float = DEFAULT_GAP
) -> list[tuple[int, float, tuple[str, ...]]]:
    """Ground truth, computed directly (no engine), sorted for comparison."""
    by_user: dict[int, list[tuple[float, str]]] = {}
    for timestamp, user, url in clicks:
        by_user.setdefault(user, []).append((timestamp, url))
    out: list[tuple[int, float, tuple[str, ...]]] = []
    for user, user_clicks in by_user.items():
        out.extend(session_reduce(user, iter(user_clicks), gap=gap))
    out.sort()
    return out

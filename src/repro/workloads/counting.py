"""Generic count-by-key job builders shared by the counting workloads.

Page-frequency counting and per-user click counting are the same program
with different key extractors (the paper introduces them together as
variants of word counting).  The map emits ``(key, 1)``; the combiner and
reduce sum partial counts — the canonical commutative/associative algebra.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.core.aggregates import SUM
from repro.core.engine import OnePassConfig, OnePassJob
from repro.mapreduce.api import JobConfig, MapReduceJob

__all__ = ["count_map_fn", "sum_combine", "sum_reduce", "counting_job", "counting_onepass_job", "reference_counts"]


def count_map_fn(key_of: Callable[[Any], Any]) -> Callable[[Any], Iterator[tuple[Any, int]]]:
    """Map function emitting ``(key_of(record), 1)``."""

    def map_fn(record: Any) -> Iterator[tuple[Any, int]]:
        yield (key_of(record), 1)

    return map_fn


def sum_combine(key: Any, values: Iterator[int]) -> Iterator[tuple[Any, int]]:
    """Combiner: emit one partial sum per key."""
    yield (key, sum(values))


def sum_reduce(key: Any, values: Iterator[int]) -> Iterator[tuple[Any, int]]:
    """Reduce: total count per key."""
    yield (key, sum(values))


def counting_job(
    name: str,
    key_of: Callable[[Any], Any],
    input_path: str,
    output_path: str,
    *,
    config: JobConfig | None = None,
    with_combiner: bool = True,
) -> MapReduceJob:
    """Sort-merge counting job; the combiner is what keeps Table I's
    intermediate/input ratio under 1% for these workloads."""
    return MapReduceJob(
        name=name,
        map_fn=count_map_fn(key_of),
        reduce_fn=sum_reduce,
        combine_fn=sum_combine if with_combiner else None,
        config=config or JobConfig(),
        input_path=input_path,
        output_path=output_path,
    )


def counting_onepass_job(
    name: str,
    key_of: Callable[[Any], Any],
    input_path: str,
    output_path: str,
    *,
    config: OnePassConfig | None = None,
) -> OnePassJob:
    """One-pass counting: SUM states (each incoming value may be a partial
    sum pushed by the map-side combiner)."""
    return OnePassJob(
        name=name,
        map_fn=count_map_fn(key_of),
        aggregator=SUM,
        config=config or OnePassConfig(),
        input_path=input_path,
        output_path=output_path,
    )


def reference_counts(
    records: Iterable[Any], key_of: Callable[[Any], Any]
) -> dict[Any, int]:
    """Ground-truth counts, computed directly."""
    counts: dict[Any, int] = {}
    for record in records:
        key = key_of(record)
        counts[key] = counts.get(key, 0) + 1
    return counts

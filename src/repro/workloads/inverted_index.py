"""Inverted-index construction over the document collection.

"The map function extracts (word, (doc id, position)) pairs and the reduce
function builds a list of document ids and positions for each word."  The
intermediate data is smaller than the input text (Table I: ~70%) but still
substantial, and no combiner shrinks it meaningfully — posting lists only
concatenate — so the sort-merge baseline pays a full merge phase (Fig. 3).

Output records: ``(word, ((doc_id, position), ...))`` with postings sorted.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.core.aggregates import COLLECT
from repro.core.engine import OnePassConfig, OnePassJob
from repro.mapreduce.api import JobConfig, MapReduceJob

__all__ = [
    "index_map",
    "index_reduce",
    "inverted_index_job",
    "inverted_index_onepass_job",
    "reference_index",
]

Posting = tuple[int, int]


def index_map(doc: tuple[int, str]) -> Iterator[tuple[str, Posting]]:
    """Tokenise one document into ``(word, (doc_id, position))`` pairs.

    Only identifier-like tokens are indexed; markup/punctuation tokens
    (``<p>``, ``&nbsp;``, numbers with punctuation...) contribute bytes to
    the input but no postings — as HTML boilerplate does in a web crawl.
    Positions count every token, indexed or not.
    """
    doc_id, text = doc
    for position, word in enumerate(text.split()):
        if word.isidentifier():
            yield (word, (doc_id, position))


def index_reduce(word: str, postings: Iterator[Posting]) -> Iterator[tuple[str, tuple[Posting, ...]]]:
    """Build the sorted posting list for one word."""
    yield (word, tuple(sorted(postings)))


def inverted_index_job(
    input_path: str,
    output_path: str,
    *,
    config: JobConfig | None = None,
) -> MapReduceJob:
    return MapReduceJob(
        name="inverted-index",
        map_fn=index_map,
        reduce_fn=index_reduce,
        combine_fn=None,
        config=config or JobConfig(),
        input_path=input_path,
        output_path=output_path,
    )


def inverted_index_onepass_job(
    input_path: str,
    output_path: str,
    *,
    config: OnePassConfig | None = None,
) -> OnePassJob:
    """One-pass form: collect postings per word via hash grouping."""
    cfg = config or OnePassConfig(mode="hybrid", map_side_combine=False)

    def finalize(word: str, postings: list[Posting]) -> Iterator[Any]:
        yield (word, tuple(sorted(postings)))

    return OnePassJob(
        name="inverted-index-onepass",
        map_fn=index_map,
        aggregator=COLLECT,
        finalize=finalize,
        config=cfg,
        input_path=input_path,
        output_path=output_path,
    )


def reference_index(
    docs: Iterable[tuple[int, str]]
) -> dict[str, tuple[Posting, ...]]:
    """Ground-truth inverted index, computed directly."""
    index: dict[str, list[Posting]] = {}
    for doc in docs:
        for word, posting in index_map(doc):
            index.setdefault(word, []).append(posting)
    return {word: tuple(sorted(p)) for word, p in index.items()}
